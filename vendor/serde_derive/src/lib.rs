//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Generates `Serialize`/`Deserialize` impls against the local `serde`
//! stand-in's `Value` tree. Because `syn`/`quote` are unavailable offline,
//! the item is parsed directly from the raw `proc_macro::TokenStream`: only
//! the shapes this workspace derives are supported — non-generic structs
//! (named, tuple, unit) and enums (unit, tuple, and struct variants), with
//! serde's external enum tagging.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one derived item looks like after parsing.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde stand-in derives do not support generic type `{name}`"));
    }

    match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::NamedStruct { name, fields: field_names(g.stream())? })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::TupleStruct { name, arity: split_top_level(g.stream()).len() })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Ok(Item::UnitStruct { name })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
        }
        (kw, other) => Err(format!("unsupported {kw} body: {other:?}")),
    }
}

/// Skip any `#[...]` attributes (including rendered doc comments) at `*i`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Split a field/variant list on top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments (e.g. `HashMap<String, u32>`) don't split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(token);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Field names of a named-field body: per chunk, skip attributes and
/// visibility; the next ident is the name.
fn field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attributes(&chunk, &mut i);
            skip_visibility(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => Ok(id.to_string()),
                other => Err(format!("expected field name, found {other:?}")),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attributes(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => return Err(format!("expected variant name, found {other:?}")),
            };
            i += 1;
            let kind = match chunk.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(field_names(g.stream())?)
                }
                other => return Err(format!("unsupported variant body: {other:?}")),
            };
            Ok(Variant { name, kind })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from({vn:?}))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(String::from({vn:?}), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(String::from({vn:?}), ::serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(String::from({vn:?}), ::serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::get_field(value, {f:?})?")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok(Self {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok(Self(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         let items = ::serde::get_tuple(value, {arity})?;\n\
                         Ok(Self({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok(Self)\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ let items = ::serde::get_tuple(payload, {n})?; Ok({name}::{vn}({})) }},",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::get_field(payload, {f:?})?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         if let ::serde::Value::Str(variant) = value {{\n\
                             return match variant.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::DeError::msg(format!(\n\
                                     \"unknown unit variant {{other:?}} of {name}\"))),\n\
                             }};\n\
                         }}\n\
                         let (variant, payload) = ::serde::get_variant(value)?;\n\
                         match variant {{\n\
                             {}\n\
                             other => Err(::serde::DeError::msg(format!(\n\
                                 \"unknown variant {{other:?}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    }
}
