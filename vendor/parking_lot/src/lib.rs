//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API: `lock()`
//! returns the guard directly, and a lock held by a panicking thread is
//! recovered instead of propagating the poison.

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
