//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the subset of the criterion API the workspace's benches use:
//! `criterion_group!` / `criterion_main!`, benchmark groups with throughput
//! annotation, and `Bencher::iter` / `iter_batched`. Measurement is a plain
//! wall-clock mean over a fixed number of samples — no warm-up calibration,
//! outlier analysis, or HTML reports.

use std::time::{Duration, Instant};

/// Top-level harness configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 50 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size, throughput: None }
    }

    /// Shorthand for a single benchmark outside a named group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(name, sample_size, None, f);
        self
    }
}

/// Units for reporting per-iteration throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost; the stand-in times every routine
/// call individually, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A named set of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { sample_size, elapsed: Duration::ZERO, iterations: 0 };
    f(&mut bencher);
    let per_iter = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format_rate(n, per_iter, "elem"),
        Some(Throughput::Bytes(n)) => format_rate(n, per_iter, "B"),
        None => String::new(),
    };
    println!(
        "bench {name}: {} / iter ({} samples){rate}",
        format_duration(per_iter),
        bencher.iterations
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

fn format_rate(units_per_iter: u64, per_iter: Duration, unit: &str) -> String {
    let secs = per_iter.as_secs_f64();
    if secs <= 0.0 {
        return String::new();
    }
    let rate = units_per_iter as f64 / secs;
    if rate >= 1e9 {
        format!(", {:.2} G{unit}/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!(", {:.2} M{unit}/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!(", {:.2} K{unit}/s", rate / 1e3)
    } else {
        format!(", {rate:.2} {unit}/s")
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.sample_size as u64;
    }

    /// Time `routine` against fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Define a benchmark group function. Supports both the plain
/// `criterion_group!(name, target, ...)` form and the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iterations() {
        let mut count = 0u64;
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(3));
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        assert_eq!(count, 6); // 1 warm-up + 5 samples
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0u64;
        let mut c = Criterion::default().sample_size(4);
        let mut g = c.benchmark_group("t");
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 5); // 1 warm-up + 4 samples
    }

    mod grouped {
        fn target(c: &mut crate::Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        crate::criterion_group! {
            name = benches;
            config = crate::Criterion::default().sample_size(2);
            targets = target
        }
        #[test]
        fn group_macro_compiles_and_runs() {
            benches();
        }
    }
}
