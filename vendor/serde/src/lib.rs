//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Instead of serde's visitor-based zero-copy data model, this stand-in uses
//! a simple owned [`Value`] tree: `Serialize` renders a value into the tree,
//! `Deserialize` rebuilds from it. The derive macros (re-exported from the
//! local `serde_derive`) generate those impls with serde's external-tagging
//! conventions, so JSON produced by the sibling `serde_json` stand-in looks
//! like what the real crates would emit.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// The self-describing data tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept apart so `u64 > i64::MAX` survives).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-value map in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric content widened to `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering, so `println!("{value}")` emits one JSON line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_json(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

/// Render a [`Value`] as JSON into `out`; `indent` of `Some(width)` pretty
/// prints. Shared by [`Value`]'s `Display` and the `serde_json` stand-in.
pub fn write_json(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_json_float(out, *v),
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            write_json_block(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_json(out, &items[i], indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_json_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_json_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_json_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_json_float(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; real serde_json emits null too.
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip formatting; force a `.0` so the token reads
    // back as a float.
    let text = v.to_string();
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// Human-readable description.
    pub message: String,
}

impl DeError {
    /// Build an error from anything printable.
    pub fn msg(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Render self into the [`Value`] tree.
pub trait Serialize {
    /// Build the tree.
    fn to_value(&self) -> Value;
}

/// Rebuild self from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Fetch and deserialize a struct field (derive-macro helper).
pub fn get_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    match value.get(name) {
        Some(v) => {
            T::from_value(v).map_err(|e| DeError::msg(format!("field {name:?}: {}", e.message)))
        }
        None => Err(DeError::msg(format!("missing field {name:?}"))),
    }
}

/// Expect a map with exactly one entry — serde's externally-tagged enum shape
/// (derive-macro helper).
pub fn get_variant(value: &Value) -> Result<(&str, &Value), DeError> {
    match value {
        Value::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        other => Err(DeError::msg(format!("expected single-variant map, found {}", other.kind()))),
    }
}

/// Expect a sequence of exactly `n` elements (derive-macro helper for tuple
/// variants and tuple structs).
pub fn get_tuple(value: &Value, n: usize) -> Result<&[Value], DeError> {
    match value {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => {
            Err(DeError::msg(format!("expected tuple of {n}, found {}", items.len())))
        }
        other => Err(DeError::msg(format!("expected sequence, found {}", other.kind()))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::UInt(v) => *v,
                    Value::Int(v) if *v >= 0 => *v as u64,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::msg(format!(
                        "{wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::Int(v) => *v,
                    Value::UInt(v) => i64::try_from(*v).map_err(|_| {
                        DeError::msg(format!("{v} overflows signed integer"))
                    })?,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::msg(format!(
                        "{wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            // Non-finite floats serialize to null (JSON has no NaN).
            Value::Null => Ok(f64::NAN),
            other => other
                .as_f64()
                .ok_or_else(|| DeError::msg(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError::msg(format!("expected map, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($n:expr => $($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = get_tuple(value, $n)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (1 => A: 0)
    (2 => A: 0, B: 1)
    (3 => A: 0, B: 1, C: 2)
    (4 => A: 0, B: 1, C: 2, D: 3)
    (5 => A: 0, B: 1, C: 2, D: 3, E: 4)
    (6 => A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(), vec![1, 2, 3]);
        let t = (1u32, 2.5f64, true);
        assert_eq!(<(u32, f64, bool)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn errors_name_the_mismatch() {
        let e = u32::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(e.to_string().contains("expected unsigned integer"));
        let e = get_field::<u32>(&Value::Map(vec![]), "speed").unwrap_err();
        assert!(e.to_string().contains("missing field"));
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn big_u64_survives() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
        assert!(i64::from_value(&v).is_err());
    }
}
