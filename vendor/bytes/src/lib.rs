//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds in an environment with no access to crates.io, so the
//! external dependencies are vendored as minimal API-compatible subsets (see
//! `vendor/README.md`). This crate provides the little-endian cursor reading
//! ([`Buf`]) and appending ([`BufMut`]) the trace codecs use, over plain
//! `Vec<u8>` storage.

use std::ops::Deref;

/// Immutable byte buffer (here: an owned `Vec<u8>` behind a cheap wrapper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.to_vec() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Cursor-style reads from a byte source; implemented for `&[u8]`, which
/// advances the slice itself like the real crate does.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing. Panics when short (as upstream).
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Copy `len` bytes out into a new [`Bytes`], advancing.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut out = vec![0u8; len];
        self.copy_to_slice(&mut out);
        Bytes { data: out }
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append-style writes; implemented for [`BytesMut`] and `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 17);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.copy_to_bytes(2).as_ref(), b"xy");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1u8];
        let _ = cursor.get_u32_le();
    }
}
