//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! A deterministic xoshiro256++ generator behind the `StdRng` /
//! `SeedableRng` / `RngExt` names this workspace uses. Quality is plenty for
//! synthetic workload generation and sensor-noise modelling; it is **not**
//! cryptographically secure.

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the seed into the full 256-bit state, which
            // is the upstream-recommended seeding procedure for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, full range for integers).
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// Element type produced.
    type Output;

    /// Draw a value uniformly from the range. Panics on empty ranges.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods on any generator (rand's `random_*` surface).
pub trait RngExt: RngCore {
    /// Uniform draw over `T`'s standard domain.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        f64::sample(self) < p
    }

    /// Bernoulli draw: `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above 1");
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }

    /// Uniform draw from a range.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range_and_average_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..100 {
            let v = rng.random_range(5u32..=6);
            assert!(v == 5 || v == 6);
        }
    }

    #[test]
    fn bool_probabilities_converge() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
        let hits = (0..10_000).filter(|_| rng.random_ratio(1, 4)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
