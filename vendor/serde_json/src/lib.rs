//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Serializes the local `serde` stand-in's `Value` tree to JSON text and
//! parses it back. Floats are printed with Rust's shortest round-trip
//! formatting, so `f64` values survive save/load exactly (the behaviour the
//! real crate's `float_roundtrip` feature guarantees).

use serde::{write_json, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

// The `json!` macro needs the trait at a path that resolves from any caller
// crate, including ones that do not depend on `serde` themselves.
#[doc(hidden)]
pub use serde::Serialize as __Serialize;

/// Serialization / parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Build a [`Value`] literal: `{ "key": value, ... }`, `[value, ...]`,
/// `null`, or any `Serialize` expression. Objects and arrays nest, as in the
/// real crate's macro.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Map(Vec::new()) };
    ([]) => { $crate::Value::Seq(Vec::new()) };
    ({ $($tt:tt)+ }) => { $crate::Value::Map($crate::json_internal!(@object [] $($tt)+)) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Seq($crate::json_internal!(@array [] $($tt)+)) };
    ($other:expr) => { $crate::__Serialize::to_value(&$other) };
}

// Token muncher behind `json!`: walks entries/items left to right, routing
// nested `{...}` / `[...]` / `null` values back through `json!` and anything
// else through `Serialize::to_value`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (@object [$($entries:expr),*]) => { vec![$($entries),*] };
    (@object [$($entries:expr),*] $key:literal : { $($map:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object [$($entries,)* ($key.to_string(), $crate::json!({ $($map)* }))]
            $($($rest)*)?
        )
    };
    (@object [$($entries:expr),*] $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object [$($entries,)* ($key.to_string(), $crate::json!([ $($arr)* ]))]
            $($($rest)*)?
        )
    };
    (@object [$($entries:expr),*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object [$($entries,)* ($key.to_string(), $crate::Value::Null)]
            $($($rest)*)?
        )
    };
    (@object [$($entries:expr),*] $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object [$($entries,)* ($key.to_string(), $crate::__Serialize::to_value(&$val))]
            $($($rest)*)?
        )
    };
    (@array [$($items:expr),*]) => { vec![$($items),*] };
    (@array [$($items:expr),*] { $($map:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($items,)* $crate::json!({ $($map)* })] $($($rest)*)?)
    };
    (@array [$($items:expr),*] [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($items,)* $crate::json!([ $($arr)* ])] $($($rest)*)?)
    };
    (@array [$($items:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($items,)* $crate::Value::Null] $($($rest)*)?)
    };
    (@array [$($items:expr),*] $item:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @array [$($items,)* $crate::__Serialize::to_value(&$item)]
            $($($rest)*)?
        )
    };
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        self.skip_ws();
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {:?} at byte {}", byte as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.map(),
            Some(b'[') => self.seq(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(Error::new(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from a &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested_value() {
        let v = json!({
            "name": "trace",
            "count": 3u32,
            "ratio": 0.125f64,
            "ok": true,
            "items": vec![1u8, 2, 3],
            "nothing": json!(null),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_nests_objects_and_arrays() {
        let v = json!({
            "fifo": {"makespan_s": 1.5f64, "joules": 9u32},
            "loads": [10u8, 20u8, 30u8],
            "grid": [[1u8], [], {"empty": null}],
            "empty": {},
        });
        assert_eq!(
            v.to_string(),
            r#"{"fifo":{"makespan_s":1.5,"joules":9},"loads":[10,20,30],"grid":[[1],[],{"empty":null}],"empty":{}}"#
        );
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MAX, 5e-324, -123.456789012345] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
        // Whole floats keep a decimal point so they stay floats.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        // Non-finite becomes null, which reads back as NaN.
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\tünïcode \\ \u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn display_is_compact_json() {
        let v = json!({"a": [1u8], "b": "x"});
        assert_eq!(v.to_string(), r#"{"a":[1],"b":"x"}"#);
    }

    #[test]
    fn big_integers_survive() {
        let text = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), u64::MAX);
        let text = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&text).unwrap(), i64::MIN);
    }
}
