//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Provides the multi-producer multi-consumer channel subset the replay
//! engine uses. Unlike `std::sync::mpsc`, receivers are cloneable and
//! shareable across threads, matching crossbeam semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
        capacity: Option<usize>,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// All receivers are gone; returns the unsent value.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking / bounded-time receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived in time.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Non-blocking send failure for bounded channels.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity; returns the unsent value.
        Full(T),
        /// All receivers are gone; returns the unsent value.
        Disconnected(T),
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Channel that holds at most `cap` queued messages; `try_send` reports
    /// `Full` beyond that.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1, capacity }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Queue a message, waking one waiting receiver. Blocking sends on a
        /// full bounded channel are not needed by this workspace and simply
        /// enqueue past capacity; use [`Sender::try_send`] for admission
        /// control.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Queue a message only when under capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = state.capacity {
                if state.items.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }

        /// Take a message only if one is already queued.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            Err(RecvTimeoutError::Timeout)
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.len()
        }

        /// `true` when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_to_multiple_consumers() {
        let (tx, rx) = channel::unbounded::<u32>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0u32;
                while let Ok(v) = rx.recv() {
                    got += v;
                }
                got
            }));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..100).sum());
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = channel::bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(channel::TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }
}
