//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Provides the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map`, range / tuple / collection / bool
//! strategies, `any::<T>()`, and the `proptest!` / `prop_assert!` /
//! `prop_assume!` macros. Sampling is plain uniform random (no shrinking);
//! every test function is seeded deterministically from its module path and
//! case number, so runs are reproducible.

use std::collections::HashSet;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG (xoshiro256++ seeded via SplitMix64 from an FNV-1a hash)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct TestRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Deterministic RNG for one generated case of one test function.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut seed = h ^ (u64::from(case) << 32) ^ u64::from(case);
        let state = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        Self { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result =
            self.state[0].wrapping_add(self.state[3]).rotate_left(23).wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategy trait
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, func }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges -------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                if span == 0 {
                    // Full-width range: any value works.
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float ranges ---------------------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

// Tuples ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

// bool -----------------------------------------------------------------------

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: BoolAny = BoolAny;
}

// any::<T>() -----------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = bool::BoolAny;
    fn arbitrary() -> Self::Strategy {
        bool::ANY
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// Collections ----------------------------------------------------------------

pub mod collection {
    use super::{HashSet, Range, RangeInclusive, Strategy, TestRng};
    use std::hash::Hash;

    /// Element-count bounds for collection strategies (`lo..hi`, `lo..=hi`,
    /// or an exact count).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with element counts drawn from a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>`; keeps drawing until the target size is
    /// reached (bounded retries, so tiny domains still terminate).
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 100 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Runner config + errors
// ---------------------------------------------------------------------------

/// Per-block configuration, set with `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test gives up
    /// (gives up quietly, keeping whatever cases already passed).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_global_rejects: 4096 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

/// Drives one property test: samples inputs, runs the body, panics on the
/// first failing case. Called from the `proptest!` expansion.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut one_case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u32;
    while passed < config.cases {
        attempt += 1;
        let mut rng = TestRng::for_case(test_name, attempt);
        match one_case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    // Accept whatever already passed rather than spin forever.
                    return;
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{test_name}' failed at case {} (attempt {attempt}): {msg}",
                    passed + 1
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declare property tests. Supports the subset of real proptest syntax used
/// here: an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Assert two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, $($fmt)+);
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The glob-import surface mirrored from real proptest.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = super::TestRng::for_case("x", 1);
        let mut b = super::TestRng::for_case("x", 1);
        let mut c = super::TestRng::for_case("x", 2);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::TestRng::for_case("bounds", 0);
        for _ in 0..2_000 {
            let v = super::Strategy::sample(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = super::Strategy::sample(&(0.5f64..2.5), &mut rng);
            assert!((0.5..2.5).contains(&f));
            let i = super::Strategy::sample(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&i));
            let n = super::Strategy::sample(&(0u32..=100), &mut rng);
            assert!(n <= 100);
        }
    }

    #[test]
    fn collections_respect_size_ranges() {
        let mut rng = super::TestRng::for_case("sizes", 0);
        for _ in 0..200 {
            let v = super::Strategy::sample(&super::collection::vec(0u8..255, 2..50), &mut rng);
            assert!((2..50).contains(&v.len()));
            let s = super::Strategy::sample(
                &super::collection::hash_set(0u64..1_000_000, 1..200),
                &mut rng,
            );
            assert!(!s.is_empty() && s.len() < 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_pipeline_works(
            xs in super::collection::vec((0u64..100, any::<u8>()), 1..20),
            flag in super::bool::ANY,
        ) {
            prop_assume!(!xs.is_empty());
            let doubled: Vec<u64> = xs.iter().map(|&(a, _)| a * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            prop_assert!(doubled.iter().all(|&d| d < 200), "doubled out of range");
            let _ = flag;
        }

        #[test]
        fn prop_map_transforms(n in (1u32..10).prop_map(|v| v * 3)) {
            prop_assert!(n % 3 == 0 && n < 30);
        }
    }
}
