//! Real-world workload replay: the FIU-style web-server trace (§VI-F).
//!
//! Synthesises a web-server trace matched to the paper's Table III
//! statistics, converts it through the `.srt` pipeline (exercising the trace
//! format transformer), then replays it under load proportions 20–100 % and
//! prints:
//!   * the trace characteristics (Table III),
//!   * the load-control accuracy table (Table IV),
//!   * per-minute MBPS series per load level (Fig. 12's shape).
//!
//! Run with: `cargo run --release --example webserver_replay [-- --minutes N]`

use tracer_core::prelude::*;
use tracer_trace::srt;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let minutes = args
        .iter()
        .position(|a| a == "--minutes")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(5.0);

    // --- Synthesize and characterize the trace --------------------------
    let builder = WebServerTraceBuilder {
        duration_s: minutes * 60.0,
        mean_iops: 250.0,
        ..Default::default()
    };
    let trace = builder.build();
    let stats = TraceStats::compute(&trace);
    println!("web-server trace ({minutes:.0} min):");
    println!("  file system span : {:>8.2} GB", stats.span_gib());
    println!("  dataset touched  : {:>8.2} GB", stats.footprint_gib());
    println!("  read ratio       : {:>8.2} %", stats.read_ratio * 100.0);
    println!("  avg request size : {:>8.1} KB", stats.avg_request_kib());
    println!("  requests         : {:>8}", stats.ios);

    // --- Round-trip through the srt converter (format transformer) ------
    let dir = std::env::temp_dir().join("tracer_webserver_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let srt_path = dir.join("webserver.srt");
    srt::write_srt(&trace, &srt_path).expect("write srt");
    let trace = srt::convert_file(&srt_path, "fiu-webserver", srt::ConvertOptions::default())
        .expect("convert srt");
    println!("  srt round-trip   : {} IOs", trace.io_count());

    // --- Replay at load proportions 10..100 % ---------------------------
    let mut host = EvaluationHost::new();
    let mode = WorkloadMode::peak(22 * 1024, 50, 90);
    let loads: Vec<u32> = (1..=10).map(|i| i * 10).collect();
    let result = load_sweep(
        &mut host,
        || ArraySpec::hdd_raid5(6).build(),
        &trace,
        mode,
        &loads,
        "webserver",
    );

    println!("\nTable IV analogue — load-control accuracy (web-server trace):");
    println!(
        "{:>10} {:>12} {:>10} {:>12} {:>10}",
        "config %", "IOPS lp %", "acc IOPS", "MBPS lp %", "acc MBPS"
    );
    for row in &result.rows {
        println!(
            "{:>10} {:>12.4} {:>10.5} {:>12.4} {:>10.5}",
            row.configured_pct,
            row.measured_iops_pct,
            row.accuracy_iops,
            row.measured_mbps_pct,
            row.accuracy_mbps
        );
    }
    println!("max control error: {:.2} %", result.max_error() * 100.0);

    // --- Fig. 12's shape: per-minute MBPS at each level ------------------
    println!("\nFig. 12 analogue — per-minute MBPS by load proportion:");
    print!("{:>6}", "min");
    for load in [20u32, 40, 60, 80, 100] {
        print!(" {load:>8}%");
    }
    println!();
    let mut series = Vec::new();
    for load in [20u32, 40, 60, 80, 100] {
        let mut sim = ArraySpec::hdd_raid5(6).build();
        let cfg = ReplayConfig { load: LoadControl::proportion(load), ..Default::default() };
        let report = replay(&mut sim, &trace, &cfg);
        let monitor = PerformanceMonitor::with_cycle(SimDuration::from_secs(60));
        series.push(monitor.bin(&report.completions, report.started, report.finished));
    }
    let bins = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for b in 0..bins {
        print!("{:>6}", b + 1);
        for s in &series {
            match s.get(b) {
                Some(sample) => print!(" {:>9.2}", sample.mbps),
                None => print!(" {:>9}", "-"),
            }
        }
        println!();
    }
    println!("\n(the workload trend is preserved as load proportion drops — §VI-F)");
}
