//! Wall-clock replay: the code path TRACER uses against physical storage.
//!
//! The virtual-time engine used everywhere else jumps the clock between
//! events; on real hardware the replay tool must *wait* for each bunch's
//! timestamp and issue its requests from parallel workers (§IV-A). This
//! example runs that wall-clock machinery — dispatcher thread, worker pool,
//! failure accounting — against two storage targets:
//!   1. an in-memory rate-limited device ([`MemTarget`]),
//!   2. the array simulator wrapped as a target ([`SimTarget`]),
//!
//! replaying a 60-second web-server trace at 20x wall-clock speedup.
//!
//! Run with: `cargo run --release --example realtime_replay`

use tracer_core::prelude::*;
use tracer_replay::{MemTarget, RealTimeReplayer, SimTarget, StorageTarget};

fn main() {
    let trace =
        WebServerTraceBuilder { duration_s: 60.0, mean_iops: 120.0, ..Default::default() }.build();
    println!(
        "trace: {} IOs over {:.0}s, replayed at 20x wall speed with 8 workers",
        trace.io_count(),
        trace.duration() as f64 / 1e9
    );
    let replayer = RealTimeReplayer { speedup: 20.0, workers: 8 };

    // --- Target 1: a rate-limited RAM device --------------------------------
    let target = MemTarget::new(400e6, std::time::Duration::from_micros(200));
    let t0 = std::time::Instant::now();
    let report = replayer.replay(&target, &trace);
    println!("\n[mem target]");
    println!("  wall time      : {:.2}s (nominal {:.2}s)", t0.elapsed().as_secs_f64(), 60.0 / 20.0);
    println!("  issued/failed  : {}/{}", report.issued, report.failed);
    println!("  achieved IOPS  : {:.1}", report.achieved_iops);
    println!("  mean latency   : {:.3} ms", report.avg_latency_ms());

    // --- Target 2: the simulated RAID-5 array -------------------------------
    let target = SimTarget::new(ArraySpec::hdd_raid5(6).build());
    let report = replayer.replay(&target, &trace);
    let sim = target.into_inner();
    println!("\n[simulated raid5-hdd6 target]");
    println!("  issued/failed  : {}/{}", report.issued, report.failed);
    println!(
        "  mean latency   : {:.3} ms (wall; includes worker queueing)",
        report.avg_latency_ms()
    );
    println!(
        "  simulated time : {:.2}s, energy {:.1} J",
        sim.now().as_secs_f64(),
        sim.power_log().energy_joules(SimTime::ZERO, sim.now())
    );
    println!(
        "\nthe same dispatcher/worker code drives both targets — swap in a raw-device\n\
         implementation of StorageTarget to run against physical storage."
    );

    // Exercise the trait objectivity claim.
    let targets: Vec<Box<dyn StorageTarget>> = vec![Box::new(MemTarget::instant())];
    for t in &targets {
        t.execute(&IoPackage::read(0, 4096)).expect("boxed target works");
    }
}
