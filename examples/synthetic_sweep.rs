//! The paper's synthetic evaluation campaign (§VI, step 1), scaled by a
//! command-line factor.
//!
//! The full campaign collects 125 peak traces (5 request sizes × 5 read
//! ratios × 5 random ratios) and replays each at 10 load proportions —
//! 1250 measurements. By default this example runs a representative 2×2×2
//! corner of the cube at 4 load levels so it finishes quickly; pass `--full`
//! for the complete 125 × 10 sweep (several minutes of wall time) or
//! `--seconds N` to change the per-trace collection window.
//!
//! Run with: `cargo run --release --example synthetic_sweep [-- --full]`

use tracer_core::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let seconds = args
        .iter()
        .position(|a| a == "--seconds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(if full { 10 } else { 5 });

    let cfg = if full {
        SweepConfig::default()
    } else {
        let mut modes = Vec::new();
        for &size in &[4 * 1024u32, 64 * 1024] {
            for &read in &[0u8, 100] {
                for &random in &[0u8, 100] {
                    modes.push(WorkloadMode::peak(size, random, read));
                }
            }
        }
        SweepConfig { modes, loads: vec![25, 50, 75, 100] }
    };
    println!(
        "sweep: {} modes x {} loads = {} runs ({}s collection each)",
        cfg.modes.len(),
        cfg.loads.len(),
        cfg.run_count(),
        seconds
    );

    // Collect the peak traces into a repository first (paper §III-B step 2).
    let repo_dir = std::env::temp_dir().join("tracer_sweep_repo");
    let repo = TraceRepository::open(&repo_dir).expect("create repository");
    let mut collector = TraceCollector::new(&repo, || ArraySpec::hdd_raid5(4).build());
    collector.duration = SimDuration::from_secs(seconds);
    for &mode in &cfg.modes {
        collector.collect(mode).expect("collect trace");
    }
    println!("collected {} traces into {}", cfg.modes.len(), repo_dir.display());

    // Replay each at every load level (paper §III-B step 3).
    let mut host = EvaluationHost::new();
    let device = ArraySpec::hdd_raid5(4).build().config().name.clone();
    let results = run_sweep(
        &mut host,
        || ArraySpec::hdd_raid5(4).build(),
        |mode| repo.load(&device, mode).expect("trace collected above"),
        &cfg,
        |done, total| {
            if done % 25 == 0 || done == total {
                println!("  ... {done}/{total} modes evaluated");
            }
        },
    );

    // Report: one line per mode with peak efficiency and control error.
    println!(
        "\n{:>8} {:>6} {:>6} {:>10} {:>10} {:>12} {:>14} {:>10}",
        "size", "rand%", "read%", "IOPS@100", "MBPS@100", "IOPS/Watt", "MBPS/Kilowatt", "maxErr%"
    );
    for (mode, sweep_result) in cfg.modes.iter().zip(&results) {
        let full_row = sweep_result.rows.last().expect("baseline row");
        let rec = host
            .db
            .get(*sweep_result.record_ids.last().expect("baseline record"))
            .expect("record stored");
        println!(
            "{:>8} {:>6} {:>6} {:>10.1} {:>10.2} {:>12.3} {:>14.1} {:>10.2}",
            mode.request_bytes,
            mode.random_pct,
            mode.read_pct,
            full_row.iops,
            full_row.mbps,
            rec.efficiency.iops_per_watt,
            rec.efficiency.mbps_per_kilowatt,
            sweep_result.max_error() * 100.0
        );
    }

    let db_path = repo_dir.join("sweep_results.json");
    host.db.save(&db_path).expect("persist results");
    println!("\n{} records saved to {}", host.db.len(), db_path.display());
}
