//! Quickstart: the full TRACER loop in one file.
//!
//! 1. Build the paper's testbed (a simulated RAID-5 HDD array).
//! 2. Collect a peak-workload trace with the IOmeter-style generator, storing
//!    it in a trace repository (like blktrace under IOmeter).
//! 3. Replay the trace at several load proportions with the proportional
//!    filter while the power analyzer measures the array.
//! 4. Print IOPS, MBPS, average power, and the paper's headline metrics
//!    (IOPS/Watt, MBPS/Kilowatt) per load level.
//!
//! Run with: `cargo run --example quickstart`

use tracer_core::prelude::*;
use tracer_workload::iometer::run_peak_workload;

fn main() {
    // --- 1. The storage system under test -------------------------------
    let array = || ArraySpec::hdd_raid5(4).build();
    println!("array under test : {}", array().config().name);
    println!("idle power       : {:.1} W", array().power_log().total_watts_at(SimTime::ZERO));

    // --- 2. Collect a peak trace into a repository ----------------------
    let repo_dir = std::env::temp_dir().join("tracer_quickstart_repo");
    let repo = TraceRepository::open(&repo_dir).expect("create repository");
    let mode = WorkloadMode::peak(16 * 1024, 50, 70); // 16 KiB, 50 % random, 70 % reads
    let mut sim = array();
    let generated = run_peak_workload(
        &mut sim,
        &IometerConfig {
            duration: SimDuration::from_secs(20),
            ..IometerConfig::two_minutes(mode, 42)
        },
    );
    repo.store(&mode, &generated.trace).expect("store trace");
    let stats = TraceStats::compute(&generated.trace);
    println!(
        "collected trace  : {} bunches / {} IOs, peak {:.0} IOPS, {:.1} MBPS",
        generated.trace.bunch_count(),
        stats.ios,
        generated.peak_iops,
        generated.peak_mbps
    );

    // --- 3 & 4. Replay under load control and evaluate ------------------
    let trace = repo.load(&array().config().name, &mode).expect("load trace");
    let mut host = EvaluationHost::new();
    println!(
        "\n{:>6} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "load%", "IOPS", "MBPS", "watts", "IOPS/Watt", "MBPS/Kilowatt"
    );
    for load in [20u32, 40, 60, 80, 100] {
        let mut sim = array();
        let outcome = host.commit(EvaluationHost::measure_test(
            host.meter_cycle_ms,
            &mut sim,
            &trace,
            mode.at_load(load),
            100,
            "quickstart",
        ));
        let m = outcome.metrics;
        println!(
            "{load:>6} {:>10.1} {:>10.2} {:>10.2} {:>12.3} {:>14.1}",
            m.iops, m.mbps, m.avg_watts, m.iops_per_watt, m.mbps_per_kilowatt
        );
    }

    // The database holds every record for later queries.
    let db_path = repo_dir.join("quickstart_results.json");
    host.db.save(&db_path).expect("persist results");
    println!("\n{} records saved to {}", host.db.len(), db_path.display());
}
