//! Comparing energy-conservation techniques with TRACER — the programme the
//! paper lays out in §VII ("leverage TRACER to make further measurements on
//! mainstream energy-conservation techniques for comprehensive evaluation and
//! comparisons").
//!
//! Three policies from the paper's Table I lineage run against the same
//! RAID-5 array under the same trace, at several load proportions:
//!   * MAID-style spin-down of idle members,
//!   * eRAID-style degraded parity (one member parked, served via parity),
//!   * power-aware write-back caching.
//!
//! Run with: `cargo run --release --example energy_policies`

use tracer_core::prelude::*;

fn main() {
    // A bursty web-server day: busy spells and real idle gaps, so each
    // technique gets terrain it can win on.
    let trace =
        WebServerTraceBuilder { duration_s: 600.0, mean_iops: 60.0, ..Default::default() }.build();
    let stats = TraceStats::compute(&trace);
    println!(
        "workload: {} IOs over {:.0} min, {:.0}% reads, avg {:.1} KB",
        stats.ios,
        stats.duration_ns as f64 / 6e10,
        stats.read_ratio * 100.0,
        stats.avg_request_kib()
    );

    let policies = [
        ConservationPolicy::SpinDown { idle_timeout: SimDuration::from_secs(10) },
        ConservationPolicy::DegradedParity { parked_disk: 0 },
        ConservationPolicy::WriteBackCache,
    ];

    let mut host = EvaluationHost::new();
    for load in [30u32, 100] {
        println!("\n=== load proportion {load}% ===");
        let mode = WorkloadMode::peak(22 * 1024, 50, 90).at_load(load);
        let outcomes = compare_policies(
            &mut host,
            || tracer_sim::ArraySpec::hdd_raid5(6).parts(),
            &trace,
            mode,
            &policies,
            &format!("policies-load{load}"),
        );
        println!(
            "{:<28} {:>10} {:>8} {:>9} {:>9} {:>10} {:>10}",
            "policy", "joules", "watts", "avg ms", "p95 ms", "saving %", "penalty %"
        );
        for o in &outcomes {
            println!(
                "{:<28} {:>10.0} {:>8.2} {:>9.2} {:>9.2} {:>10.2} {:>10.2}",
                o.policy,
                o.energy_joules,
                o.avg_watts,
                o.avg_response_ms,
                o.p95_response_ms,
                o.energy_saving_pct,
                o.response_penalty_pct
            );
        }
    }

    // The web server never leaves a member idle long enough to spin down —
    // which is itself a finding. An archival tier is spin-down's home turf:
    // a burst of reads every two minutes, silence in between.
    let archival = Trace::from_bunches(
        "archival",
        (0..20u64)
            .map(|i| {
                Bunch::new(
                    i * 120_000_000_000,
                    (0..4).map(|j| IoPackage::read((i * 64 + j) * 8192, 65536)).collect(),
                )
            })
            .collect(),
    );
    println!("\n=== archival workload (reads every 2 min) ===");
    let outcomes = compare_policies(
        &mut host,
        || tracer_sim::ArraySpec::hdd_raid5(6).parts(),
        &archival,
        WorkloadMode::peak(65536, 50, 100),
        &policies,
        "policies-archival",
    );
    println!(
        "{:<28} {:>10} {:>8} {:>9} {:>10} {:>10}",
        "policy", "joules", "watts", "avg ms", "saving %", "penalty %"
    );
    for o in &outcomes {
        println!(
            "{:<28} {:>10.0} {:>8.2} {:>9.1} {:>10.2} {:>10.2}",
            o.policy,
            o.energy_joules,
            o.avg_watts,
            o.avg_response_ms,
            o.energy_saving_pct,
            o.response_penalty_pct
        );
    }

    println!(
        "\n{} records stored. Idle time is what conservation techniques spend: the web \
         server offers none (spin-down saves 0%), the archive offers plenty — exactly \
         the workload dependence TRACER's load control exists to map.",
        host.db.len()
    );
}
