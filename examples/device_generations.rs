//! Cross-generation storage comparison under TRACER.
//!
//! The paper closes by positioning TRACER as the uniform way to compare
//! storage options (its §VI-G SSD-vs-HDD study is one instance). This example
//! runs four RAID-5 arrays spanning device generations — 5 400 rpm economy,
//! 7 200 rpm desktop (the paper's testbed), 15 000 rpm enterprise, and a
//! consumer MLC SSD — through the same OLTP and streaming workloads, all
//! evaluated in parallel via the distributed runner.
//!
//! Run with: `cargo run --release --example device_generations`

use tracer_core::prelude::*;
use tracer_sim::ArraySpec;
use tracer_workload::iometer::run_peak_workload;
use tracer_workload::OltpTraceBuilder;

type Builder = fn() -> ArraySim;

const ARRAYS: [(&str, Builder); 4] = [
    ("eco-5400", || ArraySpec::eco_raid5(4).build()),
    ("desktop-7200", || ArraySpec::hdd_raid5(4).build()),
    ("enterprise-15k", || ArraySpec::enterprise15k_raid5(4).build()),
    ("mlc-ssd", || ArraySpec::mlc_raid5(4).build()),
];

fn main() {
    println!("idle power per array:");
    for (name, build) in ARRAYS {
        println!("  {name:<16} {:>6.1} W", build().power_log().total_watts_at(SimTime::ZERO));
    }

    let mut host = EvaluationHost::new();

    // --- OLTP: small random pages, the seek-bound regime -----------------
    let oltp =
        OltpTraceBuilder { duration_s: 120.0, mean_iops: 150.0, ..Default::default() }.build();
    println!("\nOLTP workload (4K-class random pages, 66% read):");
    println!("{:<16} {:>10} {:>10} {:>10} {:>12}", "array", "IOPS", "avg ms", "watts", "IOPS/Watt");
    let jobs: Vec<EvaluationJob> = ARRAYS
        .iter()
        .map(|&(name, build)| {
            EvaluationJob::new(name, build, oltp.clone(), WorkloadMode::peak(4096, 80, 66))
        })
        .collect();
    for id in run_parallel(&mut host, jobs) {
        let r = host.db.get(id).expect("record").clone();
        println!(
            "{:<16} {:>10.1} {:>10.2} {:>10.2} {:>12.3}",
            r.label,
            r.efficiency.iops,
            r.efficiency.avg_response_ms,
            r.efficiency.avg_watts,
            r.efficiency.iops_per_watt
        );
    }

    // --- Streaming: large sequential reads, the bandwidth-bound regime ---
    println!("\nstreaming workload (1M sequential reads at peak):");
    println!("{:<16} {:>10} {:>10} {:>14}", "array", "MBPS", "watts", "MBPS/Kilowatt");
    for (name, build) in ARRAYS {
        let mode = WorkloadMode::peak(1 << 20, 0, 100);
        let mut gen_sim = build();
        let trace = run_peak_workload(
            &mut gen_sim,
            &IometerConfig {
                duration: SimDuration::from_secs(10),
                ..IometerConfig::two_minutes(mode, 5)
            },
        )
        .trace;
        let mut sim = build();
        let m = host
            .commit(EvaluationHost::measure_test(
                host.meter_cycle_ms,
                &mut sim,
                &trace,
                mode,
                100,
                name,
            ))
            .metrics;
        println!(
            "{:<16} {:>10.1} {:>10.2} {:>14.1}",
            name, m.mbps, m.avg_watts, m.mbps_per_kilowatt
        );
    }

    println!(
        "\nreading the table: the 15k array wins raw OLTP throughput but pays for its \
         spindles; the SSD array wins efficiency outright; the eco array only makes \
         sense where watts matter more than milliseconds. One framework, one metric \
         pair, comparable numbers — the point of TRACER."
    );
}
