//! SSD versus HDD RAID-5 energy efficiency (§VI-G), evaluated in parallel.
//!
//! Reproduces the paper's closing comparison: a RAID-5 of four SLC SSDs
//! against the six-disk HDD RAID-5, swept over random ratio and read ratio.
//! The two arrays are evaluated concurrently through the distributed runner
//! (§III-C's FC-SAN deployment, one power-analyzer channel each).
//!
//! Run with: `cargo run --release --example ssd_vs_hdd`

use tracer_core::prelude::*;
use tracer_workload::iometer::run_peak_workload;

/// Collect a fresh peak trace for `mode` on the array `build` produces.
fn peak_trace(build: impl Fn() -> ArraySim, mode: WorkloadMode, seconds: u64) -> Trace {
    let mut sim = build();
    run_peak_workload(
        &mut sim,
        &IometerConfig {
            duration: SimDuration::from_secs(seconds),
            ..IometerConfig::two_minutes(mode, 99)
        },
    )
    .trace
}

fn main() {
    let mut host = EvaluationHost::new();

    println!("idle power:");
    println!(
        "  hdd raid5 (6 disks): {:.1} W",
        ArraySpec::hdd_raid5(6).build().power_log().total_watts_at(SimTime::ZERO)
    );
    println!(
        "  ssd raid5 (4 disks): {:.1} W",
        ArraySpec::ssd_raid5(4).build().power_log().total_watts_at(SimTime::ZERO)
    );

    // --- Random-ratio sweep (16 KiB, mixed read/write) --------------------
    println!("\nrandom-ratio sweep (16K, 50% read) — MBPS/Kilowatt:");
    println!("{:>8} {:>14} {:>14} {:>8}", "rand%", "hdd", "ssd", "ssd/hdd");
    for random in [0u8, 25, 50, 75, 100] {
        let mode = WorkloadMode::peak(16 * 1024, random, 50);
        let hdd_trace = peak_trace(|| ArraySpec::hdd_raid5(6).build(), mode, 5);
        let ssd_trace = peak_trace(|| ArraySpec::ssd_raid5(4).build(), mode, 5);
        let ids = run_parallel(
            &mut host,
            vec![
                EvaluationJob::new(
                    format!("hdd-rn{random}"),
                    || ArraySpec::hdd_raid5(6).build(),
                    hdd_trace,
                    mode,
                ),
                EvaluationJob::new(
                    format!("ssd-rn{random}"),
                    || ArraySpec::ssd_raid5(4).build(),
                    ssd_trace,
                    mode,
                ),
            ],
        );
        let hdd = host.db.get(ids[0]).expect("hdd record").efficiency.mbps_per_kilowatt;
        let ssd = host.db.get(ids[1]).expect("ssd record").efficiency.mbps_per_kilowatt;
        println!("{random:>8} {hdd:>14.1} {ssd:>14.1} {:>8.2}", ssd / hdd.max(1e-9));
    }

    // --- Read-ratio sweep (sequential 16 KiB) -----------------------------
    println!("\nread-ratio sweep (16K, sequential) — MBPS/Kilowatt:");
    println!("{:>8} {:>14} {:>14} {:>8}", "read%", "hdd", "ssd", "ssd/hdd");
    for read in [0u8, 25, 50, 75, 100] {
        let mode = WorkloadMode::peak(16 * 1024, 0, read);
        let hdd_trace = peak_trace(|| ArraySpec::hdd_raid5(6).build(), mode, 5);
        let ssd_trace = peak_trace(|| ArraySpec::ssd_raid5(4).build(), mode, 5);
        let ids = run_parallel(
            &mut host,
            vec![
                EvaluationJob::new(
                    format!("hdd-rd{read}"),
                    || ArraySpec::hdd_raid5(6).build(),
                    hdd_trace,
                    mode,
                ),
                EvaluationJob::new(
                    format!("ssd-rd{read}"),
                    || ArraySpec::ssd_raid5(4).build(),
                    ssd_trace,
                    mode,
                ),
            ],
        );
        let hdd = host.db.get(ids[0]).expect("hdd record").efficiency.mbps_per_kilowatt;
        let ssd = host.db.get(ids[1]).expect("ssd record").efficiency.mbps_per_kilowatt;
        println!("{read:>8} {hdd:>14.1} {ssd:>14.1} {:>8.2}", ssd / hdd.max(1e-9));
    }

    println!(
        "\n{} records stored; paper's conclusions to check: SSD array beats HDD array \
         on efficiency, both degrade with random ratio, and the SSD array favours \
         write-heavy (low read-ratio) sequential workloads.",
        host.db.len()
    );
}
