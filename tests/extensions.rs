//! Integration: the framework extensions — thermal metric, controller cache,
//! warm-up windows, OLTP workload, trace surgery — working together through
//! the public API.

use tracer_core::prelude::*;
use tracer_power::ThermalModel;
use tracer_sim::{ArraySim, CacheConfig, Device};
use tracer_trace::transform;
use tracer_workload::OltpTraceBuilder;

#[test]
fn thermal_metric_tracks_a_replayed_workload() {
    let trace =
        OltpTraceBuilder { duration_s: 120.0, mean_iops: 250.0, ..Default::default() }.build();
    let mut sim = ArraySpec::hdd_raid5(6).build();
    let report = replay(&mut sim, &trace, &ReplayConfig::default());

    let model = ThermalModel::default();
    let temps: Vec<f64> =
        sim.power_log().devices.iter().map(|tl| model.report(tl, report.finished).peak_c).collect();
    // Every member warmed past the idle steady state's trajectory start.
    for (i, &t) in temps.iter().enumerate() {
        assert!(t > model.ambient_c, "disk {i} never warmed: {t}");
        assert!(t < model.steady_state_c(12.0), "disk {i} beyond physical bound: {t}");
    }
    // An idle array over the same window stays cooler than the loaded one.
    let mut idle = ArraySpec::hdd_raid5(6).build();
    idle.run_until(report.finished);
    let idle_peak = model.report(&idle.power_log().devices[0], report.finished).peak_c;
    let loaded_peak = temps.iter().cloned().fold(f64::MIN, f64::max);
    assert!(loaded_peak > idle_peak, "load must heat: {loaded_peak} vs {idle_peak}");
}

#[test]
fn cached_array_improves_oltp_latency_with_hot_index() {
    let trace = OltpTraceBuilder {
        duration_s: 60.0,
        mean_iops: 200.0,
        db_bytes: 2 << 30, // small database: the hot region fits in cache
        ..Default::default()
    }
    .build();
    let build = |cache: Option<CacheConfig>| -> ArraySim {
        let (mut cfg, devices): (_, Vec<Device>) = tracer_sim::ArraySpec::hdd_raid5(6).parts();
        cfg.cache = cache;
        ArraySim::new(cfg, devices)
    };
    let mut plain = build(None);
    let cold = replay(&mut plain, &trace, &ReplayConfig::default());
    let mut cached = build(Some(CacheConfig::paper_300mb()));
    let warm = replay(&mut cached, &trace, &ReplayConfig::default());
    assert_eq!(cold.summary.total_ios, warm.summary.total_ios);
    assert!(
        warm.summary.avg_response_ms < cold.summary.avg_response_ms,
        "cache must help OLTP: {} vs {}",
        warm.summary.avg_response_ms,
        cold.summary.avg_response_ms
    );
    assert!(cached.cache().unwrap().hit_ratio() > 0.2);
}

#[test]
fn warmup_window_composes_with_host_measurement() {
    let trace = OltpTraceBuilder { duration_s: 30.0, ..Default::default() }.build();
    let mut sim = ArraySpec::hdd_raid5(4).build();
    let cfg = ReplayConfig { warmup: SimDuration::from_secs(5), ..Default::default() };
    let report = replay(&mut sim, &trace, &cfg);
    assert!(report.summary.window_s < 26.0);
    assert!(report.summary.total_ios > 0);
    // Energy over the measured window only.
    let joules = sim.power_log().energy_joules(report.measured_from, report.finished);
    assert!(joules > 0.0);
    assert!(
        joules < sim.power_log().energy_joules(report.started, report.finished),
        "trimmed window must carry less energy than the full replay"
    );
}

#[test]
fn trace_surgery_flows_through_replay() {
    let web =
        WebServerTraceBuilder { duration_s: 60.0, mean_iops: 120.0, ..Default::default() }.build();
    let oltp =
        OltpTraceBuilder { duration_s: 60.0, mean_iops: 120.0, ..Default::default() }.build();

    // Overlay two tenants, cut the middle 30 s, replay.
    let combined = transform::merge(&web, &oltp);
    assert_eq!(combined.io_count(), web.io_count() + oltp.io_count());
    let window = transform::slice(&combined, 15_000_000_000, 45_000_000_000);
    assert!(window.validate().is_ok());
    assert!(window.io_count() > 0);

    let mut sim = ArraySpec::hdd_raid5(6).build();
    let report = replay(&mut sim, &window, &ReplayConfig::default());
    assert_eq!(report.issued_ios as usize, window.io_count());

    // Read/write halves replayed separately account for the same volume.
    let (reads, writes) = transform::split_by_kind(&window);
    let mut sim_r = ArraySpec::hdd_raid5(6).build();
    let r = replay(&mut sim_r, &reads, &ReplayConfig::default());
    let mut sim_w = ArraySpec::hdd_raid5(6).build();
    let w = replay(&mut sim_w, &writes, &ReplayConfig::default());
    assert_eq!(r.issued_bytes + w.issued_bytes, report.issued_bytes);
}

#[test]
fn analysis_helpers_certify_fig9_linearity_end_to_end() {
    // Rebuild Fig. 9's linearity claim using the public analysis API.
    let trace =
        OltpTraceBuilder { duration_s: 40.0, mean_iops: 300.0, ..Default::default() }.build();
    let mut host = EvaluationHost::new();
    let loads: Vec<f64> = vec![20.0, 40.0, 60.0, 80.0, 100.0];
    let mut effs = Vec::new();
    for &load in &loads {
        let mut sim = ArraySpec::hdd_raid5(6).build();
        let mode = WorkloadMode::peak(4096, 80, 66).at_load(load as u32);
        let measured =
            EvaluationHost::measure_test(host.meter_cycle_ms, &mut sim, &trace, mode, 100, "lin");
        let outcome = host.commit(measured);
        effs.push(outcome.metrics.iops_per_watt);
    }
    let fit = tracer_core::linear_fit(&loads, &effs).expect("fit");
    assert!(fit.slope > 0.0, "efficiency grows with load");
    assert!(fit.r2 > 0.98, "linear to r2 {}", fit.r2);
    assert!((tracer_core::pearson(&loads, &effs) - 1.0).abs() < 0.05);
}
