//! Persistence integration: the results database and trace repository on
//! disk, including reload-and-continue workflows.

use tracer_core::prelude::*;
use tracer_core::PowerData;

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tracer_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_trace() -> Trace {
    Trace::from_bunches(
        "t",
        (0..20u64)
            .map(|i| Bunch::new(i * 5_000_000, vec![IoPackage::read(i * 64, 4096)]))
            .collect(),
    )
}

#[test]
fn database_survives_save_load_cycle_with_live_records() {
    let dir = tmp("db");
    let mut host = EvaluationHost::new();
    let trace = tiny_trace();
    for load in [25u32, 50, 100] {
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let measured = EvaluationHost::measure_test(
            host.meter_cycle_ms,
            &mut sim,
            &trace,
            WorkloadMode::peak(4096, 0, 100).at_load(load),
            100,
            "p",
        );
        host.commit(measured);
    }
    let path = dir.join("db.json");
    host.db.save(&path).unwrap();

    let reloaded = Database::load(&path).unwrap();
    assert_eq!(reloaded.len(), 3);
    for (a, b) in host.db.records().iter().zip(reloaded.records()) {
        assert_eq!(a, b);
    }
    // Query API works on the reloaded data.
    let full = reloaded.query(|r| r.mode.load_pct == 100);
    assert_eq!(full.len(), 1);
    assert!(full[0].efficiency.iops_per_watt > 0.0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repository_catalog_reflects_collected_sweep() {
    let dir = tmp("repo");
    let repo = TraceRepository::open(&dir).unwrap();
    let modes = [
        WorkloadMode::peak(4096, 0, 0),
        WorkloadMode::peak(4096, 100, 100),
        WorkloadMode::peak(1 << 20, 50, 50),
    ];
    for mode in &modes {
        repo.store(mode, &tiny_trace()).unwrap();
    }
    repo.store_named("webserver_week", &tiny_trace()).unwrap();

    let catalog = repo.catalog().unwrap();
    assert_eq!(catalog.len(), 3);
    for entry in &catalog {
        assert!(modes.contains(&entry.mode));
        assert!(entry.path.exists());
    }
    assert_eq!(repo.named_traces().unwrap(), vec!["webserver_week".to_string()]);

    // Re-opening the repository sees the same state.
    let reopened = TraceRepository::open(&dir).unwrap();
    assert_eq!(reopened.catalog().unwrap().len(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn json_records_are_human_auditable() {
    // The JSON store is part of the public surface: spot-check its fields.
    let dir = tmp("json");
    let mut db = Database::new();
    db.insert(TestRecord {
        id: 0,
        label: "audit".into(),
        device: "raid5-hdd6".into(),
        mode: WorkloadMode::peak(16384, 50, 75).at_load(40),
        power: PowerData { volts: 220.0, avg_amps: 0.2, avg_watts: 44.0, energy_joules: 880.0 },
        perf: Default::default(),
        efficiency: Default::default(),
    });
    let path = dir.join("audit.json");
    db.save(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    for needle in ["raid5-hdd6", "\"load_pct\": 40", "\"avg_watts\": 44.0", "audit"] {
        assert!(text.contains(needle), "JSON missing {needle}: {text}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_results_replayed_from_repository_are_reproducible() {
    // Collect once, then two independent replays from disk must agree.
    let dir = tmp("reproduce");
    let repo = TraceRepository::open(&dir).unwrap();
    let mode = WorkloadMode::peak(8192, 50, 50);
    let mut collector = TraceCollector::new(&repo, || ArraySpec::hdd_raid5(4).build());
    collector.duration = SimDuration::from_secs(1);
    collector.collect(mode).unwrap();

    let run = || {
        let trace = repo.load("raid5-hdd4", &mode).unwrap();
        let mut host = EvaluationHost::new();
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let measured = EvaluationHost::measure_test(
            host.meter_cycle_ms,
            &mut sim,
            &trace,
            mode.at_load(50),
            100,
            "r",
        );
        let outcome = host.commit(measured);
        (
            outcome.report.issued_ios,
            outcome.metrics.iops.to_bits(),
            outcome.metrics.avg_watts.to_bits(),
        )
    };
    assert_eq!(run(), run(), "bit-identical reproduction from stored trace");
    std::fs::remove_dir_all(&dir).unwrap();
}
