//! Distributed-evaluation integration: parallel arrays, multi-channel power
//! measurement, and agreement with sequential runs (§III-C).

use tracer_core::prelude::*;
use tracer_core::EvaluationJob;

fn trace(n: u64, bytes: u32) -> Trace {
    Trace::from_bunches(
        "t",
        (0..n)
            .map(|i| Bunch::new(i * 8_000_000, vec![IoPackage::read((i * 131) % 100_000, bytes)]))
            .collect(),
    )
}

#[test]
fn heterogeneous_fleet_evaluates_in_parallel() {
    let mut host = EvaluationHost::new();
    let mode = WorkloadMode::peak(8192, 50, 100);
    let jobs = vec![
        EvaluationJob::new("hdd3", || ArraySpec::hdd_raid5(3).build(), trace(60, 8192), mode),
        EvaluationJob::new("hdd6", || ArraySpec::hdd_raid5(6).build(), trace(60, 8192), mode),
        EvaluationJob::new("ssd4", || ArraySpec::ssd_raid5(4).build(), trace(60, 8192), mode),
        EvaluationJob::new(
            "hdd6-half",
            || ArraySpec::hdd_raid5(6).build(),
            trace(60, 8192),
            mode.at_load(50),
        ),
    ];
    let ids = run_parallel(&mut host, jobs);
    assert_eq!(ids.len(), 4);

    let by_label = |l: &str| {
        host.db
            .query(|r| r.label == l)
            .first()
            .map(|r| (*r).clone())
            .unwrap_or_else(|| panic!("record {l} missing"))
    };
    let hdd3 = by_label("hdd3");
    let hdd6 = by_label("hdd6");
    let ssd4 = by_label("ssd4");
    let half = by_label("hdd6-half");

    // More disks -> more idle power.
    assert!(hdd6.efficiency.avg_watts > hdd3.efficiency.avg_watts);
    // The SSD array is the most energy-efficient (§VI-G).
    assert!(ssd4.efficiency.iops_per_watt > hdd6.efficiency.iops_per_watt);
    assert!(ssd4.efficiency.iops_per_watt > hdd3.efficiency.iops_per_watt);
    // Half load on the same trace halves the completed IOs.
    assert_eq!(half.perf.total_ios * 2, hdd6.perf.total_ios);
}

#[test]
fn distributed_results_match_sequential_bit_for_bit() {
    let mode = WorkloadMode::peak(16384, 100, 0);
    let mut host_par = EvaluationHost::new();
    let ids = run_parallel(
        &mut host_par,
        vec![
            EvaluationJob::new("a", || ArraySpec::hdd_raid5(4).build(), trace(40, 16384), mode),
            EvaluationJob::new("b", || ArraySpec::hdd_raid5(4).build(), trace(40, 16384), mode),
        ],
    );
    let a = host_par.db.get(ids[0]).unwrap();
    let b = host_par.db.get(ids[1]).unwrap();
    // Identical jobs on separate threads: identical results.
    assert_eq!(a.perf, b.perf);
    assert_eq!(a.efficiency.iops.to_bits(), b.efficiency.iops.to_bits());

    let mut host_seq = EvaluationHost::new();
    let mut sim = ArraySpec::hdd_raid5(4).build();
    let measured = EvaluationHost::measure_test(
        host_seq.meter_cycle_ms,
        &mut sim,
        &trace(40, 16384),
        mode,
        100,
        "seq",
    );
    let seq = host_seq.commit(measured);
    assert_eq!(a.perf.total_ios, seq.report.summary.total_ios);
    assert_eq!(a.efficiency.iops.to_bits(), seq.metrics.iops.to_bits());
    assert_eq!(a.efficiency.avg_watts.to_bits(), seq.metrics.avg_watts.to_bits());
}

#[test]
fn multichannel_analyzer_reports_per_system_energy() {
    // Drive the analyzer API directly, as the distributed deployment wires it.
    let mut hdd = ArraySpec::hdd_raid5(6).build();
    let mut ssd = ArraySpec::ssd_raid5(4).build();
    let window = SimDuration::from_secs(30);
    hdd.run_until(SimTime::ZERO + window);
    ssd.run_until(SimTime::ZERO + window);

    let mut analyzer = PowerAnalyzer::new();
    analyzer.add_channel(Channel::ac_220v("hdd"));
    analyzer.add_channel(Channel::ac_220v("ssd"));
    analyzer.start(SimTime::ZERO);
    let reports = analyzer.finalize(SimTime::ZERO + window, &[hdd.power_log(), ssd.power_log()]);
    assert_eq!(reports.len(), 2);
    assert!((reports[0].avg_watts - 46.0).abs() < 1e-9);
    assert!((reports[1].avg_watts - 30.0).abs() < 1e-9);
    assert_eq!(reports[0].samples.len(), 30);
    // Sampled and exact energies agree on an idle (constant) signal.
    for r in &reports {
        assert!(r.sampling_error() < 1e-9);
    }
}

#[test]
fn many_small_jobs_scale() {
    // Stress the thread fan-out with 16 jobs.
    let mut host = EvaluationHost::new();
    let mode = WorkloadMode::peak(4096, 0, 100);
    let jobs: Vec<EvaluationJob> = (0..16)
        .map(|i| {
            EvaluationJob::new(
                format!("job{i}"),
                || ArraySpec::hdd_raid5(3).build(),
                trace(20, 4096),
                mode,
            )
        })
        .collect();
    let ids = run_parallel(&mut host, jobs);
    assert_eq!(ids.len(), 16);
    let first = host.db.get(ids[0]).unwrap().perf;
    for id in &ids[1..] {
        assert_eq!(host.db.get(*id).unwrap().perf, first, "identical jobs agree");
    }
}
