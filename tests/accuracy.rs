//! Load-control accuracy at integration scale — the property the paper
//! validates in Fig. 8 and Tables IV/V.

use tracer_core::prelude::*;
use tracer_workload::iometer::run_peak_workload;

/// Collect a peak trace for `mode` on a fresh 4-disk array.
fn collect(mode: WorkloadMode, secs: u64) -> Trace {
    let mut sim = ArraySpec::hdd_raid5(4).build();
    run_peak_workload(
        &mut sim,
        &IometerConfig {
            duration: SimDuration::from_secs(secs),
            ..IometerConfig::two_minutes(mode, 11)
        },
    )
    .trace
}

#[test]
fn fixed_size_trace_control_error_is_tiny() {
    // Fig. 8: "the load control accuracy is extremely high (with error rate
    // smaller than 0.5%) … because size of I/O requests … is a constant."
    // Our simulated replay window adds a little edge noise; require < 3 %.
    let mode = WorkloadMode::peak(4096, 50, 0);
    let trace = collect(mode, 4);
    let mut host = EvaluationHost::new();
    let result = load_sweep(
        &mut host,
        || ArraySpec::hdd_raid5(4).build(),
        &trace,
        mode,
        &sweep::LOAD_PCTS,
        "fig8",
    );
    assert_eq!(result.rows.len(), 10);
    assert!(result.max_error() < 0.03, "max error {}", result.max_error());
    // IOPS and MBPS accuracies agree for fixed-size requests.
    for row in &result.rows {
        assert!(
            (row.accuracy_iops - row.accuracy_mbps).abs() < 1e-9,
            "fixed sizes: IOPS and MBPS proportions identical"
        );
    }
}

#[test]
fn web_trace_control_error_is_bounded_like_table_iv() {
    // Table IV: the web-server trace's max error is ~7 %.
    let trace =
        WebServerTraceBuilder { duration_s: 120.0, mean_iops: 200.0, ..Default::default() }.build();
    let mut host = EvaluationHost::new();
    let mode = WorkloadMode::peak(22 * 1024, 50, 90);
    let result = load_sweep(
        &mut host,
        || ArraySpec::hdd_raid5(6).build(),
        &trace,
        mode,
        &sweep::LOAD_PCTS,
        "table4",
    );
    assert!(result.max_error() < 0.08, "max error {}", result.max_error());
}

#[test]
fn uneven_sizes_degrade_mbps_accuracy_more_than_iops_accuracy() {
    // Table V's observation: cello's uneven request sizes hurt the MBPS
    // control accuracy specifically (IOPS-wise the filter still counts
    // bunches uniformly).
    let cello = CelloTraceBuilder { duration_s: 60.0, ..Default::default() }.build();
    let mut host = EvaluationHost::new();
    let mode = WorkloadMode::peak(8192, 50, 58);
    let result = load_sweep(
        &mut host,
        || ArraySpec::hdd_raid5(6).build(),
        &cello,
        mode,
        &[10, 30, 50, 70, 90],
        "table5",
    );
    let mbps_err: f64 =
        result.rows.iter().map(|r| (r.accuracy_mbps - 1.0).abs()).fold(0.0, f64::max);
    // Uneven sizes: noticeable MBPS error (cello's Table V shows up to 32 %),
    // but the control must stay sane.
    assert!(mbps_err < 0.40, "cello MBPS error out of control: {mbps_err}");

    // Compare against a fixed-size trace replayed over the same machinery:
    // its MBPS error must be strictly smaller.
    let fixed = collect(WorkloadMode::peak(8192, 50, 58), 3);
    let fixed_result = load_sweep(
        &mut host,
        || ArraySpec::hdd_raid5(6).build(),
        &fixed,
        mode,
        &[10, 30, 50, 70, 90],
        "table5-fixed",
    );
    let fixed_err: f64 =
        fixed_result.rows.iter().map(|r| (r.accuracy_mbps - 1.0).abs()).fold(0.0, f64::max);
    assert!(
        fixed_err < mbps_err,
        "fixed sizes ({fixed_err}) must control better than cello ({mbps_err})"
    );
}

#[test]
fn efficiency_grows_with_load_across_request_sizes() {
    // Fig. 9's headline: "energy efficiency in disk arrays is linearly
    // proportional to I/O load", and small requests earn more IOPS/Watt.
    let mut host = EvaluationHost::new();
    let mut eff_at = |size: u32, load: u32| {
        let mode = WorkloadMode::peak(size, 25, 25);
        let trace = collect(mode, 2);
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let measured = EvaluationHost::measure_test(
            host.meter_cycle_ms,
            &mut sim,
            &trace,
            mode.at_load(load),
            100,
            "fig9",
        );
        host.commit(measured).metrics
    };
    for size in [4096u32, 65536] {
        let low = eff_at(size, 20);
        let mid = eff_at(size, 60);
        let high = eff_at(size, 100);
        assert!(low.iops_per_watt < mid.iops_per_watt);
        assert!(mid.iops_per_watt < high.iops_per_watt);
    }
    let small = eff_at(4096, 100);
    let large = eff_at(1 << 20, 100);
    assert!(
        small.iops_per_watt > large.iops_per_watt,
        "small requests win IOPS/Watt: {} vs {}",
        small.iops_per_watt,
        large.iops_per_watt
    );
    assert!(
        large.mbps_per_kilowatt > small.mbps_per_kilowatt,
        "large requests win MBPS/kW: {} vs {}",
        large.mbps_per_kilowatt,
        small.mbps_per_kilowatt
    );
}

#[test]
fn random_ratio_lowers_efficiency_monotonically_in_trend() {
    // Fig. 10: efficiency falls as random ratio rises (read 0 %, load 100 %),
    // and is less sensitive beyond ~30 %.
    let mut host = EvaluationHost::new();
    let mut eff = Vec::new();
    for random in [0u8, 25, 50, 75, 100] {
        let mode = WorkloadMode::peak(16384, random, 0);
        let trace = collect(mode, 2);
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let measured =
            EvaluationHost::measure_test(host.meter_cycle_ms, &mut sim, &trace, mode, 100, "fig10");
        let m = host.commit(measured).metrics;
        eff.push(m.mbps_per_kilowatt);
    }
    assert!(eff[0] > eff[2], "0% random beats 50%: {eff:?}");
    assert!(eff[2] > eff[4] * 0.9, "trend continues: {eff:?}");
    let head_drop = eff[0] - eff[1];
    let tail_drop = eff[2] - eff[4];
    assert!(head_drop > tail_drop, "sensitivity concentrates below ~30% random: {eff:?}");
}
