//! Acceptance test for zero-copy replay planning: the sweep path must
//! perform **zero** per-cell trace materializations (filter/scale clones) at
//! any (proportion, intensity) combination, and its results must stay
//! bit-identical to the materializing pre-change path.
//!
//! The whole file is one `#[test]` on purpose: the materialization counter in
//! `tracer_replay::plan` is process-global, so concurrent tests in the same
//! binary would race on its deltas. Keeping this binary single-test makes the
//! delta assertions exact.

use std::sync::Arc;
use tracer_core::executor::SweepExecutor;
use tracer_core::host::EvaluationHost;
use tracer_core::orchestrate::{SweepBuilder, SweepConfig};
use tracer_replay::{
    replay, replay_prepared, trace_materializations, AddressPolicy, LoadControl, ReplayConfig,
};
use tracer_sim::ArraySpec;
use tracer_trace::{Bunch, IoPackage, Trace, WorkloadMode};

fn fixture(n: usize) -> Trace {
    Trace::from_bunches(
        "t",
        (0..n)
            .map(|i| {
                Bunch::new(
                    i as u64 * 7_000_000,
                    vec![IoPackage::read((i as u64 * 131) % 50_000, 4096 + (i as u32 % 4) * 4096)],
                )
            })
            .collect(),
    )
}

#[test]
fn sweeps_replay_without_materializing_the_trace() {
    let trace = fixture(150);
    let shared = Arc::new(fixture(90));
    let before = trace_materializations();

    // Direct replays across the (proportion, intensity) grid, including
    // partial proportions and both slow-down and speed-up intensities —
    // every one must run straight off the lazy plan.
    for (proportion_pct, intensity_pct) in
        [(100, 100), (10, 100), (37, 100), (100, 50), (100, 250), (73, 40), (1, 1000), (150, 100)]
    {
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let cfg = ReplayConfig {
            load: LoadControl { proportion_pct, intensity_pct },
            ..Default::default()
        };
        let report = replay(&mut sim, &trace, &cfg);
        assert!(report.issued_ios <= 150);
    }

    // A serial and a pooled load sweep (the paper's per-mode loop).
    let mut host = EvaluationHost::new();
    let mode = WorkloadMode::peak(4096, 50, 100);
    SweepBuilder::new()
        .executor(SweepExecutor::serial())
        .loads(&[20, 50, 80])
        .label("zc-serial")
        .load_sweep(&mut host, || ArraySpec::hdd_raid5(4).build(), &trace, mode);
    SweepBuilder::new()
        .executor(SweepExecutor::new(4))
        .loads(&[20, 50, 80])
        .label("zc-pooled")
        .load_sweep(&mut host, || ArraySpec::hdd_raid5(4).build(), &trace, mode);

    // A full mode × load sweep whose loader hands out one shared Arc —
    // the closure performs no clone and the plan performs no materialize.
    let cfg = SweepConfig {
        modes: vec![WorkloadMode::peak(4096, 0, 100), WorkloadMode::peak(8192, 50, 50)],
        loads: vec![30, 60, 100],
    };
    SweepBuilder::new().executor(SweepExecutor::new(4)).sweep(
        &mut host,
        || ArraySpec::hdd_raid5(4).build(),
        |_| Arc::clone(&shared),
        &cfg,
    );

    assert_eq!(
        trace_materializations() - before,
        0,
        "the sweep path must not clone/materialize the trace for any cell"
    );

    // Positive control: the old materializing pipeline moves the counter, so
    // a silently disconnected counter cannot fake the zero above.
    let load = LoadControl { proportion_pct: 40, intensity_pct: 200 };
    let materialized = load.apply(&trace);
    assert!(
        trace_materializations() - before >= 2,
        "LoadControl::apply must count its filter and scale passes"
    );

    // Bit-identical results: the zero-copy plan path and the materialized
    // path must produce byte-for-byte equal reports.
    let mut sim_plan = ArraySpec::hdd_raid5(4).build();
    let plan_report = replay(&mut sim_plan, &trace, &ReplayConfig { load, ..Default::default() });
    let mut sim_mat = ArraySpec::hdd_raid5(4).build();
    let mat_report = replay_prepared(&mut sim_mat, &materialized, AddressPolicy::default());
    assert_eq!(
        serde_json::to_string(&plan_report).unwrap(),
        serde_json::to_string(&mat_report).unwrap(),
        "zero-copy replay must be bit-identical to the materialized path"
    );
}
