//! Edge-case integration tests: boundary behaviours a downstream user will
//! hit — same-instant submissions, extreme load-control settings, noisy and
//! quantized meters together, repository overwrites, tiny and huge requests.

use tracer_core::prelude::*;
use tracer_power::NoiseModel;
use tracer_replay::replay_prepared;

#[test]
fn simultaneous_submissions_are_served_deterministically_in_order() {
    // Twenty requests at the same instant: completions must be reproducible
    // and the engine must not starve any of them.
    let run = || {
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let ids: Vec<_> = (0..20u64)
            .map(|i| {
                sim.submit(
                    SimTime::ZERO,
                    ArrayRequest::new(i * 131_072 % 900_000, 4096, OpKind::Read),
                )
                .unwrap()
            })
            .collect();
        sim.run_to_idle();
        let done = sim.drain_completions();
        assert_eq!(done.len(), ids.len());
        done.iter().map(|c| (c.id, c.completed.as_nanos())).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn extreme_load_controls_compose() {
    let trace = Trace::from_bunches(
        "t",
        (0..200u64)
            .map(|i| Bunch::new(i * 1_000_000, vec![IoPackage::read(i * 64, 4096)]))
            .collect(),
    );
    // 1 % proportion of 200 bunches = 2 requests.
    let one = ProportionalFilter::default().filter(&trace, 1);
    assert_eq!(one.bunch_count(), 2);
    // 1000 % intensity compresses time tenfold.
    let fast = scale_intensity(&trace, 1000);
    assert_eq!(fast.duration(), trace.duration() / 10);
    // Combined: replay completes and the engine stays consistent.
    let mut sim = ArraySpec::hdd_raid5(4).build();
    let cfg = ReplayConfig {
        load: LoadControl { proportion_pct: 1, intensity_pct: 1000 },
        ..Default::default()
    };
    let report = replay(&mut sim, &trace, &cfg);
    assert_eq!(report.issued_ios, 2);
    assert_eq!(report.completions.len(), 2);
}

#[test]
fn noisy_quantized_meter_still_integrates_close_to_truth() {
    let mut sim = ArraySpec::hdd_raid5(6).build();
    for i in 0..100u64 {
        sim.submit(
            SimTime::from_millis(i * 10),
            ArrayRequest::new((i * 524_287) % 1_000_000, 8192, OpKind::Read),
        )
        .unwrap();
    }
    sim.run_to_idle();
    let end = sim.now();
    let meter = PowerMeter {
        noise: Some(NoiseModel { relative_sigma: 0.01, seed: 7 }),
        resolution_w: 0.1,
        ..Default::default()
    };
    let samples = meter.sample(sim.power_log(), SimTime::ZERO, end);
    let sampled = PowerMeter::sampled_energy(&samples);
    let exact = sim.power_log().energy_joules(SimTime::ZERO, end);
    let err = (sampled - exact).abs() / exact;
    assert!(err < 0.02, "1% noise + 0.1W quantization => ~sub-2% energy error, got {err}");
}

#[test]
fn repository_overwrite_replaces_content() {
    let dir = std::env::temp_dir().join(format!("tracer_edge_repo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let repo = TraceRepository::open(&dir).unwrap();
    let mode = WorkloadMode::peak(4096, 0, 100);
    let small = Trace::from_bunches("d", vec![Bunch::new(0, vec![IoPackage::read(0, 512)])]);
    let big = Trace::from_bunches(
        "d",
        (0..50u64).map(|i| Bunch::new(i, vec![IoPackage::read(i, 4096)])).collect(),
    );
    repo.store(&mode, &small).unwrap();
    repo.store(&mode, &big).unwrap();
    assert_eq!(repo.load("d", &mode).unwrap(), big, "second store wins");
    assert_eq!(repo.catalog().unwrap().len(), 1, "still one catalogue entry");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sub_sector_and_multi_megabyte_requests_replay() {
    let trace = Trace::from_bunches(
        "sizes",
        vec![
            Bunch::new(0, vec![IoPackage::read(0, 1)]), // 1 byte
            Bunch::new(1_000_000, vec![IoPackage::write(8, 100)]), // sub-sector write
            Bunch::new(2_000_000, vec![IoPackage::read(1024, 8 << 20)]), // 8 MiB
        ],
    );
    let mut sim = ArraySpec::hdd_raid5(6).build();
    let report = replay_prepared(&mut sim, &trace, AddressPolicy::Wrap);
    assert_eq!(report.completions.len(), 3);
    // The 8 MiB read fans out over many strips and beats serial time.
    let big = report.completions.iter().find(|c| c.bytes == 8 << 20).unwrap();
    assert!(big.latency().as_millis_f64() < 120.0, "8 MiB read {}", big.latency());
    // Sub-sector requests occupy one sector at the device.
    assert!(sim.stats().physical_bytes >= (8 << 20) + 512 * 2);
}

#[test]
fn single_disk_target_works_end_to_end() {
    // RAID-0 over one disk: the pass-through configuration used for
    // calibration must also handle full replays.
    let trace = Trace::from_bunches(
        "single",
        (0..100u64)
            .map(|i| {
                let kind = if i % 2 == 0 { OpKind::Read } else { OpKind::Write };
                Bunch::new(i * 5_000_000, vec![IoPackage::new(i * 1000, 16384, kind)])
            })
            .collect(),
    );
    let mut sim = ArraySpec::single_hdd().build();
    let report = replay_prepared(&mut sim, &trace, AddressPolicy::Wrap);
    assert_eq!(report.completions.len(), 100);
    assert!((sim.stats().write_amplification() - 1.0).abs() < 1e-9, "no parity on one disk");
}
