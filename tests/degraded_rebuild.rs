//! Integration: the full degraded-operation lifecycle — fail, serve through
//! parity, rebuild onto a replacement, return to healthy service — driven by
//! the replay engine, with power accounted throughout.

use tracer_core::prelude::*;
use tracer_sim::RebuildConfig;

fn workload(n: u64) -> Trace {
    Trace::from_bunches(
        "w",
        (0..n)
            .map(|i| {
                let kind = if i % 4 == 0 { OpKind::Write } else { OpKind::Read };
                Bunch::new(
                    i * 20_000_000,
                    vec![IoPackage::new((i * 524_287) % 2_000_000, 16384, kind)],
                )
            })
            .collect(),
    )
}

#[test]
fn degraded_lifecycle_end_to_end() {
    let mut sim = ArraySpec::hdd_raid5(4).build();

    // Phase 1: healthy service.
    let healthy = replay(&mut sim, &workload(100), &ReplayConfig::default());
    assert_eq!(healthy.summary.total_ios, 100);

    // Phase 2: a member fails; the same workload replays degraded.
    sim.fail_disk(2);
    let degraded = replay(&mut sim, &workload(100), &ReplayConfig::default());
    assert_eq!(degraded.summary.total_ios, 100, "no request may be lost degraded");
    assert!(
        degraded.summary.avg_response_ms > healthy.summary.avg_response_ms,
        "reconstruction costs latency: {} vs {}",
        degraded.summary.avg_response_ms,
        healthy.summary.avg_response_ms
    );

    // Phase 3: replacement + rebuild while a third workload replays.
    let status = sim.start_rebuild(RebuildConfig {
        delay_between: SimDuration::from_millis(2),
        max_stripes: 300,
    });
    assert_eq!(status.disk, 2);
    let during = replay(&mut sim, &workload(100), &ReplayConfig::default());
    assert_eq!(during.summary.total_ios, 100, "foreground survives the rebuild");
    sim.run_to_idle();
    assert!(sim.rebuild_status().is_none(), "rebuild finished");

    // Phase 4: healthy again — latency returns to (near) the healthy level.
    let after = replay(&mut sim, &workload(100), &ReplayConfig::default());
    assert!(
        after.summary.avg_response_ms < degraded.summary.avg_response_ms,
        "post-rebuild {} must beat degraded {}",
        after.summary.avg_response_ms,
        degraded.summary.avg_response_ms
    );
}

#[test]
fn degraded_array_draws_less_power_than_healthy() {
    let trace = workload(200);
    let run = |fail: Option<usize>| {
        let mut sim = ArraySpec::hdd_raid5(4).build();
        if let Some(d) = fail {
            sim.fail_disk(d);
        }
        let report = replay(&mut sim, &trace, &ReplayConfig::default());
        sim.power_log().avg_watts(report.started, report.finished)
    };
    let healthy_w = run(None);
    let degraded_w = run(Some(0));
    // The parked member idles at standby power; reconstruction adds some
    // survivor activity but cannot make up a whole spindle.
    assert!(
        degraded_w < healthy_w - 2.0,
        "degraded {degraded_w} W must undercut healthy {healthy_w} W"
    );
}

#[test]
fn rebuild_consumes_energy_and_disk_time() {
    let mut idle_sim = ArraySpec::hdd_raid5(4).build();
    idle_sim.run_until(SimTime::from_secs(30));
    let idle_joules = idle_sim.power_log().energy_joules(SimTime::ZERO, SimTime::from_secs(30));

    let mut sim = ArraySpec::hdd_raid5(4).build();
    sim.fail_disk(1);
    sim.start_rebuild(RebuildConfig {
        delay_between: SimDuration::from_millis(1),
        max_stripes: 500,
    });
    sim.run_to_idle();
    let span = sim.now();
    sim.run_until(SimTime::from_secs(30).max(span));
    let rebuild_joules = sim.power_log().energy_joules(SimTime::ZERO, SimTime::from_secs(30));
    // Rebuild reads three survivors and writes the replacement; spin-up of
    // the replacement plus transfers must exceed the all-idle baseline over
    // the same wall window... except the parked standby time offsets it, so
    // compare per-phase: survivors must have been busy.
    let busy: u64 = sim.stats().busy_ns.iter().sum();
    assert!(busy > 0);
    assert!(sim.stats().physical_bytes >= 500 * 4 * 128 * 1024, "stripe traffic moved");
    // Energy sanity: both are positive and the same order of magnitude.
    assert!(rebuild_joules > idle_joules * 0.5);
}

#[test]
fn eraid_policy_uses_degraded_machinery_consistently() {
    // The policy harness and the raw engine must agree on what degraded
    // operation costs.
    let trace = workload(150);
    let mut host = EvaluationHost::new();
    let outcomes = compare_policies(
        &mut host,
        || tracer_sim::ArraySpec::hdd_raid5(4).parts(),
        &trace,
        WorkloadMode::peak(16384, 50, 75),
        &[ConservationPolicy::DegradedParity { parked_disk: 1 }],
        "consistency",
    );
    let mut sim = ArraySpec::hdd_raid5(4).build();
    sim.fail_disk(1);
    let raw = replay(&mut sim, &trace, &ReplayConfig::default());
    assert!((outcomes[1].avg_response_ms - raw.summary.avg_response_ms).abs() < 1e-9);
    assert!((outcomes[1].iops - raw.summary.iops).abs() < 1e-9);
}
