//! PR-5 API-redesign contract: `SweepBuilder` is the single sweep entry
//! point, and every legacy `*_with` function is a thin shim over it. Each
//! shim must stay byte-identical to the builder at 1 and 4 workers — same
//! results, same database records, same ids — and turning the `tracer-obs`
//! instrumentation on must not perturb any report bit.

// The legacy shims are deliberately exercised: this file is their
// bit-compatibility guarantee.
#![allow(deprecated)]

use tracer_core::prelude::*;
use tracer_core::{repeated_trials_with, run_parallel_with};

fn trace(n: u64) -> Trace {
    Trace::from_bunches(
        "t",
        (0..n)
            .map(|i| Bunch::new(i * 6_000_000, vec![IoPackage::read((i * 48_271) % 100_000, 8192)]))
            .collect(),
    )
}

#[test]
fn builder_load_sweep_matches_legacy_shim_bit_for_bit() {
    let mode = WorkloadMode::peak(8192, 50, 100);
    let loads = [20, 40, 60, 80];
    for workers in [1usize, 4] {
        let mut legacy_host = EvaluationHost::new();
        let legacy = load_sweep_with(
            &mut legacy_host,
            &SweepExecutor::new(workers),
            || ArraySpec::hdd_raid5(4).build(),
            &trace(60),
            mode,
            &loads,
            "sb",
        );
        let mut host = EvaluationHost::new();
        let built = SweepBuilder::new().workers(workers).loads(&loads).label("sb").load_sweep(
            &mut host,
            || ArraySpec::hdd_raid5(4).build(),
            &trace(60),
            mode,
        );
        assert_eq!(built, legacy, "load_sweep diverged at {workers} workers");
        assert_eq!(host.db.records(), legacy_host.db.records(), "db diverged at {workers} workers");
    }
}

#[test]
fn builder_sweep_matches_legacy_shim_bit_for_bit() {
    let cfg = SweepConfig {
        modes: vec![WorkloadMode::peak(4096, 0, 100), WorkloadMode::peak(16384, 100, 0)],
        loads: vec![30, 60],
    };
    for workers in [1usize, 4] {
        let mut legacy_host = EvaluationHost::new();
        let legacy = run_sweep_with(
            &mut legacy_host,
            &SweepExecutor::new(workers),
            || ArraySpec::hdd_raid5(4).build(),
            |mode| trace(40 + u64::from(mode.request_bytes / 4096)),
            &cfg,
            |_, _| {},
        );
        let mut host = EvaluationHost::new();
        let built = SweepBuilder::new().workers(workers).sweep(
            &mut host,
            || ArraySpec::hdd_raid5(4).build(),
            |mode| trace(40 + u64::from(mode.request_bytes / 4096)),
            &cfg,
        );
        assert_eq!(built, legacy, "sweep diverged at {workers} workers");
        assert_eq!(host.db.records(), legacy_host.db.records(), "db diverged at {workers} workers");
    }
}

#[test]
fn builder_trials_match_legacy_shim_bit_for_bit() {
    let mode = WorkloadMode::peak(8192, 50, 100);
    for workers in [1usize, 4] {
        let mut legacy_host = EvaluationHost::new();
        let legacy = repeated_trials_with(
            &mut legacy_host,
            &SweepExecutor::new(workers),
            || ArraySpec::hdd_raid5(4).build(),
            |seed| trace(25 + seed),
            mode,
            4,
            "trial",
        );
        let mut host = EvaluationHost::new();
        let built = SweepBuilder::new().workers(workers).label("trial").trials(
            &mut host,
            || ArraySpec::hdd_raid5(4).build(),
            |seed| trace(25 + seed),
            mode,
            4,
        );
        assert_eq!(format!("{built:?}"), format!("{legacy:?}"), "trials at {workers} workers");
        assert_eq!(host.db.records(), legacy_host.db.records(), "db diverged at {workers} workers");
    }
}

#[test]
fn builder_jobs_match_legacy_shim_bit_for_bit() {
    let jobs = || -> Vec<EvaluationJob> {
        (0..5)
            .map(|i| {
                EvaluationJob::new(
                    format!("job{i}"),
                    || ArraySpec::hdd_raid5(4).build(),
                    trace(30 + i),
                    WorkloadMode::peak(8192, 50, 100).at_load(100 - (i as u32) * 10),
                )
            })
            .collect()
    };
    for workers in [1usize, 4] {
        let mut legacy_host = EvaluationHost::new();
        let legacy = run_parallel_with(&mut legacy_host, &SweepExecutor::new(workers), jobs());
        let mut host = EvaluationHost::new();
        let built = SweepBuilder::new().workers(workers).jobs(&mut host, jobs());
        assert_eq!(built, legacy, "record ids diverged at {workers} workers");
        assert_eq!(host.db.records(), legacy_host.db.records(), "db diverged at {workers} workers");
    }
}

#[test]
fn obs_instrumentation_does_not_perturb_sweep_reports() {
    let mode = WorkloadMode::peak(8192, 50, 100);
    let loads = [25, 50, 75];
    let run = |sink: Option<tracer_obs::Sink>| {
        let mut host = EvaluationHost::new();
        let mut b = SweepBuilder::new().workers(2).loads(&loads).label("obs");
        if let Some(sink) = sink {
            b = b.obs(sink);
        }
        let result = b.load_sweep(&mut host, || ArraySpec::hdd_raid5(4).build(), &trace(50), mode);
        (result, host)
    };

    let (plain, plain_host) = run(None);
    let dir = std::env::temp_dir().join(format!("tracer-obs-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("obs dir");
    let path = dir.join("sweep.jsonl");
    let (observed, observed_host) = run(Some(tracer_obs::Sink::file(&path)));

    assert_eq!(observed, plain, "obs instrumentation must not change sweep results");
    assert_eq!(observed_host.db.records(), plain_host.db.records(), "db must match bit for bit");
    let snapshot = std::fs::read_to_string(&path).expect("obs snapshot written");
    assert!(snapshot.lines().count() > 0, "obs run must leave a snapshot behind");
    std::fs::remove_dir_all(&dir).ok();
}
