//! Format-pipeline integration: srt → replay format → repository → filter,
//! with statistics preserved at each hop.

use tracer_core::prelude::*;
use tracer_trace::{replay_format, srt};

#[test]
fn cello_trace_survives_the_srt_conversion_pipeline() {
    // Build a cello-like trace, render it to srt text (as HP ships it),
    // convert back with the format transformer, store as .replay, reload.
    let cello = CelloTraceBuilder { duration_s: 20.0, ..Default::default() }.build();
    let dir = std::env::temp_dir().join(format!("tracer_pipe_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let srt_path = dir.join("cello.srt");
    srt::write_srt(&cello, &srt_path).unwrap();
    let converted =
        srt::convert_file(&srt_path, "hp-cello99", srt::ConvertOptions::default()).unwrap();

    // Conversion may regroup bunches but must preserve IOs and bytes.
    assert_eq!(converted.io_count(), cello.io_count());
    assert_eq!(converted.total_bytes(), cello.total_bytes());
    let before = TraceStats::compute(&cello);
    let after = TraceStats::compute(&converted);
    assert!((before.read_ratio - after.read_ratio).abs() < 1e-9);
    assert!((before.avg_request_bytes - after.avg_request_bytes).abs() < 1e-6);

    let repo = TraceRepository::open(dir.join("repo")).unwrap();
    repo.store_named("cello99", &converted).unwrap();
    let reloaded = repo.load_named("cello99").unwrap();
    assert_eq!(reloaded, converted);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn filter_preserves_trace_character_at_every_level() {
    // §IV-A: the filter must preserve "the main accessing characteristics".
    let web =
        WebServerTraceBuilder { duration_s: 60.0, mean_iops: 150.0, ..Default::default() }.build();
    let full = TraceStats::compute(&web);
    let filter = ProportionalFilter::default();
    for pct in [10u32, 30, 50, 70, 90] {
        let stats = TraceStats::compute(&filter.filter(&web, pct));
        assert!(
            (stats.read_ratio - full.read_ratio).abs() < 0.05,
            "{pct}%: read ratio {} vs {}",
            stats.read_ratio,
            full.read_ratio
        );
        let size_drift =
            (stats.avg_request_bytes - full.avg_request_bytes).abs() / full.avg_request_bytes;
        assert!(size_drift < 0.10, "{pct}%: request-size drift {size_drift}");
        // Duration is preserved (original timestamps kept): the filtered
        // trace still spans (almost) the full window.
        assert!(
            stats.duration_ns as f64 > 0.9 * full.duration_ns as f64,
            "{pct}%: duration collapsed"
        );
    }
}

#[test]
fn fingerprint_quantifies_character_preservation() {
    use tracer_trace::TraceFingerprint;
    // The uniform filter preserves the fingerprint at every level; the
    // paper's central "without significantly changing the characteristics"
    // claim, measured.
    let web =
        WebServerTraceBuilder { duration_s: 120.0, mean_iops: 200.0, ..Default::default() }.build();
    let original = TraceFingerprint::compute(&web);
    let filter = ProportionalFilter::default();
    // The bound is generator-sensitive: at 10% retention the drift sits near
    // 0.12 and moves with the RNG stream, so leave headroom while staying far
    // below the 0.3 cross-workload separation asserted underneath.
    for pct in [10u32, 30, 50, 70, 90] {
        let f = TraceFingerprint::compute(&filter.filter(&web, pct));
        let d = original.distance(&f);
        assert!(d < 0.15, "load {pct}%: fingerprint drifted {d}");
    }
    // A genuinely different workload is far away.
    let oltp =
        tracer_workload::OltpTraceBuilder { duration_s: 120.0, ..Default::default() }.build();
    let d = original.distance(&TraceFingerprint::compute(&oltp));
    assert!(d > 0.3, "distinct workloads must be far apart: {d}");
}

#[test]
fn binary_format_handles_the_paper_scale() {
    // The paper's 2-minute RAID-5 trace: ~50k bunches, ~400k IO packages.
    let bunches: Vec<Bunch> = (0..50_000u64)
        .map(|i| {
            Bunch::new(
                i * 2_400_000,
                (0..8).map(|j| IoPackage::read((i * 8 + j) * 16 % 1_000_000, 4096)).collect(),
            )
        })
        .collect();
    let trace = Trace::from_bunches("paper-scale", bunches);
    assert_eq!(trace.io_count(), 400_000);
    let bytes = replay_format::to_bytes(&trace);
    // 13 B per IO + 12 B per bunch + header: ~5.8 MiB.
    assert!(bytes.len() < 8 << 20, "encoded size {}", bytes.len());
    let back = replay_format::from_bytes(&bytes).unwrap();
    assert_eq!(back.io_count(), 400_000);
    assert_eq!(back, trace);
}

#[test]
fn blkparse_text_flows_into_the_replay_pipeline() {
    use tracer_trace::blkparse;
    // Render a synthetic blkparse capture, import it, replay it.
    let mut text = String::from("# fake blkparse capture\n");
    for i in 0..200u64 {
        let t = i as f64 * 0.005;
        let sector = (i * 8191) % 1_000_000;
        let rwbs = if i % 4 == 0 { "W" } else { "R" };
        text.push_str(&format!(
            "  8,0  {}  {}  {:.9}  4053  D  {}  {} + 16 [fio]\n",
            i % 4,
            i + 1,
            t,
            rwbs,
            sector
        ));
    }
    let dir = std::env::temp_dir().join(format!("tracer_blk_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("capture.txt");
    std::fs::write(&path, &text).unwrap();

    let trace =
        blkparse::convert_file(&path, "sda", &blkparse::BlkparseOptions::default()).unwrap();
    assert_eq!(trace.io_count(), 200);
    let stats = TraceStats::compute(&trace);
    assert!((stats.read_ratio - 0.75).abs() < 1e-9);

    // Store it in the repository (compact v2 on disk) and replay it.
    let repo = TraceRepository::open(dir.join("repo")).unwrap();
    repo.store_named("imported", &trace).unwrap();
    let loaded = repo.load_named("imported").unwrap();
    assert_eq!(loaded, trace);
    let mut sim = ArraySpec::hdd_raid5(4).build();
    let report = replay(&mut sim, &loaded, &ReplayConfig::default());
    assert_eq!(report.issued_ios, 200);
    assert_eq!(report.completions.len(), 200);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compact_encoding_shrinks_repository_files() {
    use tracer_trace::{compact, replay_format};
    let trace =
        WebServerTraceBuilder { duration_s: 60.0, mean_iops: 200.0, ..Default::default() }.build();
    let v1 = replay_format::to_bytes(&trace).len();
    let v2 = compact::to_bytes(&trace).len();
    assert!(v2 * 2 < v1, "v2 {v2} should be well under half of v1 {v1}");
    // The repository writes v2; loading still round-trips.
    let dir = std::env::temp_dir().join(format!("tracer_v2_{}", std::process::id()));
    let repo = TraceRepository::open(&dir).unwrap();
    let path = repo.store_named("web", &trace).unwrap();
    assert!(std::fs::metadata(&path).unwrap().len() as usize <= v2 + 64);
    assert_eq!(repo.load_named("web").unwrap(), trace);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_repository_files_fail_loudly_not_silently() {
    let dir = std::env::temp_dir().join(format!("tracer_pipe_corrupt_{}", std::process::id()));
    let repo = TraceRepository::open(&dir).unwrap();
    let mode = WorkloadMode::peak(4096, 0, 0);
    let trace = Trace::from_bunches("d", vec![Bunch::new(0, vec![IoPackage::read(0, 512)])]);
    let path = repo.store(&mode, &trace).unwrap();

    // Truncate the stored file.
    let data = std::fs::read(&path).unwrap();
    std::fs::write(&path, &data[..data.len() - 3]).unwrap();
    assert!(repo.load("d", &mode).is_err());

    // Flip the magic.
    let mut data2 = data.clone();
    data2[0] = b'X';
    std::fs::write(&path, &data2).unwrap();
    assert!(repo.load("d", &mode).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn intensity_scaling_composes_with_filtering_through_replay() {
    let trace = Trace::from_bunches(
        "t",
        (0..100u64)
            .map(|i| Bunch::new(i * 10_000_000, vec![IoPackage::read(i * 64, 8192)]))
            .collect(),
    );
    // 50 % of the bunches, twice the pacing: same data volume as 50 %, in
    // half the time.
    let mut sim = ArraySpec::hdd_raid5(4).build();
    let normal = replay(
        &mut sim,
        &trace,
        &ReplayConfig { load: LoadControl::proportion(50), ..Default::default() },
    );
    let mut sim = ArraySpec::hdd_raid5(4).build();
    let compressed = replay(
        &mut sim,
        &trace,
        &ReplayConfig {
            load: LoadControl { proportion_pct: 50, intensity_pct: 200 },
            ..Default::default()
        },
    );
    assert_eq!(normal.issued_bytes, compressed.issued_bytes);
    assert!(compressed.span().as_secs_f64() < normal.span().as_secs_f64() * 0.6);
    // Twice the pacing ≈ twice the throughput on an unsaturated array.
    let ratio = compressed.summary.mbps / normal.summary.mbps;
    assert!((ratio - 2.0).abs() < 0.3, "intensity 200% gave MBPS ratio {ratio}");
}
