//! Cross-crate determinism of the parallel sweep engine: the pooled executor
//! must reproduce the serial sweep bit for bit — same accuracy rows, same
//! database records, same ids — at every worker count.

use tracer_core::prelude::*;

fn trace(n: u64) -> Trace {
    Trace::from_bunches(
        "t",
        (0..n)
            .map(|i| Bunch::new(i * 6_000_000, vec![IoPackage::read((i * 48_271) % 100_000, 8192)]))
            .collect(),
    )
}

#[test]
fn parallel_load_sweep_matches_serial_bit_for_bit() {
    let mode = WorkloadMode::peak(8192, 50, 100);
    let loads = [10, 30, 50, 70, 90];

    let mut serial = EvaluationHost::new();
    let want =
        load_sweep(&mut serial, || ArraySpec::hdd_raid5(4).build(), &trace(80), mode, &loads, "ps");

    for workers in [2usize, 4, 7] {
        let mut par = EvaluationHost::new();
        let got = SweepBuilder::new().workers(workers).loads(&loads).label("ps").load_sweep(
            &mut par,
            || ArraySpec::hdd_raid5(4).build(),
            &trace(80),
            mode,
        );
        assert_eq!(got, want, "sweep result diverged at {workers} workers");
        assert_eq!(par.db.records(), serial.db.records(), "db diverged at {workers} workers");
    }
}

#[test]
fn parallel_mode_sweep_matches_serial_bit_for_bit() {
    // A small multi-mode campaign: 4 modes × 4 load levels.
    let cfg = SweepConfig {
        modes: vec![
            WorkloadMode::peak(4096, 0, 100),
            WorkloadMode::peak(8192, 50, 50),
            WorkloadMode::peak(16384, 100, 0),
            WorkloadMode::peak(65536, 25, 75),
        ],
        loads: vec![25, 50, 75],
    };

    let run = |workers: usize| {
        let mut host = EvaluationHost::new();
        let results = SweepBuilder::new().workers(workers).sweep(
            &mut host,
            || ArraySpec::hdd_raid5(4).build(),
            |mode| {
                // Trace derived deterministically from the mode.
                let n = 40 + u64::from(mode.request_bytes / 4096);
                trace(n)
            },
            &cfg,
        );
        (results, host)
    };

    let (want, serial) = run(1);
    let (got, par) = run(4);
    assert_eq!(got, want);
    assert_eq!(par.db.records(), serial.db.records());
    assert_eq!(par.db.len(), cfg.modes.len() * (cfg.loads.len() + 1));
}

#[test]
fn parallel_trials_match_serial_bit_for_bit() {
    let mode = WorkloadMode::peak(8192, 50, 100);
    let run = |workers: usize| {
        let mut host = EvaluationHost::new();
        let summary = SweepBuilder::new().workers(workers).label("trial").trials(
            &mut host,
            || ArraySpec::hdd_raid5(4).build(),
            |seed| trace(30 + seed),
            mode,
            5,
        );
        (summary, host)
    };
    let (want, serial) = run(1);
    let (got, par) = run(3);
    assert_eq!(format!("{want:?}"), format!("{got:?}"));
    assert_eq!(par.db.records(), serial.db.records());
}
