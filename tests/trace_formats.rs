//! Cross-format differential acceptance: one golden trace stored as v1
//! (plain), v2 (compact), and v3 (mmap columnar) must replay through the
//! full engine to **byte-identical** reports, serially and under the pooled
//! sweep executor — and the v3 path must do it with zero `Bunch` heap
//! materializations.
//!
//! The whole file is one `#[test]` on purpose: the materialization counter
//! in `tracer_trace::source` is process-global, so concurrent tests in the
//! same binary would race on its deltas (same pattern as `zero_copy.rs`).

use tracer_core::executor::SweepExecutor;
use tracer_core::host::EvaluationHost;
use tracer_core::orchestrate::SweepBuilder;
use tracer_replay::{replay, LoadControl, ReplayConfig};
use tracer_sim::ArraySpec;
use tracer_trace::{
    bunch_materializations, replay_format, Bunch, IoPackage, Trace, TraceRepository, WorkloadMode,
};

/// The golden trace: mixed sizes, mixed directions, sequential runs with
/// jumps — enough structure to exercise every column encoder.
fn golden() -> Trace {
    let mut sector = 4096u64;
    let bunches = (0..160u64)
        .map(|i| {
            let n = 1 + (i % 4) as usize;
            let ios = (0..n as u64)
                .map(|j| {
                    if (i + j) % 11 == 0 {
                        sector = (sector * 2_654_435_761) % 40_000_000;
                    }
                    let bytes = 4096 * (1 + ((i + j) % 3) as u32);
                    let io = if (i + j) % 4 == 0 {
                        IoPackage::write(sector, bytes)
                    } else {
                        IoPackage::read(sector, bytes)
                    };
                    sector += u64::from(bytes) / 512;
                    io
                })
                .collect();
            Bunch::new(i * 5_000_000, ios)
        })
        .collect();
    Trace::from_bunches("hdd-raid5-4", bunches)
}

#[test]
fn every_format_replays_bit_identically() {
    let dir = std::env::temp_dir().join(format!("tracer_formats_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let repo = TraceRepository::open(&dir).unwrap();
    let trace = golden();

    // The same trace in all three on-disk formats, loaded through the one
    // format-negotiating entry point.
    replay_format::write_file_v1(&trace, &dir.join("gold_v1.replay")).unwrap();
    repo.store_named("gold_v2", &trace).unwrap();
    repo.store_v3_named("gold_v3", &trace).unwrap();
    let v1 = repo.load_view_named("gold_v1").unwrap();
    let v2 = repo.load_view_named("gold_v2").unwrap();
    let v3 = repo.load_view_named("gold_v3").unwrap();
    assert!(!v1.is_view(), "v1 decodes to a heap trace");
    assert!(!v2.is_view(), "v2 decodes to a heap trace");
    assert!(v3.is_view(), "v3 negotiates to an mmap view");

    // All three decode to the identical heap trace.
    assert_eq!(v1.to_trace().unwrap(), trace);
    assert_eq!(v2.to_trace().unwrap(), trace);
    assert_eq!(v3.to_trace().unwrap(), trace);

    // Single-cell engine replays across a load grid: every format's
    // serialized report must be byte-identical, and the v3 replays must not
    // materialize a single bunch.
    for (proportion_pct, intensity_pct) in [(100, 100), (40, 100), (100, 250), (73, 40)] {
        let cfg = ReplayConfig {
            load: LoadControl { proportion_pct, intensity_pct },
            ..Default::default()
        };
        let mut reports = Vec::new();
        for handle in [&v1, &v2, &v3] {
            let mut sim = ArraySpec::hdd_raid5(4).build();
            let before = bunch_materializations();
            let report = replay(&mut sim, handle, &cfg);
            let delta = bunch_materializations() - before;
            if handle.is_view() {
                assert_eq!(delta, 0, "v3 replay must stream straight off the mapping");
            }
            reports.push(serde_json::to_string(&report).unwrap());
        }
        assert_eq!(reports[0], reports[1], "v1 vs v2 at {proportion_pct}/{intensity_pct}");
        assert_eq!(reports[1], reports[2], "v2 vs v3 at {proportion_pct}/{intensity_pct}");
    }

    // Full load sweeps at 1 and 4 workers: identical accuracy tables from
    // the heap trace and the mapped view, still zero v3 materializations.
    let mode = WorkloadMode::peak(4096, 50, 100);
    for workers in [1usize, 4] {
        let sweep = |handle| {
            let mut host = EvaluationHost::new();
            let result = SweepBuilder::new()
                .executor(SweepExecutor::new(workers))
                .loads(&[30, 60, 100])
                .label("formats")
                .load_sweep(&mut host, || ArraySpec::hdd_raid5(4).build(), handle, mode);
            serde_json::to_string(&result).unwrap()
        };
        let from_v2 = sweep(&v2);
        let before = bunch_materializations();
        let from_v3 = sweep(&v3);
        assert_eq!(
            bunch_materializations() - before,
            0,
            "the {workers}-worker sweep must not materialize the view"
        );
        assert_eq!(from_v2, from_v3, "sweep reports diverged at {workers} workers");
    }

    // Positive control: a v2 heap decode moves the counter, so a silently
    // disconnected counter cannot fake the zeros above.
    let before = bunch_materializations();
    let decoded = replay_format::read_file(&dir.join("gold_v2.replay")).unwrap();
    assert_eq!(decoded, trace);
    assert!(bunch_materializations() - before > 0, "heap decode must count its materializations");

    std::fs::remove_dir_all(&dir).unwrap();
}
