//! End-to-end integration: the full TRACER pipeline from workload generation
//! through load-controlled replay to energy-efficiency records.

use tracer_core::prelude::*;
use tracer_replay::MemTarget;
use tracer_workload::iometer::run_peak_workload;

fn collect_trace(mode: WorkloadMode, secs: u64) -> Trace {
    let mut sim = ArraySpec::hdd_raid5(4).build();
    run_peak_workload(
        &mut sim,
        &IometerConfig {
            duration: SimDuration::from_secs(secs),
            ..IometerConfig::two_minutes(mode, 7)
        },
    )
    .trace
}

#[test]
fn generator_to_replay_to_database() {
    let mode = WorkloadMode::peak(8192, 50, 70);
    let trace = collect_trace(mode, 3);
    assert!(trace.io_count() > 100, "peak generator produced {} IOs", trace.io_count());

    let mut host = EvaluationHost::new();
    for load in [30u32, 60, 100] {
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let measured = EvaluationHost::measure_test(
            host.meter_cycle_ms,
            &mut sim,
            &trace,
            mode.at_load(load),
            100,
            "e2e",
        );
        host.commit(measured);
    }
    assert_eq!(host.db.len(), 3);

    // Throughput scales with load; efficiency improves with load (Fig. 9).
    let recs = host.db.records();
    assert!(recs[0].perf.iops < recs[1].perf.iops);
    assert!(recs[1].perf.iops < recs[2].perf.iops);
    assert!(recs[0].efficiency.iops_per_watt < recs[2].efficiency.iops_per_watt);
    // Power grows with load but stays above idle and below 2x idle.
    let idle = 16.0 + 4.0 * 5.0;
    for r in recs {
        assert!(r.efficiency.avg_watts > idle * 0.99, "{}", r.efficiency.avg_watts);
        assert!(r.efficiency.avg_watts < idle * 2.0);
    }
}

#[test]
fn repository_round_trip_preserves_replay_results() {
    let dir = std::env::temp_dir().join(format!("tracer_e2e_repo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let repo = TraceRepository::open(&dir).unwrap();

    let mode = WorkloadMode::peak(4096, 100, 50);
    let trace = collect_trace(mode, 2);
    repo.store(&mode, &trace).unwrap();
    let loaded = repo.load("raid5-hdd4", &mode).unwrap();
    assert_eq!(loaded, trace);

    let run = |t: &Trace| {
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let report = replay(&mut sim, t, &ReplayConfig::default());
        (report.issued_ios, report.summary.total_bytes, report.finished)
    };
    assert_eq!(run(&trace), run(&loaded));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn virtual_and_realtime_replayers_issue_identical_workloads() {
    let mode = WorkloadMode::peak(16384, 50, 50);
    let trace = collect_trace(mode, 1);
    let filtered = ProportionalFilter::default().filter(&trace, 40);

    // Virtual replay.
    let mut sim = ArraySpec::hdd_raid5(4).build();
    let report = tracer_replay::replay_prepared(&mut sim, &filtered, AddressPolicy::Wrap);

    // Real-time replay of the same filtered trace against a memory target.
    let target = MemTarget::instant();
    let rt = RealTimeReplayer { speedup: 10_000.0, workers: 4 }.replay(&target, &filtered);

    assert_eq!(report.issued_ios, rt.issued);
    assert_eq!(report.issued_bytes, target.bytes());
    assert_eq!(rt.failed, 0);
}

#[test]
fn command_session_drives_full_test() {
    let mode = WorkloadMode::peak(8192, 0, 100);
    let trace = std::sync::Arc::new(collect_trace(mode, 1));
    let mut session = CommandSession::new(
        |device: &str| (device == "raid5-hdd4").then(|| ArraySpec::hdd_raid5(4).build()),
        move |_: &str, _: &WorkloadMode| Some(std::sync::Arc::clone(&trace).into()),
    );
    session.handle_line("init-analyzer cycle=1000").unwrap();
    session.handle_line("configure device=raid5-hdd4 rs=8192 rn=0 rd=100 load=50").unwrap();
    let response = session.handle_line("start").unwrap();
    assert!(response.contains("iops="), "{response}");
    let query = session.handle_line("query device=raid5-hdd4").unwrap();
    assert!(query.contains("count=1"));
}

#[test]
fn spin_down_policy_saves_energy_on_idle_heavy_trace() {
    // A MAID-style ablation: a sparse trace on an array with aggressive
    // spin-down should burn less energy than the always-on array.
    let sparse: Trace = Trace::from_bunches(
        "sparse",
        (0..5u64)
            .map(|i| Bunch::new(i * 60_000_000_000, vec![IoPackage::read(i * 1000, 4096)]))
            .collect(),
    );
    let energy = |spin_down: Option<SimDuration>| {
        let template = ArraySpec::hdd_raid5(4).build();
        let mut cfg = template.config().clone();
        cfg.spin_down_after = spin_down;
        let devices = (0..4)
            .map(|_| {
                tracer_sim::Device::Hdd(tracer_sim::hdd::HddModel::new(
                    tracer_sim::hdd::HddParams::seagate_7200_12_500gb(),
                ))
            })
            .collect();
        let mut sim = ArraySim::new(cfg, devices);
        let report = replay(&mut sim, &sparse, &ReplayConfig::default());
        sim.power_log().energy_joules(report.started, report.finished)
    };
    let always_on = energy(None);
    let maid = energy(Some(SimDuration::from_secs(5)));
    assert!(
        maid < always_on * 0.9,
        "spin-down must save >10% on a sparse trace: {maid} vs {always_on}"
    );
}
