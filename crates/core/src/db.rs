//! Results database.
//!
//! "After each test, energy efficiency and performance results are stored as
//! records in the database for future retrievals. Each record … contains
//! information on energy efficiency and performance (e.g., time of the test,
//! workload modes, energy dissipation data …, performance result, and
//! energy-efficiency result)" (§III-A1). The store is an in-memory table with
//! a query API, persisted as JSON.

use crate::metrics::EfficiencyMetrics;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;
use tracer_replay::PerfSummary;
use tracer_trace::WorkloadMode;

/// Energy-dissipation data of a record: "average electrical current measured
/// in amperes, voltage measured in volts, and power measured in watts".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PowerData {
    /// Supply voltage, volts.
    pub volts: f64,
    /// Mean current, amperes.
    pub avg_amps: f64,
    /// Mean power, watts.
    pub avg_watts: f64,
    /// Total energy over the test, joules.
    pub energy_joules: f64,
}

/// One completed test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestRecord {
    /// Record id (assigned by the database).
    pub id: u64,
    /// Free-form label ("time of the test" in the paper; simulated runs use
    /// a caller-supplied tag).
    pub label: String,
    /// Device / array under test.
    pub device: String,
    /// The workload mode vector, including the configured load proportion.
    pub mode: WorkloadMode,
    /// Energy dissipation data.
    pub power: PowerData,
    /// Performance result.
    pub perf: PerfSummary,
    /// Energy-efficiency result.
    pub efficiency: EfficiencyMetrics,
}

/// Errors raised by database persistence.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The stored JSON does not decode.
    Decode(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "database I/O error: {e}"),
            DbError::Decode(e) => write!(f, "database decode error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

/// The in-memory results table.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Database {
    records: Vec<TestRecord>,
    next_id: u64,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a record, assigning and returning its id.
    pub fn insert(&mut self, mut record: TestRecord) -> u64 {
        record.id = self.next_id;
        self.next_id += 1;
        let id = record.id;
        self.records.push(record);
        id
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[TestRecord] {
        &self.records
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Fetch by id.
    pub fn get(&self, id: u64) -> Option<&TestRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Generic query: records matching a predicate.
    pub fn query<'a>(&'a self, pred: impl Fn(&TestRecord) -> bool + 'a) -> Vec<&'a TestRecord> {
        self.records.iter().filter(|r| pred(r)).collect()
    }

    /// Records for a device + workload mode (ignoring load proportion).
    pub fn by_mode<'a>(&'a self, device: &str, mode: &WorkloadMode) -> Vec<&'a TestRecord> {
        let device = device.to_string();
        let mode = *mode;
        self.query(move |r| {
            r.device == device
                && r.mode.request_bytes == mode.request_bytes
                && r.mode.random_pct == mode.random_pct
                && r.mode.read_pct == mode.read_pct
        })
    }

    /// Persist as pretty JSON.
    pub fn save(&self, path: &Path) -> Result<(), DbError> {
        let json =
            serde_json::to_string_pretty(self).map_err(|e| DbError::Decode(e.to_string()))?;
        fs::write(path, json)?;
        Ok(())
    }

    /// Load from JSON written by [`Database::save`].
    pub fn load(path: &Path) -> Result<Self, DbError> {
        let data = fs::read_to_string(path)?;
        serde_json::from_str(&data).map_err(|e| DbError::Decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(device: &str, mode: WorkloadMode, iops: f64) -> TestRecord {
        TestRecord {
            id: 0,
            label: "t0".into(),
            device: device.into(),
            mode,
            power: PowerData { volts: 220.0, avg_amps: 0.2, avg_watts: 44.0, energy_joules: 440.0 },
            perf: PerfSummary { iops, ..Default::default() },
            efficiency: EfficiencyMetrics {
                iops,
                iops_per_watt: iops / 44.0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut db = Database::new();
        let m = WorkloadMode::peak(4096, 50, 0);
        let a = db.insert(record("raid5", m, 100.0));
        let b = db.insert(record("raid5", m, 200.0));
        assert_eq!((a, b), (0, 1));
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.get(1).unwrap().perf.iops, 200.0);
        assert!(db.get(99).is_none());
    }

    #[test]
    fn by_mode_ignores_load() {
        let mut db = Database::new();
        let m = WorkloadMode::peak(4096, 50, 0);
        for load in [10, 50, 100] {
            db.insert(record("raid5", m.at_load(load), f64::from(load)));
        }
        db.insert(record("raid5", WorkloadMode::peak(512, 50, 0), 1.0));
        db.insert(record("ssd", m, 1.0));
        let hits = db.by_mode("raid5", &m);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|r| r.device == "raid5"));
    }

    #[test]
    fn query_predicate() {
        let mut db = Database::new();
        let m = WorkloadMode::peak(4096, 0, 100);
        db.insert(record("a", m, 10.0));
        db.insert(record("b", m, 1000.0));
        let fast = db.query(|r| r.perf.iops > 100.0);
        assert_eq!(fast.len(), 1);
        assert_eq!(fast[0].device, "b");
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("tracer_db_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.json");
        let mut db = Database::new();
        db.insert(record("raid5", WorkloadMode::peak(65536, 25, 75).at_load(40), 321.0));
        db.save(&path).unwrap();
        let back = Database::load(&path).unwrap();
        assert_eq!(back.records(), db.records());
        // Ids continue after reload.
        let mut back = back;
        let id = back.insert(record("x", WorkloadMode::peak(512, 0, 0), 1.0));
        assert_eq!(id, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("tracer_dbbad_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "{not json").unwrap();
        assert!(matches!(Database::load(&path), Err(DbError::Decode(_))));
        assert!(matches!(Database::load(&dir.join("missing.json")), Err(DbError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
