//! Energy-efficiency metrics: IOPS/Watt and MBPS/Kilowatt.
//!
//! §V-B of the paper introduces the two integrated metrics TRACER reports —
//! "IOPS/Watt can be utilized to decide, within one second, how many IO
//! requests can be processed per Watt. Similarly, MBPS/Kilowatt represents,
//! within one second, the amount of data processed per Kilowatt" — plus the
//! load-proportion (Eq. 1) and accuracy (Eq. 2) definitions used to validate
//! the load-control scheme.

use serde::{Deserialize, Serialize};
use tracer_power::EnergyReport;
use tracer_replay::PerfSummary;

/// Combined performance + energy-efficiency figures of one test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EfficiencyMetrics {
    /// Mean request rate, IO/s.
    pub iops: f64,
    /// Mean data rate, MB/s.
    pub mbps: f64,
    /// Mean response time, milliseconds.
    pub avg_response_ms: f64,
    /// Mean power over the measurement window, watts.
    pub avg_watts: f64,
    /// Total energy over the window, joules.
    pub energy_joules: f64,
    /// The paper's first headline metric: IOPS per watt.
    pub iops_per_watt: f64,
    /// The paper's second headline metric: MBPS per kilowatt.
    pub mbps_per_kilowatt: f64,
}

impl EfficiencyMetrics {
    /// Combine a performance summary with an energy report.
    pub fn from_parts(perf: &PerfSummary, energy: &EnergyReport) -> Self {
        let avg_watts = energy.avg_watts;
        Self {
            iops: perf.iops,
            mbps: perf.mbps,
            avg_response_ms: perf.avg_response_ms,
            avg_watts,
            energy_joules: energy.exact_joules,
            iops_per_watt: if avg_watts > 0.0 { perf.iops / avg_watts } else { 0.0 },
            mbps_per_kilowatt: if avg_watts > 0.0 { perf.mbps / (avg_watts / 1000.0) } else { 0.0 },
        }
    }
}

/// Eq. 1: the measured load proportion `LP(f, f') = T(f') / T(f)` — the
/// throughput of the manipulated trace over the throughput of the original,
/// in IOPS or MBPS.
pub fn load_proportion(manipulated_throughput: f64, original_throughput: f64) -> f64 {
    if original_throughput > 0.0 {
        manipulated_throughput / original_throughput
    } else {
        0.0
    }
}

/// Eq. 2: load-control accuracy `A(f, f') = LP(f, f') / LP_config`, where the
/// configured proportion is given in percent. Perfect control yields 1.0.
pub fn load_accuracy(measured_lp: f64, configured_pct: u32) -> f64 {
    let config = f64::from(configured_pct) / 100.0;
    if config > 0.0 {
        measured_lp / config
    } else {
        0.0
    }
}

/// One row of a load-control accuracy table (Tables IV/V, Fig. 8 curves).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Configured load proportion, percent.
    pub configured_pct: u32,
    /// Measured IOPS at this level.
    pub iops: f64,
    /// Measured MBPS at this level.
    pub mbps: f64,
    /// Measured load % of IOPS (Eq. 1 × 100).
    pub measured_iops_pct: f64,
    /// Measured load % of MBPS (Eq. 1 × 100).
    pub measured_mbps_pct: f64,
    /// Accuracy of IOPS (Eq. 2).
    pub accuracy_iops: f64,
    /// Accuracy of MBPS (Eq. 2).
    pub accuracy_mbps: f64,
}

impl AccuracyRow {
    /// Build a row from the measured throughputs at this level and at 100 %.
    pub fn new(configured_pct: u32, iops: f64, mbps: f64, full_iops: f64, full_mbps: f64) -> Self {
        let lp_iops = load_proportion(iops, full_iops);
        let lp_mbps = load_proportion(mbps, full_mbps);
        Self {
            configured_pct,
            iops,
            mbps,
            measured_iops_pct: lp_iops * 100.0,
            measured_mbps_pct: lp_mbps * 100.0,
            accuracy_iops: load_accuracy(lp_iops, configured_pct),
            accuracy_mbps: load_accuracy(lp_mbps, configured_pct),
        }
    }

    /// Worst-case relative control error of the row (|accuracy − 1|).
    pub fn max_error(&self) -> f64 {
        (self.accuracy_iops - 1.0).abs().max((self.accuracy_mbps - 1.0).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer_power::PowerAnalyzer;
    use tracer_sim::{ArrayPowerLog, SimTime};

    fn perf(iops: f64, mbps: f64) -> PerfSummary {
        PerfSummary { iops, mbps, window_s: 10.0, avg_response_ms: 5.0, ..Default::default() }
    }

    #[test]
    fn metrics_combine_perf_and_power() {
        let log = ArrayPowerLog::new(40.0, &[5.0, 5.0]); // 50 W flat
        let report = PowerAnalyzer::measure_window(&log, SimTime::ZERO, SimTime::from_secs(10));
        let m = EfficiencyMetrics::from_parts(&perf(500.0, 20.0), &report);
        assert!((m.avg_watts - 50.0).abs() < 1e-9);
        assert!((m.energy_joules - 500.0).abs() < 1e-9);
        assert!((m.iops_per_watt - 10.0).abs() < 1e-9);
        assert!((m.mbps_per_kilowatt - 400.0).abs() < 1e-9);
        assert!((m.avg_response_ms - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_power_yields_zero_efficiency() {
        let log = ArrayPowerLog::new(0.0, &[]);
        let report = PowerAnalyzer::measure_window(&log, SimTime::ZERO, SimTime::from_secs(1));
        let m = EfficiencyMetrics::from_parts(&perf(100.0, 1.0), &report);
        assert_eq!(m.iops_per_watt, 0.0);
        assert_eq!(m.mbps_per_kilowatt, 0.0);
    }

    #[test]
    fn equations_one_and_two() {
        // Table IV's first column: configured 10 %, measured 9.9266 %.
        let lp = load_proportion(9.9266, 100.0);
        assert!((lp - 0.099266).abs() < 1e-9);
        let acc = load_accuracy(lp, 10);
        assert!((acc - 0.99266).abs() < 1e-9);
        assert_eq!(load_proportion(5.0, 0.0), 0.0);
        assert_eq!(load_accuracy(0.5, 0), 0.0);
    }

    #[test]
    fn accuracy_row() {
        let row = AccuracyRow::new(20, 201.0, 2.05, 1000.0, 10.0);
        assert!((row.measured_iops_pct - 20.1).abs() < 1e-9);
        assert!((row.measured_mbps_pct - 20.5).abs() < 1e-9);
        assert!((row.accuracy_iops - 1.005).abs() < 1e-9);
        assert!((row.accuracy_mbps - 1.025).abs() < 1e-9);
        assert!((row.max_error() - 0.025).abs() < 1e-9);
    }
}
