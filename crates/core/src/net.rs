//! The communicator: evaluation host ↔ workload generator over TCP.
//!
//! In the paper's architecture "the communicator in the evaluation host
//! interacts with the communicator in the workload generator through the TCP
//! socket channel" (§III-A1) — the host and the generator are separate
//! machines. This module reproduces that split faithfully: a
//! [`GeneratorServer`] listens on a socket, parses the line protocol of
//! [`crate::messages`] with the same [`CommandSession`] the in-process path
//! uses, runs tests, and streams responses back; a [`HostClient`] is the
//! evaluation-host side.
//!
//! The wire format is the GUI text protocol, one command per line; responses
//! are `ok …` or `err …` lines. The extra verb `quit` (wire-only; not part of
//! the command grammar) ends the server's accept loop.
//!
//! A generator drives one array and therefore serves **one host at a time**:
//! while a connection is active, any further connection is answered with a
//! single `err busy` line and closed immediately rather than silently queued
//! behind the active session. Hosts that need concurrency use the job service
//! in the `tracer-serve` crate instead.

use crate::host::{CommandSession, SessionError};
use crate::messages::{format_job_command, parse_reply, JobCommand, Reply};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tracer_sim::ArraySim;
use tracer_trace::{TraceHandle, WorkloadMode};

/// The workload-generator machine: accepts one evaluation host at a time and
/// executes its commands.
pub struct GeneratorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<io::Result<()>>>,
}

impl GeneratorServer {
    /// Bind to an ephemeral localhost port and serve in a background thread.
    /// `build_array` constructs the device under test per run; `load_trace`
    /// resolves `(device, mode)` to a shared handle on the trace to replay.
    ///
    /// One connection is served at a time; a second concurrent connection
    /// receives `err busy` and is closed.
    pub fn spawn<B, L>(build_array: B, load_trace: L) -> io::Result<Self>
    where
        B: FnMut(&str) -> Option<ArraySim> + Send + 'static,
        L: FnMut(&str, &WorkloadMode) -> Option<TraceHandle> + Send + 'static,
    {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || serve(listener, flag, build_array, load_trace));
        Ok(Self { addr, stop, handle: Some(handle) })
    }

    /// The address the host connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until a client ends the server with the `quit` verb (the
    /// foreground deployment of `tracer serve`).
    pub fn shutdown_on_quit(mut self) -> io::Result<()> {
        match self.handle.take() {
            Some(h) => h.join().map_err(|_| io::Error::other("server thread panicked"))?,
            None => Ok(()),
        }
    }

    /// Stop the server (even mid-connection) and join its thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock a parked accept; a busy server notices the flag on its
        // read timeout instead.
        if let Ok(mut stream) = TcpStream::connect(self.addr) {
            let _ = stream.write_all(b"quit\n");
        }
        match self.handle.take() {
            Some(h) => h.join().map_err(|_| io::Error::other("server thread panicked"))?,
            None => Ok(()),
        }
    }
}

fn serve<B, L>(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    build_array: B,
    load_trace: L,
) -> io::Result<()>
where
    B: FnMut(&str) -> Option<ArraySim>,
    L: FnMut(&str, &WorkloadMode) -> Option<TraceHandle>,
{
    // One long-lived session: results accumulate across connections, like the
    // generator machine's process does. The listener is non-blocking so the
    // loop can interleave admission control (rejecting extra connections with
    // `err busy`) with serving the active one.
    listener.set_nonblocking(true)?;
    let mut session = CommandSession::new(build_array, load_trace);
    let mut active: Option<(BufReader<TcpStream>, BufWriter<TcpStream>)> = None;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if active.is_some() {
                    // Documented single-session contract: tell the extra host
                    // it lost the race instead of queueing it silently.
                    let mut writer = BufWriter::new(stream);
                    let _ = writer.write_all(b"err busy\n");
                    let _ = writer.flush();
                } else {
                    // A finite read timeout lets the server notice a shutdown
                    // request and waiting clients while this one sits idle.
                    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
                    let reader = BufReader::new(stream.try_clone()?);
                    active = Some((reader, BufWriter::new(stream)));
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        let Some((reader, writer)) = active.as_mut() else {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {
                active = None; // client hung up cleanly
                continue;
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                active = None; // client vanished mid-line
                continue;
            }
        }
        let body = line.trim();
        if body.is_empty() {
            continue;
        }
        if body == "quit" {
            break;
        }
        let reply = match session.handle_line(body) {
            Ok(ok) => ok,
            Err(SessionError::Parse(e)) => format!("err {e}"),
            Err(e) => format!("err {e}"),
        };
        // A failed write means the client disconnected between command and
        // response (e.g. abruptly mid-exchange); drop the connection and keep
        // serving — the generator process must outlive any one host.
        let sent = writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if sent.is_err() {
            active = None;
        }
    }
    Ok(())
}

/// The evaluation-host side of the communicator.
pub struct HostClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl HostClient {
    /// Connect to a generator.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: BufWriter::new(stream) })
    }

    /// Bound every reply wait by `timeout` (`None` restores blocking reads).
    /// The fabric coordinator sets this so a hung node surfaces as an I/O
    /// error — its heartbeat — instead of wedging the whole campaign.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one protocol line and wait for the response line.
    pub fn send_line(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "generator closed"));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Send a typed command (formatted onto the wire protocol).
    pub fn send(&mut self, cmd: &crate::messages::HostCommand) -> io::Result<String> {
        self.send_line(&crate::messages::format_command(cmd))
    }

    /// Send a typed job command (the `tracer-serve` protocol) and parse the
    /// response line. Malformed responses map to [`io::ErrorKind::InvalidData`].
    pub fn send_job(&mut self, cmd: &JobCommand) -> io::Result<Reply> {
        let line = self.send_line(&format_job_command(cmd))?;
        parse_reply(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Submit a job; `Ok(Ok(id))` on acceptance, `Ok(Err(reply))` on a
    /// protocol-level rejection such as `err busy`.
    pub fn submit_job(
        &mut self,
        device: &str,
        mode: WorkloadMode,
        intensity_pct: u32,
        name: Option<&str>,
    ) -> io::Result<Result<u64, Reply>> {
        self.submit_job_opts(device, mode, intensity_pct, name, 0, None)
    }

    /// [`HostClient::submit_job`] with scheduling options: a non-zero
    /// `priority` opts into deferred admission (the service parks the job
    /// beyond the strict queue bound instead of answering `err busy`), and
    /// `deadline_ms` expires the job if it is still queued when it elapses.
    pub fn submit_job_opts(
        &mut self,
        device: &str,
        mode: WorkloadMode,
        intensity_pct: u32,
        name: Option<&str>,
        priority: u8,
        deadline_ms: Option<u64>,
    ) -> io::Result<Result<u64, Reply>> {
        let reply = self.send_job(&JobCommand::Submit {
            device: device.to_string(),
            mode,
            intensity_pct,
            name: name.map(str::to_string),
            priority,
            deadline_ms,
        })?;
        match reply.id() {
            Some(id) if reply.ok => Ok(Ok(id)),
            _ => Ok(Err(reply)),
        }
    }

    /// Liveness probe: `Ok(true)` when the service answers `ok pong`.
    pub fn ping(&mut self) -> io::Result<bool> {
        let reply = self.send_job(&JobCommand::Ping)?;
        Ok(reply.ok && reply.head == "pong")
    }

    /// Query a job's lifecycle state (`queued`, `running`, `done`, `failed`,
    /// `cancelled`); `Ok(Err(reply))` when the id is unknown.
    pub fn job_status(&mut self, id: u64) -> io::Result<Result<String, Reply>> {
        let reply = self.send_job(&JobCommand::Status { id })?;
        match reply.field("state") {
            Some(state) if reply.ok => Ok(Ok(state.to_string())),
            _ => Ok(Err(reply)),
        }
    }

    /// Fetch a finished job's metrics; `Ok(Err(reply))` while it is still
    /// pending or if it failed / was cancelled.
    pub fn job_result(&mut self, id: u64) -> io::Result<Result<Reply, Reply>> {
        let reply = self.send_job(&JobCommand::Result { id })?;
        if reply.ok {
            Ok(Ok(reply))
        } else {
            Ok(Err(reply))
        }
    }

    /// Cancel a job. A queued job is cancelled on the spot (`ok cancelled`);
    /// a running job is flagged and its result discarded when the evaluation
    /// finishes (`ok cancelling`). `Ok(Err(reply))` when it already reached a
    /// terminal state.
    pub fn cancel_job(&mut self, id: u64) -> io::Result<Result<(), Reply>> {
        let reply = self.send_job(&JobCommand::Cancel { id })?;
        if reply.ok {
            Ok(Ok(()))
        } else {
            Ok(Err(reply))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::HostCommand;
    use tracer_sim::ArraySpec;
    use tracer_trace::{Bunch, IoPackage, Trace};

    fn test_trace() -> Trace {
        Trace::from_bunches(
            "t",
            (0..40u64)
                .map(|i| {
                    Bunch::new(i * 10_000_000, vec![IoPackage::read((i * 997) % 50_000, 4096)])
                })
                .collect(),
        )
    }

    fn spawn_server() -> GeneratorServer {
        let shared = TraceHandle::from(test_trace());
        GeneratorServer::spawn(
            |device| (device == "raid5-hdd4").then(|| ArraySpec::hdd_raid5(4).build()),
            move |_, _| Some(shared.clone()),
        )
        .expect("bind localhost")
    }

    #[test]
    fn full_session_over_tcp() {
        let server = spawn_server();
        let mut client = HostClient::connect(server.addr()).unwrap();

        let r = client.send_line("init-analyzer cycle=1000").unwrap();
        assert!(r.starts_with("ok"), "{r}");
        let r =
            client.send_line("configure device=raid5-hdd4 rs=4096 rn=50 rd=100 load=50").unwrap();
        assert!(r.contains("configured"), "{r}");
        let r = client.send_line("start").unwrap();
        assert!(r.contains("iops="), "{r}");
        let r = client.send_line("query device=raid5-hdd4").unwrap();
        assert!(r.contains("count=1"), "{r}");
        server.shutdown().unwrap();
    }

    #[test]
    fn typed_commands_cross_the_wire() {
        let server = spawn_server();
        let mut client = HostClient::connect(server.addr()).unwrap();
        let mode = WorkloadMode::peak(4096, 0, 100).at_load(20);
        let r = client
            .send(&HostCommand::Configure { device: "raid5-hdd4".into(), mode, intensity_pct: 100 })
            .unwrap();
        assert!(r.contains("configured"));
        let r = client.send(&HostCommand::Start).unwrap();
        assert!(r.contains("iops="), "{r}");
        server.shutdown().unwrap();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let server = spawn_server();
        let mut client = HostClient::connect(server.addr()).unwrap();
        let r = client.send_line("gibberish").unwrap();
        assert!(r.starts_with("err"), "{r}");
        let r = client.send_line("start").unwrap();
        assert!(r.starts_with("err"), "start before configure: {r}");
        // The session survives errors.
        let r = client.send_line("configure device=raid5-hdd4 rs=4096 rn=0 rd=0 load=100").unwrap();
        assert!(r.starts_with("ok"));
        server.shutdown().unwrap();
    }

    #[test]
    fn second_concurrent_connection_is_rejected_busy() {
        let server = spawn_server();
        let mut first = HostClient::connect(server.addr()).unwrap();
        let r = first.send_line("init-analyzer cycle=1000").unwrap();
        assert!(r.starts_with("ok"), "{r}");

        // While the first session is active, a second host is turned away
        // with a single busy line rather than queued.
        let mut second = HostClient::connect(server.addr()).unwrap();
        let r = second.send_line("finalize-analyzer").unwrap();
        assert_eq!(r, "err busy");

        // The first session is unaffected.
        let r = first.send_line("finalize-analyzer").unwrap();
        assert!(r.starts_with("ok"), "{r}");

        // Once the first host hangs up, a fresh connection is admitted.
        drop(first);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let mut next = HostClient::connect(server.addr()).unwrap();
            match next.send_line("init-analyzer cycle=500") {
                Ok(r) if r.starts_with("ok") => break,
                Ok(r) => assert_eq!(r, "err busy", "unexpected reply {r}"),
                Err(_) => {} // rejected connection already closed
            }
            assert!(std::time::Instant::now() < deadline, "server never freed the slot");
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn abrupt_disconnect_mid_command_keeps_server_alive() {
        let server = spawn_server();
        {
            // Write half a command with no newline, then vanish.
            let mut raw = TcpStream::connect(server.addr()).unwrap();
            raw.write_all(b"configure device=raid5-hdd4 rs=4096").unwrap();
            raw.flush().unwrap();
            std::thread::sleep(Duration::from_millis(30));
        } // dropped: TCP reset/EOF mid-line

        // The server must shrug it off and admit the next host.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let mut next = HostClient::connect(server.addr()).unwrap();
            match next.send_line("init-analyzer cycle=1000") {
                Ok(r) if r.starts_with("ok") => break,
                Ok(r) => assert_eq!(r, "err busy", "unexpected reply {r}"),
                Err(_) => {}
            }
            assert!(std::time::Instant::now() < deadline, "server wedged after abrupt disconnect");
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn session_state_survives_reconnection() {
        let server = spawn_server();
        {
            let mut c1 = HostClient::connect(server.addr()).unwrap();
            c1.send_line("configure device=raid5-hdd4 rs=4096 rn=0 rd=100 load=100").unwrap();
            let r = c1.send_line("start").unwrap();
            assert!(r.contains("iops="), "{r}");
        } // c1 disconnects
          // The server may reject with `err busy` until it reaps c1's EOF.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let mut c2 = HostClient::connect(server.addr()).unwrap();
            match c2.send_line("query device=raid5-hdd4") {
                Ok(r) if r.starts_with("ok") => {
                    assert!(r.contains("count=1"), "results persisted across connections: {r}");
                    break;
                }
                Ok(r) => assert_eq!(r, "err busy", "unexpected reply {r}"),
                Err(_) => {}
            }
            assert!(std::time::Instant::now() < deadline, "server never freed the slot");
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown().unwrap();
    }
}
