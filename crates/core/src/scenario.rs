#![doc = "tracer-invariant: deterministic"]
//! Declarative scenario files: one [`ScenarioSpec`] from TOML to sweep report.
//!
//! The paper's experiments are each "build this testbed, synthesize or load
//! this workload, replay it over this load grid". This module captures that
//! triple in a small TOML-subset scenario file so the figure/table benches,
//! the `tracer sweep --scenario` CLI, the serve nodes and the fabric
//! coordinator all consume the *same* declarative description instead of
//! hand-wired builder calls:
//!
//! ```toml
//! [scenario]
//! name = "fig08"
//!
//! [array]
//! device = "seagate-7200"   # DeviceSpec keyword (the device zoo)
//! layout = "raid5"          # raid0|raid1|raid5|raid6|raid10
//! disks = 6
//!
//! [power]
//! policy = "always-on"      # always-on | timeout (+ idle_seconds) | break-even
//!
//! [workload]
//! kind = "peak"             # peak | web | cello
//! rs = 4096                 # scalar or list; lists form a mode grid
//! rn = 50
//! rd = 0
//! seconds = 30
//! seed = 8
//!
//! [sweep]
//! loads = "all"             # the paper's ten levels, or e.g. [20, 50, 80]
//! workers = 1               # 0 = one per core; the report never depends on it
//! ```
//!
//! The parser is hand-rolled (the dependency set carries no TOML crate) and
//! strict: unknown sections or keys, duplicate keys, type mismatches, bad
//! grids and invalid geometries are all line-numbered
//! [`TracerError::Config`] values — scenario input never panics.
//!
//! [`run_scenario`] drives the [`SweepBuilder`] grid and renders a
//! deterministic plain-text report. The report deliberately excludes the
//! worker count, so a 1-worker and a 4-worker run of the same file are
//! byte-identical (pinned by the figure benches and the CI smoke job).

use crate::db::Database;
use crate::error::TracerError;
use crate::host::EvaluationHost;
use crate::metrics::{AccuracyRow, EfficiencyMetrics};
use crate::orchestrate::{LoadSweepResult, SweepBuilder, TrialSummary};
use std::path::Path;
use tracer_sim::{ArraySpec, DeviceSpec, Layout, PowerPolicy, QueueDiscipline, SimDuration};
use tracer_trace::{sweep, Trace, WorkloadMode};
use tracer_workload::iometer::{run_peak_workload, IometerConfig};
use tracer_workload::{CelloTraceBuilder, WebServerTraceBuilder};

/// Which synthetic workload a scenario replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Closed-loop IOmeter-style peak collection (the §V-C1 grid).
    Peak,
    /// The Table III web-server workload synthesizer.
    Web,
    /// The cello99-shaped workload synthesizer (§V-C2).
    Cello,
}

impl WorkloadKind {
    fn parse(s: &str) -> Option<WorkloadKind> {
        match s {
            "peak" => Some(WorkloadKind::Peak),
            "web" => Some(WorkloadKind::Web),
            "cello" => Some(WorkloadKind::Cello),
            _ => None,
        }
    }
}

/// How a scenario's `rs`/`rn`/`rd` lists combine into workload modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// Full cross product, `rs`-major (the Fig. 9–11 panels).
    Cross,
    /// Element-wise zip; scalar entries broadcast (Fig. 9's panel B pairs).
    Zip,
}

/// The workload half of a scenario: a kind plus an `rs`/`rn`/`rd` mode grid.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload synthesizer.
    pub kind: WorkloadKind,
    /// Request sizes, bytes.
    pub rs: Vec<u32>,
    /// Random percentages.
    pub rn: Vec<u8>,
    /// Read percentages.
    pub rd: Vec<u8>,
    /// Grid combination rule.
    pub grid: Grid,
    /// Trace length, seconds (peak: collection window).
    pub seconds: u64,
    /// RNG seed override; each kind has its canonical default.
    pub seed: Option<u64>,
    /// Mean arrival rate for `web`/`cello`.
    pub mean_iops: Option<f64>,
}

impl WorkloadSpec {
    /// The workload modes this grid expands to, in deterministic order
    /// (`rs`-major for [`Grid::Cross`]; element-wise for [`Grid::Zip`]).
    pub fn modes(&self) -> Vec<WorkloadMode> {
        fn pick<T: Copy>(xs: &[T], i: usize) -> T {
            if xs.len() == 1 {
                xs[0]
            } else {
                xs[i]
            }
        }
        match self.grid {
            Grid::Cross => {
                let mut modes = Vec::with_capacity(self.rs.len() * self.rn.len() * self.rd.len());
                for &rs in &self.rs {
                    for &rn in &self.rn {
                        for &rd in &self.rd {
                            modes.push(WorkloadMode::peak(rs, rn, rd));
                        }
                    }
                }
                modes
            }
            Grid::Zip => {
                let n = self.rs.len().max(self.rn.len()).max(self.rd.len());
                (0..n)
                    .map(|i| {
                        WorkloadMode::peak(pick(&self.rs, i), pick(&self.rn, i), pick(&self.rd, i))
                    })
                    .collect()
            }
        }
    }

    /// Synthesize the trace for one mode (serve nodes call this per job;
    /// the mode's load level is ignored — synthesis always runs at peak).
    /// `trial` offsets the seed so repeated trials see fresh arrivals.
    pub fn trace(&self, array: &ArraySpec, mode: WorkloadMode, trial: u64) -> Trace {
        match self.kind {
            WorkloadKind::Peak => {
                let mut sim = array.build();
                run_peak_workload(
                    &mut sim,
                    &IometerConfig {
                        duration: SimDuration::from_secs(self.seconds),
                        ..IometerConfig::two_minutes(mode, self.seed.unwrap_or(0x7ace) + trial)
                    },
                )
                .trace
            }
            WorkloadKind::Web => WebServerTraceBuilder {
                duration_s: self.seconds as f64,
                mean_iops: self.mean_iops.unwrap_or(300.0),
                seed: self.seed.unwrap_or(0xF10) + trial,
                ..Default::default()
            }
            .build(),
            WorkloadKind::Cello => CelloTraceBuilder {
                duration_s: self.seconds as f64,
                mean_iops: self.mean_iops.unwrap_or(150.0),
                seed: self.seed.unwrap_or(0xCE110) + trial,
                ..Default::default()
            }
            .build(),
        }
    }
}

/// A fully validated scenario: testbed + workload grid + sweep shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (report header; no whitespace).
    pub name: String,
    /// The testbed to build for every cell.
    pub array: ArraySpec,
    /// The workload grid.
    pub workload: WorkloadSpec,
    /// Load levels to sweep (the 100 % baseline is implied).
    pub loads: Vec<u32>,
    /// Sweep executor workers (0 = one per core). Never affects the report.
    pub workers: usize,
    /// Repeated trials of the first mode (1 = none).
    pub trials: usize,
}

impl ScenarioSpec {
    /// Parse a scenario file's text.
    pub fn parse(text: &str) -> Result<ScenarioSpec, TracerError> {
        build_spec(text).map_err(TracerError::Config)
    }

    /// Read and parse a scenario file, prefixing errors with the path.
    pub fn from_file(path: impl AsRef<Path>) -> Result<ScenarioSpec, TracerError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| TracerError::Config(format!("{}: {e}", path.display())))?;
        build_spec(&text).map_err(|msg| TracerError::Config(format!("{}: {msg}", path.display())))
    }

    /// Total sweep cells: modes × load levels (baseline included).
    pub fn cells(&self) -> usize {
        let mut levels = self.loads.clone();
        if !levels.contains(&100) {
            levels.push(100);
        }
        levels.sort_unstable();
        levels.dedup();
        self.workload.modes().len() * levels.len()
    }
}

// ---------------------------------------------------------------------------
// TOML-subset tokenizer
// ---------------------------------------------------------------------------

/// A parsed scenario value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    List(Vec<i64>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::List(_) => "list",
        }
    }
}

/// One `key = value` line, tagged with its section and source line.
#[derive(Debug)]
struct Item {
    section: &'static str,
    key: String,
    value: Value,
    line: usize,
    used: bool,
}

/// Every section a scenario file may contain.
const SECTIONS: &[&str] = &["scenario", "array", "power", "device", "workload", "sweep"];

/// Cut a `#` comment, respecting `"…"` strings (no escapes in the subset).
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(s: &str, line: usize) -> Result<Value, String> {
    if let Some(body) = s.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("line {line}: unterminated string {s}"));
        };
        if body.contains('"') {
            return Err(format!("line {line}: stray quote inside string {s}"));
        }
        return Ok(Value::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Some(body) = s.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(format!("line {line}: unterminated list {s}"));
        };
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            let n: i64 = part
                .parse()
                .map_err(|_| format!("line {line}: list element {part:?} is not an integer"))?;
            items.push(n);
        }
        return Ok(Value::List(items));
    }
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    if let Ok(f) = s.parse::<f64>() {
        if f.is_finite() {
            return Ok(Value::Float(f));
        }
    }
    Err(format!("line {line}: cannot parse value {s:?}"))
}

fn tokenize(text: &str) -> Result<Vec<Item>, String> {
    let mut items: Vec<Item> = Vec::new();
    let mut section: Option<&'static str> = None;
    let mut seen_sections: Vec<&'static str> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = strip_comment(raw).trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(body) = trimmed.strip_prefix('[') {
            let Some(name) = body.strip_suffix(']') else {
                return Err(format!("line {line}: malformed section header {trimmed:?}"));
            };
            let Some(&known) = SECTIONS.iter().find(|s| **s == name) else {
                return Err(format!(
                    "line {line}: unknown section [{name}] (one of {})",
                    SECTIONS.join(", ")
                ));
            };
            if seen_sections.contains(&known) {
                return Err(format!("line {line}: duplicate section [{known}]"));
            }
            seen_sections.push(known);
            section = Some(known);
            continue;
        }
        let Some((key, value)) = trimmed.split_once('=') else {
            return Err(format!("line {line}: expected `key = value`, got {trimmed:?}"));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {line}: malformed key {key:?}"));
        }
        let Some(section) = section else {
            return Err(format!("line {line}: key {key:?} appears before any [section]"));
        };
        if items.iter().any(|i| i.section == section && i.key == key) {
            return Err(format!("line {line}: duplicate key `{key}` in [{section}]"));
        }
        let value = parse_scalar(value.trim(), line)?;
        items.push(Item { section, key: key.to_string(), value, line, used: false });
    }
    Ok(items)
}

// ---------------------------------------------------------------------------
// Typed extraction
// ---------------------------------------------------------------------------

/// Tokenized document with take-and-mark typed getters; anything left
/// untaken at the end is an unknown key.
struct Doc {
    items: Vec<Item>,
}

impl Doc {
    fn take(&mut self, section: &str, key: &str) -> Option<(usize, Value)> {
        let item = self.items.iter_mut().find(|i| i.section == section && i.key == key)?;
        item.used = true;
        Some((item.line, item.value.clone()))
    }

    fn str_of(&mut self, section: &str, key: &str) -> Result<Option<(usize, String)>, String> {
        match self.take(section, key) {
            None => Ok(None),
            Some((line, Value::Str(s))) => Ok(Some((line, s))),
            Some((line, v)) => Err(format!(
                "line {line}: [{section}] {key} must be a string, got {}",
                v.type_name()
            )),
        }
    }

    fn u64_of(&mut self, section: &str, key: &str) -> Result<Option<(usize, u64)>, String> {
        match self.take(section, key) {
            None => Ok(None),
            Some((line, Value::Int(n))) => u64::try_from(n)
                .map(|n| Some((line, n)))
                .map_err(|_| format!("line {line}: [{section}] {key} must be >= 0, got {n}")),
            Some((line, v)) => Err(format!(
                "line {line}: [{section}] {key} must be an integer, got {}",
                v.type_name()
            )),
        }
    }

    fn f64_of(&mut self, section: &str, key: &str) -> Result<Option<(usize, f64)>, String> {
        match self.take(section, key) {
            None => Ok(None),
            Some((line, Value::Float(f))) => Ok(Some((line, f))),
            Some((line, Value::Int(n))) => Ok(Some((line, n as f64))),
            Some((line, v)) => Err(format!(
                "line {line}: [{section}] {key} must be a number, got {}",
                v.type_name()
            )),
        }
    }

    /// Integer list; a scalar integer broadcasts to a one-element list.
    fn list_of(&mut self, section: &str, key: &str) -> Result<Option<(usize, Vec<i64>)>, String> {
        match self.take(section, key) {
            None => Ok(None),
            Some((line, Value::List(xs))) => {
                if xs.is_empty() {
                    return Err(format!("line {line}: [{section}] {key} must not be empty"));
                }
                Ok(Some((line, xs)))
            }
            Some((line, Value::Int(n))) => Ok(Some((line, vec![n]))),
            Some((line, v)) => Err(format!(
                "line {line}: [{section}] {key} must be an integer or a list, got {}",
                v.type_name()
            )),
        }
    }

    fn finish(self) -> Result<(), String> {
        match self.items.iter().find(|i| !i.used) {
            Some(i) => Err(format!("line {}: unknown key `{}` in [{}]", i.line, i.key, i.section)),
            None => Ok(()),
        }
    }
}

/// Bound-check every element of an integer list into `lo..=hi`.
fn bounded<T: TryFrom<i64>>(
    xs: Vec<i64>,
    line: usize,
    what: &str,
    lo: i64,
    hi: i64,
) -> Result<Vec<T>, String> {
    xs.into_iter()
        .map(|n| {
            if n < lo || n > hi {
                return Err(format!("line {line}: {what} element {n} must be {lo}-{hi}"));
            }
            T::try_from(n).map_err(|_| format!("line {line}: {what} element {n} out of range"))
        })
        .collect()
}

fn build_spec(text: &str) -> Result<ScenarioSpec, String> {
    let mut doc = Doc { items: tokenize(text)? };

    // [scenario]
    let name = match doc.str_of("scenario", "name")? {
        Some((line, name)) => {
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(format!(
                    "line {line}: scenario name must be non-empty without whitespace"
                ));
            }
            name
        }
        None => return Err("missing [scenario] name".to_string()),
    };

    // [array]
    let device = match doc.str_of("array", "device")? {
        Some((line, kw)) => DeviceSpec::parse(&kw).ok_or_else(|| {
            format!(
                "line {line}: unknown device {kw:?} (one of {})",
                DeviceSpec::KEYWORDS.join(", ")
            )
        })?,
        None => return Err("missing [array] device".to_string()),
    };
    let layout = match doc.str_of("array", "layout")? {
        Some((line, kw)) => Layout::parse(&kw).ok_or_else(|| {
            format!("line {line}: unknown layout {kw:?} (raid0|raid1|raid5|raid6|raid10)")
        })?,
        None => return Err("missing [array] layout".to_string()),
    };
    let disks = match doc.u64_of("array", "disks")? {
        Some((line, 0)) => return Err(format!("line {line}: [array] disks must be >= 1")),
        Some((_, n)) => n as usize,
        None => return Err("missing [array] disks".to_string()),
    };

    // [device]: member tuning, today only the tiered hybrid's knobs.
    let device = {
        let region_sectors = doc.u64_of("device", "region_sectors")?;
        let promote_after = doc.u64_of("device", "promote_after")?;
        let cache_regions = doc.u64_of("device", "cache_regions")?;
        let tuned = [
            region_sectors.map(|(l, _)| l),
            promote_after.map(|(l, _)| l),
            cache_regions.map(|(l, _)| l),
        ];
        match device {
            DeviceSpec::TieredHybrid(mut cfg) => {
                if let Some((line, n)) = region_sectors {
                    if n == 0 {
                        return Err(format!("line {line}: [device] region_sectors must be >= 1"));
                    }
                    cfg.region_sectors = n;
                }
                if let Some((_, n)) = promote_after {
                    cfg.promote_after = n as u32;
                }
                if let Some((_, n)) = cache_regions {
                    cfg.cache_regions = n as usize;
                }
                DeviceSpec::TieredHybrid(cfg)
            }
            other => {
                if let Some(line) = tuned.iter().flatten().next() {
                    return Err(format!(
                        "line {line}: [device] tuning requires device = \"tiered-hybrid\", \
                         not {:?}",
                        other.keyword()
                    ));
                }
                other
            }
        }
    };

    let array_name = doc.str_of("array", "name")?.map(|(_, n)| n).unwrap_or_else(|| name.clone());
    let mut array = ArraySpec::new(array_name, layout, disks, device);
    if let Some((_, n)) = doc.u64_of("array", "strip_sectors")? {
        array = array.strip_sectors(n);
    }
    if let Some((_, w)) = doc.f64_of("array", "chassis_watts")? {
        array = array.chassis_watts(w);
    }
    if let Some((_, r)) = doc.f64_of("array", "link_mbps")? {
        array = array.link_mbps(r);
    }
    if let Some((line, kw)) = doc.str_of("array", "queue")? {
        array = array.queue(match kw.as_str() {
            "fifo" => QueueDiscipline::Fifo,
            "elevator" => QueueDiscipline::Elevator,
            other => {
                return Err(format!("line {line}: unknown queue {other:?} (fifo|elevator)"));
            }
        });
    }

    // [power]
    let idle_seconds = doc.f64_of("power", "idle_seconds")?;
    let policy = match doc.str_of("power", "policy")? {
        None => {
            if let Some((line, _)) = idle_seconds {
                return Err(format!(
                    "line {line}: [power] idle_seconds needs policy = \"timeout\""
                ));
            }
            PowerPolicy::AlwaysOn
        }
        Some((line, kw)) => match kw.as_str() {
            "always-on" | "break-even" => {
                if let Some((line, _)) = idle_seconds {
                    return Err(format!(
                        "line {line}: [power] idle_seconds only applies to the timeout policy"
                    ));
                }
                if kw == "always-on" {
                    PowerPolicy::AlwaysOn
                } else {
                    PowerPolicy::BreakEven
                }
            }
            "timeout" => {
                let Some((idle_line, idle)) = idle_seconds else {
                    return Err(format!(
                        "line {line}: [power] policy \"timeout\" needs idle_seconds"
                    ));
                };
                if !(idle.is_finite() && idle > 0.0) {
                    return Err(format!(
                        "line {idle_line}: [power] idle_seconds must be positive, got {idle}"
                    ));
                }
                PowerPolicy::FixedTimeout { idle: SimDuration::from_secs_f64(idle) }
            }
            other => {
                return Err(format!(
                    "line {line}: unknown power policy {other:?} \
                     (always-on|timeout|break-even)"
                ));
            }
        },
    };
    array = array.power(policy);

    // Geometry and enclosure constants validate once, at parse time, so the
    // runner never sees an unbuildable testbed.
    if let Err(e) = array.try_parts() {
        return Err(format!("[array] invalid: {e}"));
    }

    // [workload]
    let kind = match doc.str_of("workload", "kind")? {
        None => WorkloadKind::Peak,
        Some((line, kw)) => WorkloadKind::parse(&kw)
            .ok_or_else(|| format!("line {line}: unknown workload kind {kw:?} (peak|web|cello)"))?,
    };
    let rs = match doc.list_of("workload", "rs")? {
        Some((line, xs)) => bounded::<u32>(xs, line, "[workload] rs", 1, i64::from(u32::MAX))?,
        None => return Err("missing [workload] rs".to_string()),
    };
    let rn = match doc.list_of("workload", "rn")? {
        Some((line, xs)) => bounded::<u8>(xs, line, "[workload] rn", 0, 100)?,
        None => return Err("missing [workload] rn".to_string()),
    };
    let rd = match doc.list_of("workload", "rd")? {
        Some((line, xs)) => bounded::<u8>(xs, line, "[workload] rd", 0, 100)?,
        None => return Err("missing [workload] rd".to_string()),
    };
    let grid = match doc.str_of("workload", "grid")? {
        None => Grid::Cross,
        Some((_, kw)) if kw == "cross" => Grid::Cross,
        Some((_, kw)) if kw == "zip" => Grid::Zip,
        Some((line, kw)) => {
            return Err(format!("line {line}: unknown grid {kw:?} (cross|zip)"));
        }
    };
    if grid == Grid::Zip {
        let n = rs.len().max(rn.len()).max(rd.len());
        for (what, len) in [("rs", rs.len()), ("rn", rn.len()), ("rd", rd.len())] {
            if len != 1 && len != n {
                return Err(format!(
                    "zip grid needs equal-length lists (or scalars): \
                     [workload] {what} has {len} elements, expected {n}"
                ));
            }
        }
    }
    let seconds = doc.u64_of("workload", "seconds")?.map(|(_, n)| n).unwrap_or(120);
    if seconds == 0 {
        return Err("[workload] seconds must be >= 1".to_string());
    }
    let seed = doc.u64_of("workload", "seed")?.map(|(_, n)| n);
    let mean_iops = match doc.f64_of("workload", "mean_iops")? {
        None => None,
        Some((line, f)) => {
            if kind == WorkloadKind::Peak {
                return Err(format!(
                    "line {line}: [workload] mean_iops applies to web/cello, \
                     not the closed-loop peak workload"
                ));
            }
            if !(f.is_finite() && f > 0.0) {
                return Err(format!("line {line}: [workload] mean_iops must be positive"));
            }
            Some(f)
        }
    };
    let workload = WorkloadSpec { kind, rs, rn, rd, grid, seconds, seed, mean_iops };

    // [sweep]
    let loads = match doc.take("sweep", "loads") {
        None => sweep::LOAD_PCTS.to_vec(),
        Some((_, Value::Str(kw))) if kw == "all" => sweep::LOAD_PCTS.to_vec(),
        Some((line, Value::Str(kw))) => {
            return Err(format!(
                "line {line}: [sweep] loads must be \"all\" or a list, got {kw:?}"
            ));
        }
        Some((line, Value::List(xs))) => {
            if xs.is_empty() {
                return Err(format!("line {line}: [sweep] loads must not be empty"));
            }
            bounded::<u32>(xs, line, "[sweep] loads", 1, 100)?
        }
        Some((line, v)) => {
            return Err(format!(
                "line {line}: [sweep] loads must be \"all\" or a list, got {}",
                v.type_name()
            ));
        }
    };
    let workers = doc.u64_of("sweep", "workers")?.map(|(_, n)| n as usize).unwrap_or(1);
    let trials = match doc.u64_of("sweep", "trials")? {
        None => 1,
        Some((line, 0)) => return Err(format!("line {line}: [sweep] trials must be >= 1")),
        Some((line, n)) => {
            if n > 1 && workload.modes().len() > 1 {
                return Err(format!(
                    "line {line}: [sweep] trials > 1 requires a single workload mode, \
                     got {}",
                    workload.modes().len()
                ));
            }
            n as usize
        }
    };

    doc.finish()?;
    Ok(ScenarioSpec { name, array, workload, loads, workers, trials })
}

// ---------------------------------------------------------------------------
// Runner + report
// ---------------------------------------------------------------------------

/// One measured sweep cell: a mode, a load level and its record's metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioCell {
    /// Workload mode of this cell.
    pub mode: WorkloadMode,
    /// Configured load proportion, percent.
    pub load_pct: u32,
    /// The committed record's efficiency metrics.
    pub metrics: EfficiencyMetrics,
    /// Load-control accuracy at this level.
    pub row: AccuracyRow,
}

/// Everything a scenario run produces: the deterministic report plus the
/// structured results the figure benches post-process.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The plain-text report (worker-count independent, byte-deterministic).
    pub report: String,
    /// Per-mode sweep results, in mode order.
    pub results: Vec<(WorkloadMode, LoadSweepResult)>,
    /// Flattened mode × load cells, in report order.
    pub cells: Vec<ScenarioCell>,
    /// Repeated-trial statistics when `trials > 1`.
    pub trials: Option<TrialSummary>,
    /// The results database backing the cells.
    pub db: Database,
}

/// The scenario-file keyword of a resolved power policy, for the report.
fn power_keyword(policy: PowerPolicy) -> String {
    match policy {
        PowerPolicy::AlwaysOn => "always-on".to_string(),
        PowerPolicy::FixedTimeout { idle } => format!("timeout-{}s", idle.as_secs_f64()),
        PowerPolicy::BreakEven => "break-even".to_string(),
    }
}

/// Execute a scenario: synthesize each mode's trace, sweep the load grid,
/// and render the deterministic report.
///
/// The sweep inherits the builder's guarantee that parallel execution is
/// bit-identical to serial, and the report excludes the worker count, so the
/// same file yields byte-identical reports at any `workers` value.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioOutcome, TracerError> {
    let fail = |e: String| TracerError::Config(format!("scenario {}: {e}", spec.name));
    spec.array.try_parts().map_err(fail)?;
    let modes = spec.workload.modes();
    if modes.is_empty() {
        return Err(fail("workload grid is empty".to_string()));
    }
    let mut host = EvaluationHost::new();
    let mut results = Vec::with_capacity(modes.len());
    for mode in &modes {
        let trace = spec.workload.trace(&spec.array, *mode, 0);
        let result = SweepBuilder::new()
            .workers(spec.workers)
            .loads(&spec.loads)
            .label(format!(
                "{}-rs{}-rn{}-rd{}",
                spec.name, mode.request_bytes, mode.random_pct, mode.read_pct
            ))
            .load_sweep(&mut host, || spec.array.build(), &trace, *mode);
        results.push((*mode, result));
    }
    let trials = if spec.trials > 1 {
        let mode = modes[0];
        Some(
            SweepBuilder::new()
                .workers(spec.workers)
                .label(format!("{}-trials", spec.name))
                .trials(
                    &mut host,
                    || spec.array.build(),
                    |seed| spec.workload.trace(&spec.array, mode, seed),
                    mode,
                    spec.trials,
                ),
        )
    } else {
        None
    };

    let cell_count: usize = results.iter().map(|(_, r)| r.rows.len()).sum();
    tracer_obs::counter("scenario.cells").add(cell_count as u64);

    let mut cells = Vec::with_capacity(cell_count);
    for (mode, result) in &results {
        for (row, &id) in result.rows.iter().zip(&result.record_ids) {
            let record = host
                .db
                .get(id)
                .ok_or_else(|| fail(format!("record {id} missing from results database")))?;
            cells.push(ScenarioCell {
                mode: *mode,
                load_pct: row.configured_pct,
                metrics: record.efficiency,
                row: *row,
            });
        }
    }
    let report = render_report(spec, &modes, &cells, trials.as_ref());
    Ok(ScenarioOutcome { report, results, cells, trials, db: host.db })
}

/// Render the plain-text report. Floats print with `{}` (shortest round
/// trip), the same convention as the fleet report, so byte comparison is
/// exact across runs and worker counts.
fn render_report(
    spec: &ScenarioSpec,
    modes: &[WorkloadMode],
    cells: &[ScenarioCell],
    trials: Option<&TrialSummary>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario name={} array={} device={} layout={} disks={} power={} modes={} cells={}",
        spec.name,
        spec.array.name,
        spec.array.device.keyword(),
        spec.array.layout.keyword(),
        spec.array.disks,
        power_keyword(spec.array.power),
        modes.len(),
        cells.len()
    );
    let mut current: Option<WorkloadMode> = None;
    for cell in cells {
        if current != Some(cell.mode) {
            let _ = writeln!(
                out,
                "mode rs={} rn={} rd={}",
                cell.mode.request_bytes, cell.mode.random_pct, cell.mode.read_pct
            );
            current = Some(cell.mode);
        }
        let m = &cell.metrics;
        let _ = writeln!(
            out,
            "cell load={} iops={} mbps={} avg_response_ms={} watts={} energy_j={} \
             iops_per_watt={} mbps_per_kilowatt={} accuracy_iops={} accuracy_mbps={}",
            cell.load_pct,
            m.iops,
            m.mbps,
            m.avg_response_ms,
            m.avg_watts,
            m.energy_joules,
            m.iops_per_watt,
            m.mbps_per_kilowatt,
            cell.row.accuracy_iops,
            cell.row.accuracy_mbps
        );
    }
    if let Some(t) = trials {
        let _ = writeln!(
            out,
            "trials n={} iops_mean={} iops_stddev={} mbps_mean={} mbps_stddev={} \
             watts_mean={} watts_stddev={}",
            t.trials,
            t.iops.mean,
            t.iops.stddev,
            t.mbps.mean,
            t.mbps.stddev,
            t.avg_watts.mean,
            t.avg_watts.stddev
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# The paper's Fig. 8 testbed, fully spelled out.
[scenario]
name = "fig08"          # trailing comment

[array]
device = "seagate-7200"
layout = "raid5"
disks = 6
strip_sectors = 256
chassis_watts = 16.0
link_mbps = 400
queue = "fifo"

[power]
policy = "always-on"

[workload]
kind = "peak"
rs = 4096
rn = 50
rd = 0
seconds = 30
seed = 8

[sweep]
loads = "all"
workers = 1
"#;

    #[test]
    fn parses_a_full_scenario() {
        let spec = ScenarioSpec::parse(FULL).unwrap();
        assert_eq!(spec.name, "fig08");
        assert_eq!(spec.array.layout, Layout::Raid5);
        assert_eq!(spec.array.disks, 6);
        assert_eq!(spec.array.device, DeviceSpec::HddSeagate7200);
        assert_eq!(spec.array.power, PowerPolicy::AlwaysOn);
        assert_eq!(spec.array.name, "fig08", "array name defaults to the scenario name");
        assert_eq!(spec.workload.kind, WorkloadKind::Peak);
        assert_eq!(spec.workload.modes(), vec![WorkloadMode::peak(4096, 50, 0)]);
        assert_eq!(spec.workload.seconds, 30);
        assert_eq!(spec.workload.seed, Some(8));
        assert_eq!(spec.loads, sweep::LOAD_PCTS.to_vec());
        assert_eq!(spec.workers, 1);
        assert_eq!(spec.trials, 1);
        assert_eq!(spec.cells(), 10);
    }

    #[test]
    fn minimal_scenario_gets_the_documented_defaults() {
        let spec = ScenarioSpec::parse(
            "[scenario]\nname = \"min\"\n[array]\ndevice = \"memoright-slc\"\n\
             layout = \"raid0\"\ndisks = 2\n[workload]\nrs = 8192\nrn = 0\nrd = 100\n",
        )
        .unwrap();
        assert_eq!(spec.workload.kind, WorkloadKind::Peak);
        assert_eq!(spec.workload.grid, Grid::Cross);
        assert_eq!(spec.workload.seconds, 120);
        assert_eq!(spec.workload.seed, None);
        assert_eq!(spec.loads, sweep::LOAD_PCTS.to_vec());
        assert_eq!(spec.workers, 1);
        assert_eq!(spec.array.power, PowerPolicy::AlwaysOn);
    }

    #[test]
    fn cross_and_zip_grids_expand_in_deterministic_order() {
        let spec = ScenarioSpec::parse(
            "[scenario]\nname = \"grid\"\n[array]\ndevice = \"seagate-7200\"\n\
             layout = \"raid5\"\ndisks = 4\n[workload]\nrs = [512, 4096]\n\
             rn = [0, 100]\nrd = 25\n",
        )
        .unwrap();
        let modes = spec.workload.modes();
        assert_eq!(
            modes,
            vec![
                WorkloadMode::peak(512, 0, 25),
                WorkloadMode::peak(512, 100, 25),
                WorkloadMode::peak(4096, 0, 25),
                WorkloadMode::peak(4096, 100, 25),
            ],
            "cross product is rs-major"
        );
        let spec = ScenarioSpec::parse(
            "[scenario]\nname = \"zip\"\n[array]\ndevice = \"seagate-7200\"\n\
             layout = \"raid5\"\ndisks = 4\n[workload]\nrs = [512, 4096, 65536]\n\
             rn = [0, 25, 50]\nrd = 25\ngrid = \"zip\"\n",
        )
        .unwrap();
        assert_eq!(
            spec.workload.modes(),
            vec![
                WorkloadMode::peak(512, 0, 25),
                WorkloadMode::peak(4096, 25, 25),
                WorkloadMode::peak(65536, 50, 25),
            ],
            "zip pairs element-wise with rd broadcast"
        );
    }

    #[test]
    fn power_policies_parse_and_validate() {
        let base = "[scenario]\nname = \"p\"\n[array]\ndevice = \"seagate-7200\"\n\
                    layout = \"raid5\"\ndisks = 4\n[workload]\nrs = 4096\nrn = 0\nrd = 0\n";
        let spec = ScenarioSpec::parse(&format!(
            "{base}[power]\npolicy = \"timeout\"\nidle_seconds = 2.5\n"
        ))
        .unwrap();
        assert_eq!(
            spec.array.power,
            PowerPolicy::FixedTimeout { idle: SimDuration::from_secs_f64(2.5) }
        );
        let spec =
            ScenarioSpec::parse(&format!("{base}[power]\npolicy = \"break-even\"\n")).unwrap();
        assert_eq!(spec.array.power, PowerPolicy::BreakEven);
        assert!(spec.array.resolved_spin_down().is_some());
    }

    #[test]
    fn tiered_tuning_flows_into_the_device_spec() {
        let spec = ScenarioSpec::parse(
            "[scenario]\nname = \"tier\"\n[array]\ndevice = \"tiered-hybrid\"\n\
             layout = \"raid0\"\ndisks = 2\n[device]\nregion_sectors = 1024\n\
             promote_after = 2\ncache_regions = 64\n[workload]\nrs = 4096\nrn = 50\nrd = 50\n",
        )
        .unwrap();
        match spec.array.device {
            DeviceSpec::TieredHybrid(cfg) => {
                assert_eq!(cfg.region_sectors, 1024);
                assert_eq!(cfg.promote_after, 2);
                assert_eq!(cfg.cache_regions, 64);
            }
            other => panic!("{other:?}"),
        }
    }

    /// Every malformed input maps to a `TracerError::Config` whose message
    /// contains the expected fragment — and none of them panic.
    #[test]
    fn rejects_malformed_scenarios_with_line_numbered_errors() {
        let base = "[scenario]\nname = \"bad\"\n[array]\ndevice = \"seagate-7200\"\n\
                    layout = \"raid5\"\ndisks = 4\n[workload]\nrs = 4096\nrn = 0\nrd = 0\n";
        let cases: &[(&str, &str)] = &[
            ("", "missing [scenario] name"),
            ("[zoo]\nanimal = \"capybara\"\n", "unknown section [zoo]"),
            ("[scenario]\nname = \"x\"\n[scenario]\n", "duplicate section [scenario]"),
            ("name = \"x\"\n", "before any [section]"),
            ("[scenario]\nname = \"x\"\nname = \"y\"\n", "duplicate key `name`"),
            ("[scenario]\nname = \"has space\"\n", "without whitespace"),
            ("[scenario]\nname = 5\n", "must be a string"),
            ("[scenario]\nname = \"x\"\n[array]\ndevice = \"floppy\"\n", "unknown device"),
            (
                "[scenario]\nname = \"x\"\n[array]\ndevice = \"seagate-7200\"\n\
                 layout = \"raid7\"\n",
                "unknown layout",
            ),
            (
                "[scenario]\nname = \"x\"\n[array]\ndevice = \"seagate-7200\"\n\
                 layout = \"raid5\"\ndisks = six\n",
                "cannot parse value",
            ),
            (
                "[scenario]\nname = \"x\"\n[array]\ndevice = \"seagate-7200\"\n\
                 layout = \"raid6\"\ndisks = 3\n[workload]\nrs = 4096\nrn = 0\nrd = 0\n",
                "raid6 needs at least 4 disks",
            ),
            (
                "[scenario]\nname = \"x\"\n[array]\ndevice = \"seagate-7200\"\n\
                 layout = \"raid10\"\ndisks = 5\n[workload]\nrs = 4096\nrn = 0\nrd = 0\n",
                "raid10 needs an even disk count",
            ),
            (
                "[scenario]\nname = \"x\"\n[array]\ndevice = \"seagate-7200\"\n\
                 layout = \"raid5\"\ndisks = 4\nwarp = 9\n[workload]\nrs = 4096\n\
                 rn = 0\nrd = 0\n",
                "unknown key `warp` in [array]",
            ),
            (&format!("{base}[power]\nidle_seconds = 5\n"), "needs policy = \"timeout\""),
            (&format!("{base}[power]\npolicy = \"timeout\"\n"), "needs idle_seconds"),
            (
                &format!("{base}[power]\npolicy = \"always-on\"\nidle_seconds = 5\n"),
                "only applies to the timeout policy",
            ),
            (&format!("{base}[power]\npolicy = \"naptime\"\n"), "unknown power policy"),
            (
                &format!("{base}[device]\ncache_regions = 8\n"),
                "requires device = \"tiered-hybrid\"",
            ),
            (&format!("{base}[sweep]\nloads = [0, 50]\n"), "must be 1-100"),
            (&format!("{base}[sweep]\nloads = [150]\n"), "must be 1-100"),
            (&format!("{base}[sweep]\nloads = []\n"), "must not be empty"),
            (&format!("{base}[sweep]\nloads = \"some\"\n"), "must be \"all\" or a list"),
            (&format!("{base}[sweep]\ntrials = 0\n"), "trials must be >= 1"),
            (
                "[scenario]\nname = \"x\"\n[array]\ndevice = \"seagate-7200\"\n\
                 layout = \"raid5\"\ndisks = 4\n[workload]\nrs = [512, 4096]\nrn = 0\n\
                 rd = 0\n[sweep]\ntrials = 3\n",
                "requires a single workload mode",
            ),
            (
                "[scenario]\nname = \"x\"\n[array]\ndevice = \"seagate-7200\"\n\
                 layout = \"raid5\"\ndisks = 4\n[workload]\nrs = [512, 4096, 65536]\n\
                 rn = [0, 25]\nrd = 0\ngrid = \"zip\"\n",
                "zip grid needs equal-length lists",
            ),
            (
                "[scenario]\nname = \"x\"\n[array]\ndevice = \"seagate-7200\"\n\
                 layout = \"raid5\"\ndisks = 4\n[workload]\nrs = 4096\nrn = 200\nrd = 0\n",
                "must be 0-100",
            ),
            (&format!("{base}[sweep]\nloads = [20\n"), "unterminated list"),
            ("[scenario]\nname = \"x\n", "unterminated string"),
            ("[scenario\nname = \"x\"\n", "malformed section header"),
            ("[scenario]\njust words\n", "expected `key = value`"),
            (&format!("{base}[workload]\n"), "duplicate section [workload]"),
            (&format!("{base}[sweep]\nmean_iops = 5\n"), "unknown key `mean_iops` in [sweep]"),
        ];
        for (text, fragment) in cases {
            match ScenarioSpec::parse(text) {
                Err(TracerError::Config(msg)) => {
                    assert!(msg.contains(fragment), "{fragment:?} not in {msg:?}");
                }
                other => panic!("expected Config error with {fragment:?}, got {other:?}"),
            }
        }
        // mean_iops in the right section but the wrong (peak) workload kind.
        let err = ScenarioSpec::parse(
            "[scenario]\nname = \"x\"\n[array]\ndevice = \"seagate-7200\"\n\
             layout = \"raid5\"\ndisks = 4\n[workload]\nrs = 4096\nrn = 0\nrd = 0\n\
             mean_iops = 250\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("applies to web/cello"), "{err}");
    }

    #[test]
    fn from_file_prefixes_errors_with_the_path() {
        let dir = std::env::temp_dir().join(format!("tracer_scn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.toml");
        std::fs::write(&path, "[scenario]\nname = 5\n").unwrap();
        let err = ScenarioSpec::from_file(&path).unwrap_err();
        assert!(err.to_string().contains("broken.toml"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = ScenarioSpec::from_file(dir.join("nope.toml")).unwrap_err();
        assert!(err.to_string().contains("nope.toml"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn runs_a_small_scenario_with_identical_reports_at_1_and_4_workers() {
        let text = "[scenario]\nname = \"smoke\"\n[array]\ndevice = \"seagate-7200\"\n\
                    layout = \"raid5\"\ndisks = 3\n[workload]\nrs = 8192\nrn = 50\nrd = 100\n\
                    seconds = 1\n[sweep]\nloads = [50]\nworkers = 1\n";
        let mut spec = ScenarioSpec::parse(text).unwrap();
        let serial = run_scenario(&spec).unwrap();
        // 50 % plus the implied 100 % baseline.
        assert_eq!(serial.cells.len(), 2);
        assert_eq!(serial.results.len(), 1);
        assert!(serial.trials.is_none());
        assert_eq!(serial.db.len(), 2);
        assert!(serial.report.starts_with("scenario name=smoke array=smoke "), "{}", serial.report);
        assert!(serial.report.contains("\nmode rs=8192 rn=50 rd=100\n"), "{}", serial.report);
        assert!(serial.report.contains("\ncell load=50 iops="), "{}", serial.report);
        assert!(serial.cells.iter().all(|c| c.metrics.iops > 0.0));
        spec.workers = 4;
        let parallel = run_scenario(&spec).unwrap();
        assert_eq!(serial.report, parallel.report, "worker count must not leak into the report");
    }

    #[test]
    fn trials_append_a_summary_line() {
        let text = "[scenario]\nname = \"tr\"\n[array]\ndevice = \"memoright-slc\"\n\
                    layout = \"raid0\"\ndisks = 2\n[workload]\nrs = 4096\nrn = 100\nrd = 100\n\
                    seconds = 1\n[sweep]\nloads = [100]\ntrials = 3\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        let outcome = run_scenario(&spec).unwrap();
        let summary = outcome.trials.expect("trials requested");
        assert_eq!(summary.trials, 3);
        assert!(outcome.report.contains("\ntrials n=3 iops_mean="), "{}", outcome.report);
    }
}
