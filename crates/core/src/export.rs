//! CSV export of measurement series.
//!
//! The bench harness prints paper-style tables and JSON result lines; for
//! plotting with external tools (gnuplot, pandas, spreadsheets) the same
//! series export as plain CSV. Fields that may contain commas (labels) are
//! quoted; numbers use full precision so plots reproduce exactly.

use crate::db::Database;
use crate::metrics::AccuracyRow;
use std::fmt::Write as _;
use tracer_power::PowerSample;
use tracer_replay::PerfSample;

fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Per-cycle performance samples as CSV (`t_s,ios,iops,mbps,avg_ms`).
pub fn perf_samples_csv(samples: &[PerfSample]) -> String {
    let mut out = String::from("t_s,ios,iops,mbps,avg_response_ms\n");
    for s in samples {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            s.at.as_secs_f64(),
            s.ios,
            s.iops,
            s.mbps,
            s.avg_response_ms
        );
    }
    out
}

/// Power-meter records as CSV (`t_s,volts,amps,watts`).
pub fn power_samples_csv(samples: &[PowerSample]) -> String {
    let mut out = String::from("t_s,volts,amps,watts\n");
    for s in samples {
        let _ = writeln!(out, "{},{},{},{}", s.at.as_secs_f64(), s.volts, s.amps, s.watts);
    }
    out
}

/// Load-control accuracy rows as CSV (Tables IV/V shape).
pub fn accuracy_rows_csv(rows: &[AccuracyRow]) -> String {
    let mut out = String::from(
        "configured_pct,iops,mbps,measured_iops_pct,measured_mbps_pct,accuracy_iops,accuracy_mbps\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            r.configured_pct,
            r.iops,
            r.mbps,
            r.measured_iops_pct,
            r.measured_mbps_pct,
            r.accuracy_iops,
            r.accuracy_mbps
        );
    }
    out
}

/// The whole results database as CSV, one row per test record.
pub fn database_csv(db: &Database) -> String {
    let mut out = String::from(
        "id,label,device,request_bytes,random_pct,read_pct,load_pct,\
         iops,mbps,avg_response_ms,p95_response_ms,avg_watts,energy_joules,\
         iops_per_watt,mbps_per_kilowatt\n",
    );
    for r in db.records() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.id,
            quote(&r.label),
            quote(&r.device),
            r.mode.request_bytes,
            r.mode.random_pct,
            r.mode.read_pct,
            r.mode.load_pct,
            r.efficiency.iops,
            r.efficiency.mbps,
            r.perf.avg_response_ms,
            r.perf.p95_response_ms,
            r.efficiency.avg_watts,
            r.efficiency.energy_joules,
            r.efficiency.iops_per_watt,
            r.efficiency.mbps_per_kilowatt
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{PowerData, TestRecord};
    use tracer_sim::{SimDuration, SimTime};
    use tracer_trace::WorkloadMode;

    #[test]
    fn perf_csv_round_numbers() {
        let samples = vec![PerfSample {
            at: SimTime::from_millis(1500),
            cycle: SimDuration::from_secs(1),
            ios: 7,
            bytes: 7 * 4096,
            iops: 7.0,
            mbps: 0.028672,
            avg_response_ms: 3.25,
        }];
        let csv = perf_samples_csv(&samples);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "t_s,ios,iops,mbps,avg_response_ms");
        assert_eq!(lines.next().unwrap(), "1.5,7,7,0.028672,3.25");
        assert!(lines.next().is_none());
    }

    #[test]
    fn power_csv_shape() {
        let log = tracer_sim::ArrayPowerLog::new(20.0, &[5.0]);
        let samples =
            tracer_power::PowerMeter::default().sample(&log, SimTime::ZERO, SimTime::from_secs(3));
        let csv = power_samples_csv(&samples);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.lines().nth(1).unwrap().ends_with(",25"));
    }

    #[test]
    fn accuracy_csv_shape() {
        let rows = vec![AccuracyRow::new(20, 200.0, 2.0, 1000.0, 10.0)];
        let csv = accuracy_rows_csv(&rows);
        assert!(csv.contains("configured_pct"));
        assert!(csv.contains("20,200,2,"));
    }

    #[test]
    fn database_csv_quotes_labels() {
        let mut db = Database::new();
        db.insert(TestRecord {
            id: 0,
            label: "hello, \"world\"".into(),
            device: "raid5".into(),
            mode: WorkloadMode::peak(4096, 50, 0).at_load(30),
            power: PowerData::default(),
            perf: Default::default(),
            efficiency: Default::default(),
        });
        let csv = database_csv(&db);
        assert!(csv.contains("\"hello, \"\"world\"\"\""), "{csv}");
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains(",4096,50,0,30,"));
    }
}
