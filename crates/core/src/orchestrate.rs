//! Experiment orchestration: load sweeps and accuracy tables.
//!
//! The paper's evaluation replays every trace "ten times with load proportions
//! varied from 10 % to 100 %" and derives accuracy tables (Tables IV/V) and
//! efficiency curves (Figs. 8–11) from the records. This module packages those
//! loops: a load sweep over one trace, a full mode × load sweep, and the
//! accuracy-table computation against the 100 % baseline.
//!
//! Every sweep cell (one mode at one load level) builds a fresh [`ArraySim`],
//! so cells are independent and the loops parallelise: cells fan out over a
//! [`SweepExecutor`]'s worker threads, then results merge — and database
//! record ids are assigned — in deterministic cell order, so a parallel sweep
//! is bit-identical to the serial one.
//!
//! [`SweepBuilder`] is the single entry point for every sweep shape: it
//! composes loads × modes × trials × workers × progress × observability sink
//! behind one builder, and its outputs are bit-identical to the legacy
//! `load_sweep_with` / `run_sweep_with` / `repeated_trials_with` /
//! `run_parallel_with` functions, which remain as thin deprecated shims.

use crate::distributed::EvaluationJob;
use crate::executor::SweepExecutor;
use crate::host::{EvaluationHost, MeasuredTest};
use crate::metrics::AccuracyRow;
use serde::{Deserialize, Serialize};
use tracer_sim::ArraySim;
use tracer_trace::{sweep, BunchSource, TraceHandle, WorkloadMode};

/// Result of a load sweep over one trace: a record per load level plus the
/// derived accuracy rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSweepResult {
    /// The swept load levels, percent.
    pub loads: Vec<u32>,
    /// Database record id per level.
    pub record_ids: Vec<u64>,
    /// Accuracy rows (Eq. 1/2 against the 100 % run).
    pub rows: Vec<AccuracyRow>,
}

impl LoadSweepResult {
    /// Largest control error across all levels.
    pub fn max_error(&self) -> f64 {
        self.rows.iter().map(AccuracyRow::max_error).fold(0.0, f64::max)
    }
}

/// The swept levels: `loads` plus the 100 % baseline, ascending, deduplicated.
fn resolve_levels(loads: &[u32]) -> Vec<u32> {
    let mut levels: Vec<u32> = loads.to_vec();
    if !levels.contains(&100) {
        levels.push(100);
    }
    levels.sort_unstable();
    levels.dedup();
    levels
}

/// Commit one mode's measured cells in level order and derive the accuracy
/// rows — the merge step shared by the serial and parallel paths.
fn merge_mode(
    host: &mut EvaluationHost,
    levels: Vec<u32>,
    cells: Vec<MeasuredTest>,
) -> LoadSweepResult {
    debug_assert_eq!(levels.len(), cells.len());
    let mut record_ids = Vec::with_capacity(levels.len());
    let mut measured: Vec<(u32, f64, f64)> = Vec::with_capacity(levels.len());
    for (&pct, cell) in levels.iter().zip(cells) {
        let outcome = host.commit(cell);
        record_ids.push(outcome.record_id);
        measured.push((pct, outcome.metrics.iops, outcome.metrics.mbps));
    }
    let (_, full_iops, full_mbps) =
        *measured.last().expect("levels always contain the 100% baseline");
    let rows = measured
        .iter()
        .map(|&(pct, iops, mbps)| AccuracyRow::new(pct, iops, mbps, full_iops, full_mbps))
        .collect();
    LoadSweepResult { loads: levels, record_ids, rows }
}

/// The load-sweep implementation shared by [`SweepBuilder::load_sweep`] and
/// the serial path of [`SweepBuilder::sweep`].
#[allow(clippy::too_many_arguments)]
fn load_sweep_impl<F, S>(
    host: &mut EvaluationHost,
    exec: &SweepExecutor,
    build_array: F,
    trace: &S,
    mode: WorkloadMode,
    loads: &[u32],
    label: &str,
    progress: &mut dyn FnMut(usize, usize),
) -> LoadSweepResult
where
    F: Fn() -> ArraySim + Sync,
    S: BunchSource + Sync + ?Sized,
{
    let levels = resolve_levels(loads);
    let total = levels.len();
    let cycle = host.meter_cycle_ms;
    let mut done = 0usize;
    let cells = exec.run_indexed(
        levels.len(),
        |i| {
            let pct = levels[i];
            let mut sim = build_array();
            EvaluationHost::measure_test(
                cycle,
                &mut sim,
                trace,
                mode.at_load(pct),
                100,
                &format!("{label}-load{pct}"),
            )
        },
        |_| {
            done += 1;
            progress(done, total);
        },
    );
    merge_mode(host, levels, cells)
}

/// Replay `trace` on fresh arrays at each load level and build the accuracy
/// table. `loads` need not include 100 — the baseline run is added
/// automatically (and reported as the final row, like the paper's tables).
///
/// The serial convenience form of [`SweepBuilder::load_sweep`].
pub fn load_sweep<F, S>(
    host: &mut EvaluationHost,
    build_array: F,
    trace: &S,
    mode: WorkloadMode,
    loads: &[u32],
    label: &str,
) -> LoadSweepResult
where
    F: Fn() -> ArraySim + Sync,
    S: BunchSource + Sync + ?Sized,
{
    SweepBuilder::new().loads(loads).label(label).load_sweep(host, build_array, trace, mode)
}

/// [`load_sweep`] with the load levels fanned out over `exec`'s workers.
/// Record ids are assigned at merge time, in ascending level order, so the
/// database contents are bit-identical to the serial run.
#[deprecated(
    since = "0.1.0",
    note = "use `SweepBuilder::new().executor(*exec).loads(loads).label(label).load_sweep(..)`"
)]
pub fn load_sweep_with<F, S>(
    host: &mut EvaluationHost,
    exec: &SweepExecutor,
    build_array: F,
    trace: &S,
    mode: WorkloadMode,
    loads: &[u32],
    label: &str,
) -> LoadSweepResult
where
    F: Fn() -> ArraySim + Sync,
    S: BunchSource + Sync + ?Sized,
{
    SweepBuilder::new().executor(*exec).loads(loads).label(label).load_sweep(
        host,
        build_array,
        trace,
        mode,
    )
}

/// Configuration of a synthetic mode × load sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Workload modes to run (defaults to the paper's 125).
    pub modes: Vec<WorkloadMode>,
    /// Load levels per mode (defaults to the paper's ten).
    pub loads: Vec<u32>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { modes: sweep::all_modes(), loads: sweep::LOAD_PCTS.to_vec() }
    }
}

impl SweepConfig {
    /// Total number of test runs the sweep performs.
    pub fn run_count(&self) -> usize {
        self.modes.len() * self.loads.len()
    }
}

/// The single entry point for every sweep shape: loads × modes × trials ×
/// workers × progress × observability sink, composed as a builder.
///
/// One builder replaces the four legacy `*_with` entry points:
///
/// | legacy | builder |
/// |---|---|
/// | `load_sweep_with(h, e, b, t, m, loads, label)` | `.executor(*e).loads(loads).label(label).load_sweep(h, b, t, m)` |
/// | `run_sweep_with(h, e, b, tm, cfg, p)` | `.executor(*e).on_progress(p).sweep(h, b, tm, cfg)` |
/// | `repeated_trials_with(h, e, b, ts, m, n, label)` | `.executor(*e).label(label).trials(h, b, ts, m, n)` |
/// | `run_parallel_with(h, e, jobs)` | `.executor(*e).jobs(h, jobs)` |
///
/// Outputs are bit-identical to the legacy functions (asserted in
/// `tests/sweep_builder.rs`): the builder only routes, it never reorders the
/// deterministic merge.
///
/// With [`SweepBuilder::obs`] set, `tracer-obs` instrumentation is enabled
/// for the duration of the run and a JSON-lines snapshot (counters, span
/// histograms, events) is appended to the sink when the terminal method
/// returns. Instrumentation never alters results — an obs-enabled sweep
/// reports bit-identically to a disabled one.
///
/// ```
/// use tracer_core::orchestrate::SweepBuilder;
/// use tracer_core::EvaluationHost;
/// use tracer_sim::ArraySpec;
/// use tracer_trace::{Bunch, IoPackage, Trace, WorkloadMode};
///
/// let trace = Trace::from_bunches(
///     "t",
///     (0..40).map(|i| Bunch::at_micros(i * 10_000, vec![IoPackage::read(i * 64, 4096)])).collect(),
/// );
/// let mut host = EvaluationHost::new();
/// let result = SweepBuilder::new()
///     .workers(2)
///     .loads(&[50])
///     .label("doc")
///     .load_sweep(&mut host, || ArraySpec::hdd_raid5(4).build(), &trace, WorkloadMode::peak(4096, 0, 100));
/// assert_eq!(result.loads, vec![50, 100]);
/// ```
pub struct SweepBuilder<'a> {
    exec: SweepExecutor,
    loads: Vec<u32>,
    label: String,
    progress: Option<Box<dyn FnMut(usize, usize) + 'a>>,
    obs_sink: Option<tracer_obs::Sink>,
}

impl Default for SweepBuilder<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> SweepBuilder<'a> {
    /// A serial builder with the paper's load levels and no progress or obs
    /// sink configured.
    pub fn new() -> Self {
        Self {
            exec: SweepExecutor::serial(),
            loads: sweep::LOAD_PCTS.to_vec(),
            label: "sweep".to_string(),
            progress: None,
            obs_sink: None,
        }
    }

    /// Fan cells out over `exec` (default: serial).
    pub fn executor(mut self, exec: SweepExecutor) -> Self {
        self.exec = exec;
        self
    }

    /// Shorthand for [`SweepBuilder::executor`] with a worker count
    /// (`0` = one per core, the CLI convention).
    pub fn workers(mut self, workers: usize) -> Self {
        self.exec = SweepExecutor::new(workers);
        self
    }

    /// Load levels for [`SweepBuilder::load_sweep`] (the 100 % baseline is
    /// always added). [`SweepBuilder::sweep`] takes its levels from the
    /// [`SweepConfig`] instead, like the legacy API.
    pub fn loads(mut self, loads: &[u32]) -> Self {
        self.loads = loads.to_vec();
        self
    }

    /// Record-label prefix for [`SweepBuilder::load_sweep`] and
    /// [`SweepBuilder::trials`] (default `"sweep"`).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Progress callback, fired on the caller's thread as `(done, total)` —
    /// per mode for [`SweepBuilder::sweep`], per cell for
    /// [`SweepBuilder::load_sweep`] and [`SweepBuilder::trials`], per job for
    /// [`SweepBuilder::jobs`].
    pub fn on_progress(mut self, progress: impl FnMut(usize, usize) + 'a) -> Self {
        self.progress = Some(Box::new(progress));
        self
    }

    /// Enable `tracer-obs` for the run and append a JSON-lines
    /// instrumentation snapshot to `sink` when the terminal method returns.
    pub fn obs(mut self, sink: tracer_obs::Sink) -> Self {
        self.obs_sink = Some(sink);
        self
    }

    /// Turn instrumentation on for the run if a sink is configured; returns
    /// whether it was already on (so we restore, not clobber, global state).
    fn obs_begin(&self, kind: &str, cells: usize) -> bool {
        let was = tracer_obs::enabled();
        if self.obs_sink.is_some() {
            if !was {
                tracer_obs::enable();
            }
            tracer_obs::event(
                "sweep.start",
                &[
                    ("shape", kind.into()),
                    ("cells", cells.into()),
                    ("workers", self.exec.workers().into()),
                ],
            );
        }
        was
    }

    /// Flush the snapshot to the sink and restore the enable flag.
    fn obs_end(&self, was_enabled: bool, kind: &str, cells: usize) {
        let Some(sink) = &self.obs_sink else { return };
        tracer_obs::counter("sweep.cells").add(cells as u64);
        tracer_obs::event("sweep.done", &[("shape", kind.into()), ("cells", cells.into())]);
        if let Err(e) = tracer_obs::dump_to(sink) {
            eprintln!("obs: failed to write snapshot: {e}");
        }
        if !was_enabled {
            tracer_obs::disable();
        }
    }

    fn take_progress(&mut self) -> Box<dyn FnMut(usize, usize) + 'a> {
        self.progress.take().unwrap_or_else(|| Box::new(|_, _| {}))
    }

    /// Terminal: sweep the configured load levels over one trace — any
    /// [`BunchSource`], so an mmap-backed view sweeps without ever decoding
    /// into the heap (see [`load_sweep`]).
    pub fn load_sweep<F, S>(
        mut self,
        host: &mut EvaluationHost,
        build_array: F,
        trace: &S,
        mode: WorkloadMode,
    ) -> LoadSweepResult
    where
        F: Fn() -> ArraySim + Sync,
        S: BunchSource + Sync + ?Sized,
    {
        let cells = resolve_levels(&self.loads).len();
        let was = self.obs_begin("load_sweep", cells);
        let mut progress = self.take_progress();
        let result = load_sweep_impl(
            host,
            &self.exec,
            build_array,
            trace,
            mode,
            &self.loads,
            &self.label,
            &mut progress,
        );
        self.obs_end(was, "load_sweep", cells);
        result
    }

    /// Terminal: run the full mode × load grid of `cfg` (see [`run_sweep`]).
    pub fn sweep<F, T, A>(
        mut self,
        host: &mut EvaluationHost,
        build_array: F,
        trace_for_mode: T,
        cfg: &SweepConfig,
    ) -> Vec<LoadSweepResult>
    where
        F: Fn() -> ArraySim + Sync,
        T: FnMut(&WorkloadMode) -> A,
        A: Into<TraceHandle>,
    {
        let cells = cfg.modes.len() * resolve_levels(&cfg.loads).len();
        let was = self.obs_begin("sweep", cells);
        let mut progress = self.take_progress();
        let result = sweep_impl(host, &self.exec, build_array, trace_for_mode, cfg, &mut progress);
        self.obs_end(was, "sweep", cells);
        result
    }

    /// Terminal: repeat one mode over freshly seeded traces
    /// (see [`repeated_trials`]).
    pub fn trials<F, T, A>(
        mut self,
        host: &mut EvaluationHost,
        build_array: F,
        trace_for_seed: T,
        mode: WorkloadMode,
        trials: usize,
    ) -> TrialSummary
    where
        F: Fn() -> ArraySim + Sync,
        T: FnMut(u64) -> A,
        A: Into<TraceHandle>,
    {
        let was = self.obs_begin("trials", trials);
        let mut progress = self.take_progress();
        let result = trials_impl(
            host,
            &self.exec,
            build_array,
            trace_for_seed,
            mode,
            trials,
            &self.label,
            &mut progress,
        );
        self.obs_end(was, "trials", trials);
        result
    }

    /// Terminal: run heterogeneous [`EvaluationJob`]s in parallel and merge
    /// them on one multi-channel analyzer (see
    /// [`run_parallel`](crate::distributed::run_parallel)). Returns record
    /// ids in job order.
    pub fn jobs(mut self, host: &mut EvaluationHost, jobs: Vec<EvaluationJob>) -> Vec<u64> {
        let n = jobs.len();
        let was = self.obs_begin("jobs", n);
        let mut progress = self.take_progress();
        let ids = crate::distributed::run_parallel_impl(host, &self.exec, jobs, &mut progress);
        self.obs_end(was, "jobs", n);
        ids
    }
}

/// The mode × load grid implementation behind [`SweepBuilder::sweep`].
fn sweep_impl<F, T, A>(
    host: &mut EvaluationHost,
    exec: &SweepExecutor,
    build_array: F,
    mut trace_for_mode: T,
    cfg: &SweepConfig,
    progress: &mut dyn FnMut(usize, usize),
) -> Vec<LoadSweepResult>
where
    F: Fn() -> ArraySim + Sync,
    T: FnMut(&WorkloadMode) -> A,
    A: Into<TraceHandle>,
{
    let total = cfg.modes.len();
    let levels = resolve_levels(&cfg.loads);
    let per_mode = levels.len();
    let label_for = |mode: &WorkloadMode| {
        format!("sweep-rs{}-rn{}-rd{}", mode.request_bytes, mode.random_pct, mode.read_pct)
    };

    if exec.is_serial() {
        // Serial path: resolve each trace just before its mode runs, so at
        // most one trace is held in memory at a time.
        let mut results = Vec::with_capacity(total);
        for (i, &mode) in cfg.modes.iter().enumerate() {
            let trace: TraceHandle = trace_for_mode(&mode).into();
            let label = label_for(&mode);
            results.push(load_sweep_impl(
                host,
                exec,
                &build_array,
                &trace,
                mode,
                &cfg.loads,
                &label,
                &mut |_, _| {},
            ));
            progress(i + 1, total);
        }
        return results;
    }

    // Parallel path: resolve every trace up front (serially, in mode order),
    // then fan the whole mode × load grid out so the worker pool stays
    // saturated even when a mode has fewer levels than there are workers.
    // Traces are held as shared handles (decoded `Arc<Trace>`s or mmap
    // views), so a loader that hands out repository-cached traces keeps a
    // single copy in memory for the whole grid instead of one clone per mode.
    let traces: Vec<TraceHandle> = cfg.modes.iter().map(|m| trace_for_mode(m).into()).collect();
    let labels: Vec<String> = cfg.modes.iter().map(label_for).collect();
    let cycle = host.meter_cycle_ms;
    let mut remaining: Vec<usize> = vec![per_mode; total];
    let mut modes_done = 0usize;
    let cells = exec.run_indexed(
        total * per_mode,
        |i| {
            let (m, l) = (i / per_mode, i % per_mode);
            let (mode, pct) = (cfg.modes[m], levels[l]);
            let mut sim = build_array();
            EvaluationHost::measure_test(
                cycle,
                &mut sim,
                &traces[m],
                mode.at_load(pct),
                100,
                &format!("{}-load{pct}", labels[m]),
            )
        },
        |i| {
            let m = i / per_mode;
            remaining[m] -= 1;
            if remaining[m] == 0 {
                modes_done += 1;
                progress(modes_done, total);
            }
        },
    );

    // Deterministic merge: mode-major, level-ascending — the serial order.
    let mut results = Vec::with_capacity(total);
    let mut cells = cells.into_iter();
    for _ in 0..total {
        let chunk: Vec<_> = cells.by_ref().take(per_mode).collect();
        results.push(merge_mode(host, levels.clone(), chunk));
    }
    results
}

/// Run a full synthetic sweep: for each mode, resolve its trace, then run
/// every load level on a fresh array. `progress` is invoked after each mode
/// with (modes done, total modes).
///
/// The serial convenience form of [`SweepBuilder::sweep`].
pub fn run_sweep<F, T, A>(
    host: &mut EvaluationHost,
    build_array: F,
    trace_for_mode: T,
    cfg: &SweepConfig,
    progress: impl FnMut(usize, usize),
) -> Vec<LoadSweepResult>
where
    F: Fn() -> ArraySim + Sync,
    T: FnMut(&WorkloadMode) -> A,
    A: Into<TraceHandle>,
{
    SweepBuilder::new().on_progress(progress).sweep(host, build_array, trace_for_mode, cfg)
}

/// [`run_sweep`] with every (mode × load) cell of the grid fanned out over
/// `exec`'s workers.
///
/// Trace resolution stays on the caller's thread (mode order), and results
/// are merged — record ids assigned — in mode-major, level-ascending order,
/// exactly the serial path's order, so the database and every
/// [`LoadSweepResult`] are bit-identical to a serial run. `progress` fires on
/// the caller's thread each time a mode's last cell completes; under
/// parallelism modes finish out of order, so it reports the *count* of
/// completed modes, not which one.
#[deprecated(
    since = "0.1.0",
    note = "use `SweepBuilder::new().executor(*exec).on_progress(progress).sweep(..)`"
)]
pub fn run_sweep_with<F, T, A>(
    host: &mut EvaluationHost,
    exec: &SweepExecutor,
    build_array: F,
    trace_for_mode: T,
    cfg: &SweepConfig,
    progress: impl FnMut(usize, usize),
) -> Vec<LoadSweepResult>
where
    F: Fn() -> ArraySim + Sync,
    T: FnMut(&WorkloadMode) -> A,
    A: Into<TraceHandle>,
{
    SweepBuilder::new().executor(*exec).on_progress(progress).sweep(
        host,
        build_array,
        trace_for_mode,
        cfg,
    )
}

/// Mean ± standard deviation of a repeated measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialStat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single trial).
    pub stddev: f64,
}

impl TrialStat {
    fn from_samples(xs: &[f64]) -> Self {
        let n = xs.len().max(1) as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let stddev = if xs.len() > 1 {
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        Self { mean, stddev }
    }

    /// Relative spread (stddev over mean); 0 when the mean is 0.
    pub fn rel(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Aggregated outcome of repeated trials of one workload mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialSummary {
    /// Number of trials run.
    pub trials: usize,
    /// IOPS across trials.
    pub iops: TrialStat,
    /// MBPS across trials.
    pub mbps: TrialStat,
    /// Mean watts across trials.
    pub avg_watts: TrialStat,
    /// IOPS/Watt across trials.
    pub iops_per_watt: TrialStat,
}

/// The repeated-trials implementation behind [`SweepBuilder::trials`].
#[allow(clippy::too_many_arguments)]
fn trials_impl<F, T, A>(
    host: &mut EvaluationHost,
    exec: &SweepExecutor,
    build_array: F,
    mut trace_for_seed: T,
    mode: WorkloadMode,
    trials: usize,
    label: &str,
    progress: &mut dyn FnMut(usize, usize),
) -> TrialSummary
where
    F: Fn() -> ArraySim + Sync,
    T: FnMut(u64) -> A,
    A: Into<TraceHandle>,
{
    assert!(trials >= 1, "at least one trial required");
    let traces: Vec<TraceHandle> = (0..trials).map(|t| trace_for_seed(t as u64).into()).collect();
    let cycle = host.meter_cycle_ms;
    let mut done = 0usize;
    let cells = exec.run_indexed(
        trials,
        |trial| {
            let mut sim = build_array();
            EvaluationHost::measure_test(
                cycle,
                &mut sim,
                &traces[trial],
                mode,
                100,
                &format!("{label}-trial{trial}"),
            )
        },
        |_| {
            done += 1;
            progress(done, trials);
        },
    );
    let mut iops = Vec::with_capacity(trials);
    let mut mbps = Vec::with_capacity(trials);
    let mut watts = Vec::with_capacity(trials);
    let mut ipw = Vec::with_capacity(trials);
    for cell in cells {
        let m = host.commit(cell).metrics;
        iops.push(m.iops);
        mbps.push(m.mbps);
        watts.push(m.avg_watts);
        ipw.push(m.iops_per_watt);
    }
    TrialSummary {
        trials,
        iops: TrialStat::from_samples(&iops),
        mbps: TrialStat::from_samples(&mbps),
        avg_watts: TrialStat::from_samples(&watts),
        iops_per_watt: TrialStat::from_samples(&ipw),
    }
}

/// Run `mode` `trials` times, each with a freshly generated trace (seeded
/// `base_seed + trial`) on a fresh array, and aggregate the metrics. The
/// per-trial seeds vary the workload realisation, so the spread measures how
/// sensitive the result is to trace sampling — the simulator itself is
/// deterministic.
///
/// The serial convenience form of [`SweepBuilder::trials`].
pub fn repeated_trials<F, T, A>(
    host: &mut EvaluationHost,
    build_array: F,
    trace_for_seed: T,
    mode: WorkloadMode,
    trials: usize,
    label: &str,
) -> TrialSummary
where
    F: Fn() -> ArraySim + Sync,
    T: FnMut(u64) -> A,
    A: Into<TraceHandle>,
{
    SweepBuilder::new().label(label).trials(host, build_array, trace_for_seed, mode, trials)
}

/// [`repeated_trials`] with the trials fanned out over `exec`'s workers.
/// Trace generation stays serial (seed order) and records are committed in
/// trial order, so the result is bit-identical to the serial run.
#[deprecated(
    since = "0.1.0",
    note = "use `SweepBuilder::new().executor(*exec).label(label).trials(..)`"
)]
pub fn repeated_trials_with<F, T, A>(
    host: &mut EvaluationHost,
    exec: &SweepExecutor,
    build_array: F,
    trace_for_seed: T,
    mode: WorkloadMode,
    trials: usize,
    label: &str,
) -> TrialSummary
where
    F: Fn() -> ArraySim + Sync,
    T: FnMut(u64) -> A,
    A: Into<TraceHandle>,
{
    SweepBuilder::new().executor(*exec).label(label).trials(
        host,
        build_array,
        trace_for_seed,
        mode,
        trials,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer_sim::ArraySpec;
    use tracer_trace::{Bunch, IoPackage, Trace};

    fn fixed_trace(n: usize, bytes: u32) -> Trace {
        Trace::from_bunches(
            "t",
            (0..n)
                .map(|i| {
                    Bunch::new(
                        i as u64 * 5_000_000,
                        vec![IoPackage::read((i as u64 * 131) % 50_000, bytes)],
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn load_sweep_produces_accurate_rows_for_fixed_sizes() {
        let mut host = EvaluationHost::new();
        let trace = fixed_trace(200, 4096);
        let mode = WorkloadMode::peak(4096, 50, 100);
        let result = load_sweep(
            &mut host,
            || ArraySpec::hdd_raid5(4).build(),
            &trace,
            mode,
            &[20, 50, 80],
            "unit",
        );
        assert_eq!(result.loads, vec![20, 50, 80, 100]);
        assert_eq!(result.record_ids.len(), 4);
        assert_eq!(host.db.len(), 4);
        // Fixed-size requests: the paper reports errors below 0.5 %; the
        // simulated replay window adds a little tail noise, keep it under 5 %.
        assert!(result.max_error() < 0.05, "max error {}", result.max_error());
        // The 100 % row is exact by construction.
        let last = result.rows.last().unwrap();
        assert!((last.accuracy_iops - 1.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_is_added_when_missing() {
        let mut host = EvaluationHost::new();
        let result = load_sweep(
            &mut host,
            || ArraySpec::hdd_raid5(4).build(),
            &fixed_trace(50, 4096),
            WorkloadMode::peak(4096, 0, 100),
            &[50],
            "unit",
        );
        assert_eq!(result.loads, vec![50, 100]);
    }

    #[test]
    #[allow(deprecated)] // the shim's equivalence to serial stays asserted
    fn parallel_load_sweep_is_bit_identical_to_serial() {
        let trace = fixed_trace(120, 8192);
        let mode = WorkloadMode::peak(8192, 50, 50);
        let mut serial_host = EvaluationHost::new();
        let serial = load_sweep(
            &mut serial_host,
            || ArraySpec::hdd_raid5(4).build(),
            &trace,
            mode,
            &sweep::LOAD_PCTS,
            "det",
        );
        let mut par_host = EvaluationHost::new();
        let parallel = load_sweep_with(
            &mut par_host,
            &SweepExecutor::new(4),
            || ArraySpec::hdd_raid5(4).build(),
            &trace,
            mode,
            &sweep::LOAD_PCTS,
            "det",
        );
        assert_eq!(serial, parallel);
        assert_eq!(serial_host.db.records(), par_host.db.records());
    }

    #[test]
    fn mini_sweep_runs_every_mode_and_load() {
        let mut host = EvaluationHost::new();
        let cfg = SweepConfig {
            modes: vec![WorkloadMode::peak(4096, 0, 100), WorkloadMode::peak(65536, 100, 0)],
            loads: vec![50, 100],
        };
        assert_eq!(cfg.run_count(), 4);
        let mut calls = Vec::new();
        let results = run_sweep(
            &mut host,
            || ArraySpec::hdd_raid5(3).build(),
            |_| fixed_trace(30, 4096),
            &cfg,
            |done, total| calls.push((done, total)),
        );
        assert_eq!(results.len(), 2);
        assert_eq!(calls, vec![(1, 2), (2, 2)]);
        assert_eq!(host.db.len(), 4);
    }

    #[test]
    #[allow(deprecated)] // the shim's progress contract stays asserted
    fn parallel_mini_sweep_reports_progress_per_mode() {
        let mut host = EvaluationHost::new();
        let cfg = SweepConfig {
            modes: vec![
                WorkloadMode::peak(4096, 0, 100),
                WorkloadMode::peak(65536, 100, 0),
                WorkloadMode::peak(8192, 50, 50),
            ],
            loads: vec![50, 100],
        };
        let mut calls = Vec::new();
        let results = run_sweep_with(
            &mut host,
            &SweepExecutor::new(4),
            || ArraySpec::hdd_raid5(3).build(),
            |_| fixed_trace(30, 4096),
            &cfg,
            |done, total| calls.push((done, total)),
        );
        assert_eq!(results.len(), 3);
        // Completion order varies, but each mode reports exactly once and the
        // done-count climbs 1..=3.
        assert_eq!(calls, vec![(1, 3), (2, 3), (3, 3)]);
        assert_eq!(host.db.len(), 6);
    }

    #[test]
    fn repeated_trials_aggregate_and_bound_variance() {
        use tracer_workload::iometer::{run_peak_workload, IometerConfig};
        let mut host = EvaluationHost::new();
        let mode = WorkloadMode::peak(8192, 50, 50);
        let summary = repeated_trials(
            &mut host,
            || ArraySpec::hdd_raid5(4).build(),
            |seed| {
                let mut sim = ArraySpec::hdd_raid5(4).build();
                run_peak_workload(
                    &mut sim,
                    &IometerConfig {
                        duration: tracer_sim::SimDuration::from_secs(2),
                        ..IometerConfig::two_minutes(mode, seed)
                    },
                )
                .trace
            },
            mode,
            4,
            "trials",
        );
        assert_eq!(summary.trials, 4);
        assert_eq!(host.db.len(), 4);
        assert!(summary.iops.mean > 0.0);
        assert!(summary.iops.stddev > 0.0, "different seeds must vary");
        // Peak workloads of the same mode are statistically stable.
        assert!(summary.iops.rel() < 0.10, "rel spread {}", summary.iops.rel());
        assert!(summary.avg_watts.rel() < 0.05);
    }

    #[test]
    #[allow(deprecated)] // the shim's equivalence to serial stays asserted
    fn parallel_trials_match_serial_trials() {
        let mode = WorkloadMode::peak(4096, 50, 100);
        let run = |exec: &SweepExecutor| {
            let mut host = EvaluationHost::new();
            let summary = repeated_trials_with(
                &mut host,
                exec,
                || ArraySpec::hdd_raid5(4).build(),
                |seed| fixed_trace(60 + seed as usize, 4096),
                mode,
                3,
                "ptrials",
            );
            (summary, host.db.records().to_vec())
        };
        let (serial, serial_records) = run(&SweepExecutor::serial());
        let (parallel, parallel_records) = run(&SweepExecutor::new(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial_records, parallel_records);
    }

    #[test]
    fn single_trial_has_zero_stddev() {
        let stat = TrialStat::from_samples(&[42.0]);
        assert_eq!(stat.mean, 42.0);
        assert_eq!(stat.stddev, 0.0);
        assert_eq!(stat.rel(), 0.0);
        assert_eq!(TrialStat::from_samples(&[0.0, 0.0]).rel(), 0.0);
    }

    #[test]
    fn default_sweep_matches_paper_scale() {
        let cfg = SweepConfig::default();
        assert_eq!(cfg.modes.len(), 125);
        assert_eq!(cfg.loads.len(), 10);
        assert_eq!(cfg.run_count(), 1250);
    }
}
