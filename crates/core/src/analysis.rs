//! Statistical helpers for experiment post-processing.
//!
//! The evaluation section of the paper reasons about linearity (Fig. 9),
//! trend preservation (Fig. 12), and spread/flatness (Fig. 11). These small,
//! well-tested routines back those judgements in the bench harness and are
//! part of the public toolkit so downstream evaluations can make the same
//! calls.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Coefficient of variation (stddev over mean); 0 when the mean is 0.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m.abs() < f64::EPSILON {
        0.0
    } else {
        variance(xs).sqrt() / m
    }
}

/// Pearson correlation of the paired prefixes of `a` and `b`; 0 when either
/// side is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let (ma, mb) = (mean(&a[..n]), mean(&b[..n]));
    let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
    for i in 0..n {
        num += (a[i] - ma) * (b[i] - mb);
        da += (a[i] - ma).powi(2);
        db += (b[i] - mb).powi(2);
    }
    if da > 0.0 && db > 0.0 {
        num / (da * db).sqrt()
    } else {
        0.0
    }
}

/// Least-squares line through `(x, y)` pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (1.0 = perfectly linear).
    pub r2: f64,
}

/// Fit a line to the paired prefixes of `xs` and `ys`.
///
/// Returns `None` for fewer than two points or a degenerate (constant-x)
/// input.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return None;
    }
    let (mx, my) = (mean(&xs[..n]), mean(&ys[..n]));
    let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
    for i in 0..n {
        sxx += (xs[i] - mx).powi(2);
        sxy += (xs[i] - mx) * (ys[i] - my);
        syy += (ys[i] - my).powi(2);
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy > 0.0 { (sxy * sxy) / (sxx * syy) } else { 1.0 };
    Some(LinearFit { slope, intercept, r2 })
}

/// Relative spread `(max − min) / max`; 0 for empty or all-zero input. The
/// "flatness" measure used for Fig. 11's high-random curves.
pub fn relative_spread(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    if xs.is_empty() || max <= 0.0 {
        0.0
    } else {
        (max - min) / max
    }
}

/// `true` when the series never falls by more than `tolerance` (relative)
/// from one point to the next — the "grows with load" check of Fig. 9.
pub fn is_non_decreasing(xs: &[f64], tolerance: f64) -> bool {
    xs.windows(2).all(|w| w[1] >= w[0] * (1.0 - tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_variance_cv() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((coefficient_of_variation(&[1.0, 3.0]) - 0.5).abs() < 1e-12);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn pearson_known_cases() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0, 5.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        let ys = [25.0, 45.0, 65.0, 85.0]; // y = 2x + 5
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 5.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[3.0, 3.0], &[1.0, 2.0]).is_none());
        // Constant y: slope 0, r2 defined as 1 (perfectly explained).
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[7.0, 7.0, 7.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn spread_and_monotonicity() {
        assert!((relative_spread(&[50.0, 100.0, 75.0]) - 0.5).abs() < 1e-12);
        assert_eq!(relative_spread(&[]), 0.0);
        assert!(is_non_decreasing(&[1.0, 2.0, 3.0], 0.0));
        assert!(!is_non_decreasing(&[1.0, 0.5], 0.1));
        assert!(is_non_decreasing(&[1.0, 0.99], 0.02), "within tolerance");
    }

    proptest! {
        #[test]
        fn prop_pearson_is_symmetric_and_bounded(
            pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..50)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let r = pearson(&a, &b);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            prop_assert!((r - pearson(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn prop_fit_residual_orthogonality(
            pts in proptest::collection::vec((0.0f64..100.0, -50.0f64..50.0), 3..40)
        ) {
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            prop_assume!(variance(&xs) > 1e-6);
            let fit = linear_fit(&xs, &ys).unwrap();
            // Residuals sum to ~0 for least squares.
            let resid_sum: f64 = xs
                .iter()
                .zip(&ys)
                .map(|(x, y)| y - (fit.slope * x + fit.intercept))
                .sum();
            prop_assert!(resid_sum.abs() < 1e-6 * xs.len() as f64 * 100.0);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&fit.r2));
        }
    }
}
