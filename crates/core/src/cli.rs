//! Command-line interface of the TRACER toolkit.
//!
//! The paper drives TRACER through a GUI; the headless equivalent is the
//! `tracer` binary built from this module. Parsing is hand-rolled (the
//! dependency set carries no argument parser) and lives here so it can be
//! unit-tested apart from the binary entry point.
//!
//! ```text
//! tracer idle      --disks N [--seconds S]
//! tracer collect   --rs BYTES --rn PCT --rd PCT --repo DIR [--seconds S] [--array NAME]
//! tracer replay    --repo DIR --rs BYTES --rn PCT --rd PCT --load PCT
//!                  [--loads a,b,c|all] [--workers N] [--intensity PCT] [--array NAME]
//! tracer sweep     --repo DIR [--modes N] [--seconds S] [--workers N] [--array NAME]
//! tracer sweep     --scenario FILE [--db FILE] [--obs FILE]
//! tracer convert   (--srt FILE | --file FILE) [--name NAME --repo DIR] [--v3]
//! tracer stats     --name NAME --repo DIR
//! tracer policies  [--seconds S]
//! ```
//!
//! `--array` selects the testbed: `hdd4`, `hdd6` (default), or `ssd4`.
//! `--workers` sets the sweep executor's thread count (0 = one per core).

use crate::executor::SweepExecutor;
use crate::host::EvaluationHost;
use crate::orchestrate::{SweepBuilder, SweepConfig};
use crate::techniques::{compare_policies, ConservationPolicy};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use tracer_sim::{ArrayConfig, ArraySim, ArraySpec, Device, SimDuration};
use tracer_trace::{srt, sweep, TraceRepository, TraceStats, WorkloadMode};
use tracer_workload::iometer::{run_peak_workload, IometerConfig};
use tracer_workload::{TraceCollector, WebServerTraceBuilder};

/// Which testbed preset to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayChoice {
    /// RAID-5 over 4 HDDs.
    Hdd4,
    /// RAID-5 over 6 HDDs (the paper's main testbed).
    Hdd6,
    /// RAID-5 over 4 SSDs.
    Ssd4,
}

impl ArrayChoice {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "hdd4" => Ok(ArrayChoice::Hdd4),
            "hdd6" => Ok(ArrayChoice::Hdd6),
            "ssd4" => Ok(ArrayChoice::Ssd4),
            other => Err(CliError(format!("unknown array {other:?} (hdd4|hdd6|ssd4)"))),
        }
    }

    /// Build the simulator.
    pub fn build(self) -> ArraySim {
        match self {
            ArrayChoice::Hdd4 => ArraySpec::hdd_raid5(4).build(),
            ArrayChoice::Hdd6 => ArraySpec::hdd_raid5(6).build(),
            ArrayChoice::Ssd4 => ArraySpec::ssd_raid5(4).build(),
        }
    }

    /// Configuration + members, for policy application.
    pub fn parts(self) -> (ArrayConfig, Vec<Device>) {
        match self {
            ArrayChoice::Hdd4 => ArraySpec::hdd_raid5(4).parts(),
            ArrayChoice::Hdd6 => ArraySpec::hdd_raid5(6).parts(),
            ArrayChoice::Ssd4 => ArraySpec::ssd_raid5(4).parts(),
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Measure idle power versus disk count (Fig. 7 style).
    Idle {
        /// Number of disks.
        disks: usize,
        /// Measurement window, seconds.
        seconds: u64,
    },
    /// Collect a peak trace into a repository.
    Collect {
        /// Workload mode (load = 100).
        mode: WorkloadMode,
        /// Collection window, seconds.
        seconds: u64,
        /// Repository directory.
        repo: PathBuf,
        /// Testbed.
        array: ArrayChoice,
    },
    /// Replay a collected trace under load control.
    Replay {
        /// Workload mode including the load proportion.
        mode: WorkloadMode,
        /// Inter-arrival intensity, percent.
        intensity: u32,
        /// Repository directory.
        repo: PathBuf,
        /// Testbed.
        array: ArrayChoice,
        /// Results-database file to append the record to.
        db: Option<PathBuf>,
        /// When set, ignore timestamps and replay closed-loop at this queue
        /// depth (as-fast-as-possible peak measurement).
        afap_depth: Option<usize>,
        /// When non-empty, run a load sweep over these levels (plus the
        /// 100 % baseline) instead of a single replay, and print the
        /// accuracy table.
        loads: Vec<u32>,
        /// Sweep executor workers (0 = one per core; 1 = serial).
        workers: usize,
        /// Append a `tracer-obs` instrumentation snapshot (JSON lines) here.
        obs: Option<PathBuf>,
    },
    /// Run the synthetic mode × load sweep (§V-C1), collecting missing
    /// traces first — or a declarative scenario file (`--scenario`).
    Sweep {
        /// Repository directory (traces are collected here if missing).
        /// Unused with `scenario` — scenario traces are synthesized.
        repo: Option<PathBuf>,
        /// Testbed.
        array: ArrayChoice,
        /// Sweep executor workers (0 = one per core; 1 = serial).
        workers: usize,
        /// Collection window per trace, seconds.
        seconds: u64,
        /// How many of the 125 modes to run (evenly strided; 125 = all).
        modes: usize,
        /// Results-database file to write all records to.
        db: Option<PathBuf>,
        /// Append a `tracer-obs` instrumentation snapshot (JSON lines) here.
        obs: Option<PathBuf>,
        /// Scenario file to run instead of the synthetic grid; the file
        /// governs testbed, workload, loads and workers.
        scenario: Option<PathBuf>,
    },
    /// Convert a trace into the repository: an `.srt` source, or an existing
    /// `.replay` file re-encoded (e.g. migrated to the v3 columnar format).
    Convert {
        /// Source `.srt` path (exclusive with `file`).
        srt: Option<PathBuf>,
        /// Existing `.replay` file in any version (exclusive with `srt`).
        /// Without `name`, the file is re-encoded in place.
        file: Option<PathBuf>,
        /// Name to store the converted trace under (required with `srt`).
        name: Option<String>,
        /// Repository directory (required with `name`).
        repo: Option<PathBuf>,
        /// Store in the v3 columnar format (mmap-backed zero-copy replay).
        v3: bool,
    },
    /// Print statistics of a stored trace (Table III style), or summarize a
    /// `tracer-obs` snapshot written by `--obs`.
    Stats {
        /// Stored trace name (with `--repo`).
        name: Option<String>,
        /// Repository directory (with `--name`).
        repo: Option<PathBuf>,
        /// Obs snapshot (JSON lines) to summarize instead of a trace.
        obs: Option<PathBuf>,
    },
    /// Compare energy-conservation policies on a web-server workload.
    Policies {
        /// Trace length, seconds.
        seconds: u64,
        /// Results-database file to append the records to.
        db: Option<PathBuf>,
    },
    /// Render a markdown report from a results database.
    Report {
        /// Results-database file.
        db: PathBuf,
    },
    /// Serve as a workload-generator machine over TCP (§III-C deployment).
    Serve {
        /// Repository directory holding the collected traces. Exclusive
        /// with `scenario`, which synthesizes traces instead.
        repo: Option<PathBuf>,
        /// Testbed this machine drives.
        array: ArrayChoice,
        /// Evaluation workers. 1 (default) = the classic single-session
        /// generator; >1 selects the concurrent job service, which lives in
        /// the `tracer-serve` binary.
        workers: usize,
        /// Bounded job-queue capacity; 0 = 2 × workers.
        queue: usize,
        /// TCP port to listen on (0 = ephemeral). Fabric deployments pin it
        /// so the coordinator's node list is stable.
        port: u16,
        /// Durable job-log file: submitted/started/finished jobs are appended
        /// as checksummed frames and replayed on restart (`tracer-serve`
        /// binary only).
        log: Option<PathBuf>,
        /// Coordinator `host:port` to register with after binding
        /// (`tracer-serve` binary only).
        join: Option<String>,
        /// Scenario file naming the testbed and workload this node serves
        /// (`tracer-serve` binary only; exclusive with `repo`).
        scenario: Option<PathBuf>,
    },
    /// Shard a sweep campaign across registered serve nodes (the fabric
    /// coordinator; provided by the `tracer-coordinate` binary).
    Coordinate {
        /// Node addresses (`host:port`, comma-separated).
        nodes: Vec<String>,
        /// Testbed every node drives (fixes the device name).
        array: ArrayChoice,
        /// Workload mode (rs/rn/rd; the load level comes from `loads`).
        mode: WorkloadMode,
        /// Load levels to sweep (defaults to the paper's ten).
        loads: Vec<u32>,
        /// Inter-arrival intensity, percent.
        intensity: u32,
        /// Wait for this many nodes to `join` before starting (0 = use
        /// `nodes` as given).
        expect: usize,
        /// Registration listen port when `expect` > 0 (0 = ephemeral).
        port: u16,
        /// Append a `tracer-obs` instrumentation snapshot (JSON lines) here.
        obs: Option<PathBuf>,
        /// Run the cells locally against this trace repository and print the
        /// serial baseline report instead of dispatching to nodes (the
        /// byte-compare reference for fleet runs).
        serial: Option<PathBuf>,
        /// Scenario file defining the campaign (testbed, mode, loads);
        /// conflicts with the explicit mode/load/array flags.
        scenario: Option<PathBuf>,
    },
    /// Print usage.
    Help,
}

/// CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
tracer — load-controllable energy-efficiency evaluation for storage systems

USAGE:
  tracer idle     --disks N [--seconds S]
  tracer collect  --rs BYTES --rn PCT --rd PCT --repo DIR [--seconds S] [--array hdd4|hdd6|ssd4]
  tracer replay   --rs BYTES --rn PCT --rd PCT --load PCT --repo DIR
                  [--loads a,b,c|all] [--workers N] [--intensity PCT]
                  [--array ...] [--db FILE] [--afap DEPTH] [--obs FILE]
  tracer sweep    --repo DIR [--modes N] [--seconds S] [--workers N]
                  [--array hdd4|hdd6|ssd4] [--db FILE] [--obs FILE]
  tracer sweep    --scenario FILE [--db FILE] [--obs FILE]
  tracer convert  (--srt FILE | --file FILE) [--name NAME --repo DIR] [--v3]
  tracer stats    --name NAME --repo DIR | --obs FILE
  tracer policies [--seconds S] [--db FILE]
  tracer report   --db FILE
  tracer serve    (--repo DIR | --scenario FILE) [--array hdd4|hdd6|ssd4]
                  [--workers N] [--queue N] [--port N] [--log FILE]
                  [--join HOST:PORT]
  tracer coordinate --nodes a:p,b:p [--rs BYTES --rn PCT --rd PCT]
                  [--loads a,b,c|all] [--intensity PCT] [--array ...]
                  [--expect N --port N] [--obs FILE] [--serial REPO_DIR]
                  [--scenario FILE]
  tracer help

Convert ingests an .srt source (--srt, named into a repository) or
re-encodes an existing .replay file of any version (--file; in place
unless --name/--repo give it a new home). With --v3 the output is the
columnar v3 format, which replay maps and streams without decoding to
heap — the repository negotiates the format transparently on load.
Replay accepts --db FILE to append its record to a results database, and
--loads (comma-separated percentages, or `all` for the paper's ten) to run
a whole load sweep and print the accuracy table. Sweep replays every
selected synthetic mode at every load level, collecting missing traces
first; --workers 0 (the default for sweep) uses one worker per core.
Sweep --scenario FILE runs a declarative scenario instead: the TOML file
names the testbed (device zoo keyword, layout, disks, power policy), the
workload grid and the load levels, and the deterministic report goes to
stdout. Serve and coordinate accept the same files (--scenario), so one
scenario drives local sweeps, serve nodes and fleet campaigns alike.
Serve with --workers > 1 is the concurrent job service (bounded queue,
admission control); it is provided by the `tracer-serve` binary, which
also takes --port (pinned listen port), --log (durable job log replayed
on restart), and --join (register with a fabric coordinator).
Coordinate shards one sweep campaign across serve nodes with work
stealing and re-dispatch on node death; it is provided by the
`tracer-coordinate` binary. Its --serial REPO_DIR mode runs the same
cells locally and prints the byte-identical baseline report.
--obs FILE turns on the tracer-obs instrumentation for the run and appends
a JSON-lines snapshot (counters, histograms, span timings, events) to FILE;
`tracer stats --obs FILE` renders that snapshot as a table.
";

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some((verb, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut iter = rest.iter();
    while let Some(flag) = iter.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(CliError(format!("expected --flag, got {flag:?}")));
        };
        // Boolean switches take no value; everything else does.
        let value = if key == "v3" {
            "true".to_string()
        } else {
            iter.next().ok_or_else(|| CliError(format!("flag --{key} needs a value")))?.clone()
        };
        if flags.insert(key.to_string(), value).is_some() {
            return Err(CliError(format!("duplicate flag --{key}")));
        }
    }
    let get = |k: &str| {
        flags.get(k).cloned().ok_or_else(|| CliError(format!("missing required flag --{k}")))
    };
    let num = |k: &str| -> Result<u64, CliError> {
        get(k)?.parse().map_err(|_| CliError(format!("--{k} must be a number")))
    };
    let num_or = |k: &str, default: u64| -> Result<u64, CliError> {
        match flags.get(k) {
            Some(v) => v.parse().map_err(|_| CliError(format!("--{k} must be a number"))),
            None => Ok(default),
        }
    };
    let array = || -> Result<ArrayChoice, CliError> {
        match flags.get("array") {
            Some(v) => ArrayChoice::parse(v),
            None => Ok(ArrayChoice::Hdd6),
        }
    };
    let mode = |with_load: bool| -> Result<WorkloadMode, CliError> {
        let rn = num("rn")?;
        let rd = num("rd")?;
        if rn > 100 || rd > 100 {
            return Err(CliError("--rn/--rd must be 0-100".into()));
        }
        let load = if with_load { num("load")? } else { 100 };
        Ok(WorkloadMode {
            request_bytes: num("rs")? as u32,
            random_pct: rn as u8,
            read_pct: rd as u8,
            load_pct: load as u32,
        })
    };
    let loads = || -> Result<Vec<u32>, CliError> {
        let Some(raw) = flags.get("loads") else { return Ok(Vec::new()) };
        if raw == "all" {
            return Ok(sweep::LOAD_PCTS.to_vec());
        }
        raw.split(',')
            .map(|part| {
                let pct: u32 = part
                    .trim()
                    .parse()
                    .map_err(|_| CliError(format!("--loads element {part:?} is not a number")))?;
                if pct == 0 || pct > 100 {
                    return Err(CliError(format!("--loads element {pct} must be 1-100")));
                }
                Ok(pct)
            })
            .collect()
    };

    match verb.as_str() {
        "idle" => {
            Ok(Command::Idle { disks: num("disks")? as usize, seconds: num_or("seconds", 60)? })
        }
        "collect" => Ok(Command::Collect {
            mode: mode(false)?,
            seconds: num_or("seconds", 120)?,
            repo: PathBuf::from(get("repo")?),
            array: array()?,
        }),
        "replay" => {
            let loads = loads()?;
            let intensity = num_or("intensity", 100)? as u32;
            if intensity == 0 {
                // 0 would divide by zero in the replay timestamp scaler;
                // reject it at the boundary instead of panicking mid-run.
                return Err(CliError("--intensity must be positive".into()));
            }
            Ok(Command::Replay {
                // With --loads the sweep drives the level; --load is optional.
                mode: mode(loads.is_empty())?,
                intensity,
                repo: PathBuf::from(get("repo")?),
                array: array()?,
                db: flags.get("db").map(PathBuf::from),
                afap_depth: match flags.get("afap") {
                    Some(v) => Some(
                        v.parse().map_err(|_| CliError("--afap must be a queue depth".into()))?,
                    ),
                    None => None,
                },
                loads,
                workers: num_or("workers", 1)? as usize,
                obs: flags.get("obs").map(PathBuf::from),
            })
        }
        "sweep" => {
            if let Some(scenario) = flags.get("scenario") {
                // The file names the testbed, workload grid, loads and
                // workers, so the synthetic-sweep flags have nothing to say.
                for key in ["repo", "array", "modes", "seconds", "workers", "loads"] {
                    if flags.contains_key(key) {
                        return Err(CliError(format!(
                            "--{key} conflicts with --scenario (the scenario file governs it)"
                        )));
                    }
                }
                return Ok(Command::Sweep {
                    repo: None,
                    array: ArrayChoice::Hdd6,
                    workers: 1,
                    seconds: 10,
                    modes: 125,
                    db: flags.get("db").map(PathBuf::from),
                    obs: flags.get("obs").map(PathBuf::from),
                    scenario: Some(PathBuf::from(scenario)),
                });
            }
            let modes = num_or("modes", 125)? as usize;
            if modes == 0 || modes > 125 {
                return Err(CliError("--modes must be 1-125".into()));
            }
            Ok(Command::Sweep {
                repo: Some(PathBuf::from(get("repo")?)),
                array: array()?,
                workers: num_or("workers", 0)? as usize,
                seconds: num_or("seconds", 10)?,
                modes,
                db: flags.get("db").map(PathBuf::from),
                obs: flags.get("obs").map(PathBuf::from),
                scenario: None,
            })
        }
        "convert" => {
            let srt = flags.get("srt").map(PathBuf::from);
            let file = flags.get("file").map(PathBuf::from);
            let name = flags.get("name").cloned();
            let repo = flags.get("repo").map(PathBuf::from);
            match (&srt, &file) {
                (None, None) => return Err(CliError("convert needs --srt or --file".into())),
                (Some(_), Some(_)) => {
                    return Err(CliError("--srt and --file are mutually exclusive".into()));
                }
                // An .srt source has no .replay home yet, so it must be named
                // into a repository; a .replay file can re-encode in place.
                (Some(_), None) if name.is_none() => {
                    return Err(CliError("convert --srt needs --name".into()));
                }
                _ => {}
            }
            if name.is_some() && repo.is_none() {
                return Err(CliError("convert --name needs --repo".into()));
            }
            Ok(Command::Convert { srt, file, name, repo, v3: flags.contains_key("v3") })
        }
        "stats" => {
            let obs = flags.get("obs").map(PathBuf::from);
            let (name, repo) = if obs.is_some() {
                (flags.get("name").cloned(), flags.get("repo").map(PathBuf::from))
            } else {
                (Some(get("name")?), Some(PathBuf::from(get("repo")?)))
            };
            Ok(Command::Stats { name, repo, obs })
        }
        "policies" => Ok(Command::Policies {
            seconds: num_or("seconds", 120)?,
            db: flags.get("db").map(PathBuf::from),
        }),
        "report" => Ok(Command::Report { db: PathBuf::from(get("db")?) }),
        "serve" => {
            let workers = num_or("workers", 1)? as usize;
            if workers == 0 {
                return Err(CliError("--workers must be at least 1".into()));
            }
            let scenario = flags.get("scenario").map(PathBuf::from);
            let repo = match (flags.get("repo"), &scenario) {
                (Some(p), None) => Some(PathBuf::from(p)),
                (None, Some(_)) => None,
                (Some(_), Some(_)) => {
                    return Err(CliError("serve takes --repo or --scenario, not both".into()));
                }
                (None, None) => return Err(CliError("missing required flag --repo".into())),
            };
            Ok(Command::Serve {
                repo,
                array: array()?,
                workers,
                queue: num_or("queue", 0)? as usize,
                port: u16::try_from(num_or("port", 0)?)
                    .map_err(|_| CliError("--port must be 0-65535".into()))?,
                log: flags.get("log").map(PathBuf::from),
                join: flags.get("join").cloned(),
                scenario,
            })
        }
        "coordinate" => {
            let nodes: Vec<String> = match flags.get("nodes") {
                Some(raw) => raw
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect(),
                None => Vec::new(),
            };
            let expect = num_or("expect", 0)? as usize;
            let serial = flags.get("serial").map(PathBuf::from);
            let scenario = flags.get("scenario").map(PathBuf::from);
            if scenario.is_some() {
                // The scenario file fixes the testbed, mode and load grid.
                for key in ["rs", "rn", "rd", "loads", "intensity", "array"] {
                    if flags.contains_key(key) {
                        return Err(CliError(format!(
                            "--{key} conflicts with --scenario (the scenario file governs it)"
                        )));
                    }
                }
            }
            if nodes.is_empty() && expect == 0 && serial.is_none() && scenario.is_none() {
                return Err(CliError(
                    "coordinate needs --nodes, --expect, --serial, or --scenario".into(),
                ));
            }
            let intensity = num_or("intensity", 100)? as u32;
            if intensity == 0 {
                return Err(CliError("--intensity must be positive".into()));
            }
            // The workload mode defaults to the paper's 8 KiB 50/100 point so
            // a two-node smoke test needs no mode flags at all.
            let mode = if flags.contains_key("rs") {
                mode(false)?
            } else {
                WorkloadMode::peak(8192, 50, 100)
            };
            let mut levels = loads()?;
            if levels.is_empty() {
                levels = sweep::LOAD_PCTS.to_vec();
            }
            Ok(Command::Coordinate {
                nodes,
                array: array()?,
                mode,
                loads: levels,
                intensity,
                expect,
                port: u16::try_from(num_or("port", 0)?)
                    .map_err(|_| CliError("--port must be 0-65535".into()))?,
                obs: flags.get("obs").map(PathBuf::from),
                serial,
                scenario,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError(format!("unknown command {other:?}; try `tracer help`"))),
    }
}

/// Execute a parsed command, writing human-readable output to stdout.
pub fn run(cmd: Command) -> Result<(), CliError> {
    let io_err = |e: tracer_trace::TraceError| CliError(e.to_string());
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Idle { disks, seconds } => {
            let mut host = EvaluationHost::new();
            let mut sim = ArraySpec::hdd_idle(disks).build();
            let watts = host.measure_idle(&mut sim, SimDuration::from_secs(seconds), "cli-idle");
            println!("idle power with {disks} disks over {seconds}s: {watts:.2} W");
            Ok(())
        }
        Command::Collect { mode, seconds, repo, array } => {
            let repo = TraceRepository::open(&repo).map_err(io_err)?;
            let mut sim = array.build();
            let out = run_peak_workload(
                &mut sim,
                &IometerConfig {
                    duration: SimDuration::from_secs(seconds),
                    ..IometerConfig::two_minutes(mode, 0x7ace)
                },
            );
            let path = repo.store(&mode, &out.trace).map_err(io_err)?;
            println!(
                "collected {} IOs at peak {:.1} IOPS / {:.2} MBPS -> {}",
                out.trace.io_count(),
                out.peak_iops,
                out.peak_mbps,
                path.display()
            );
            Ok(())
        }
        Command::Replay { mode, intensity, repo, array, db, afap_depth, loads, workers, obs } => {
            let repo = TraceRepository::open(&repo).map_err(io_err)?;
            let device = array.build().config().name.clone();
            // Format-negotiating load: v3 files map as zero-copy views,
            // v1/v2 decode into the shared heap cache.
            let trace = repo.load_view(&device, &mode).map_err(io_err)?;
            if let Some(depth) = afap_depth {
                let mut sim = array.build();
                let report = tracer_replay::replay_afap(
                    &mut sim,
                    &trace,
                    depth,
                    tracer_replay::AddressPolicy::Wrap,
                );
                println!(
                    "afap depth {depth}: {:.1} IOPS, {:.2} MBPS, avg {:.2} ms, p95 {:.2} ms                      over {:.2}s",
                    report.summary.iops,
                    report.summary.mbps,
                    report.summary.avg_response_ms,
                    report.summary.p95_response_ms,
                    report.span().as_secs_f64()
                );
                return Ok(());
            }
            let mut host = EvaluationHost::new();
            if let Some(path) = &db {
                if path.exists() {
                    host.db =
                        crate::db::Database::load(path).map_err(|e| CliError(e.to_string()))?;
                }
            }
            if !loads.is_empty() {
                let exec = SweepExecutor::new(workers);
                let mut builder =
                    SweepBuilder::new().executor(exec).loads(&loads).label("cli-replay");
                if let Some(path) = &obs {
                    builder = builder.obs(tracer_obs::Sink::file(path));
                }
                let result =
                    builder.load_sweep(&mut host, || array.build(), &trace, mode.at_load(100));
                println!(
                    "load sweep over {} levels ({} workers):",
                    result.loads.len(),
                    exec.workers()
                );
                println!(
                    "{:>6} {:>10} {:>9} {:>9} {:>9}",
                    "load%", "IOPS", "MBPS", "meas%", "accuracy"
                );
                for row in &result.rows {
                    println!(
                        "{:>6} {:>10.1} {:>9.2} {:>9.1} {:>9.4}",
                        row.configured_pct,
                        row.iops,
                        row.mbps,
                        row.measured_iops_pct,
                        row.accuracy_iops
                    );
                }
                println!("worst error {:.4}", result.max_error());
            } else {
                // A single cell still honours --obs: turn instrumentation on
                // for the replay and append the snapshot afterwards.
                let obs_was = tracer_obs::enabled();
                if obs.is_some() && !obs_was {
                    tracer_obs::enable();
                }
                let mut sim = array.build();
                let outcome = host.commit(EvaluationHost::measure_test(
                    host.meter_cycle_ms,
                    &mut sim,
                    &trace,
                    mode,
                    intensity,
                    "cli-replay",
                ));
                if let Some(path) = &obs {
                    if let Err(e) = tracer_obs::dump_to(&tracer_obs::Sink::file(path)) {
                        eprintln!("obs: failed to write snapshot: {e}");
                    }
                    if !obs_was {
                        tracer_obs::disable();
                    }
                }
                let m = outcome.metrics;
                println!(
                    "load {}% intensity {intensity}%: {:.1} IOPS, {:.2} MBPS, {:.2} ms avg, \
                     {:.2} W, {:.3} IOPS/Watt, {:.1} MBPS/Kilowatt",
                    mode.load_pct,
                    m.iops,
                    m.mbps,
                    m.avg_response_ms,
                    m.avg_watts,
                    m.iops_per_watt,
                    m.mbps_per_kilowatt
                );
            }
            if let Some(path) = db {
                host.db.save(&path).map_err(|e| CliError(e.to_string()))?;
                println!("records appended to {}", path.display());
            }
            Ok(())
        }
        Command::Sweep { repo, array, workers, seconds, modes, db, obs, scenario } => {
            if let Some(path) = scenario {
                let spec = crate::scenario::ScenarioSpec::from_file(&path)
                    .map_err(|e| CliError(e.to_string()))?;
                let obs_was = tracer_obs::enabled();
                if obs.is_some() && !obs_was {
                    tracer_obs::enable();
                }
                let outcome =
                    crate::scenario::run_scenario(&spec).map_err(|e| CliError(e.to_string()))?;
                if let Some(path) = &obs {
                    if let Err(e) = tracer_obs::dump_to(&tracer_obs::Sink::file(path)) {
                        eprintln!("obs: failed to write snapshot: {e}");
                    }
                    if !obs_was {
                        tracer_obs::disable();
                    }
                }
                // Only the deterministic report reaches stdout, so shell
                // redirection captures byte-comparable output; bookkeeping
                // goes to stderr.
                print!("{}", outcome.report);
                if let Some(path) = db {
                    outcome.db.save(&path).map_err(|e| CliError(e.to_string()))?;
                    eprintln!("records saved to {}", path.display());
                }
                return Ok(());
            }
            let repo = repo.expect("parse requires --repo without --scenario");
            let repo = TraceRepository::open(&repo).map_err(io_err)?;
            let exec = SweepExecutor::new(workers);
            let all = sweep::all_modes();
            // Evenly strided subset so a partial sweep still spans the grid.
            let selected: Vec<WorkloadMode> =
                (0..modes).map(|i| all[i * all.len() / modes]).collect();
            let device = array.build().config().name.clone();
            let missing: Vec<WorkloadMode> =
                selected.iter().copied().filter(|m| !repo.contains(&device, m)).collect();
            if !missing.is_empty() {
                println!(
                    "collecting {} missing traces ({seconds}s each, {} workers)",
                    missing.len(),
                    exec.workers()
                );
                let failures: Vec<String> = exec
                    .run_indexed(
                        missing.len(),
                        |i| {
                            let mut collector = TraceCollector::new(&repo, || array.build());
                            collector.duration = SimDuration::from_secs(seconds);
                            collector.collect(missing[i]).err().map(|e| e.to_string())
                        },
                        |_| {},
                    )
                    .into_iter()
                    .flatten()
                    .collect();
                if let Some(e) = failures.into_iter().next() {
                    return Err(CliError(e));
                }
            }
            let cfg = SweepConfig { modes: selected, loads: sweep::LOAD_PCTS.to_vec() };
            println!(
                "replaying {} modes x {} loads on {} workers",
                cfg.modes.len(),
                cfg.loads.len(),
                exec.workers()
            );
            let mut host = EvaluationHost::new();
            let mut builder = SweepBuilder::new()
                .executor(exec)
                .on_progress(|done, total| println!("mode {done}/{total}"));
            if let Some(path) = &obs {
                builder = builder.obs(tracer_obs::Sink::file(path));
            }
            let results = builder.sweep(
                &mut host,
                || array.build(),
                |m| {
                    // Shared handles: the sweep grid holds one decoded copy
                    // (or one mapped view) of each mode's trace, not one
                    // clone per cell.
                    repo.load_view(&device, m)
                        .unwrap_or_else(|e| panic!("trace for {m} vanished from repository: {e}"))
                },
                &cfg,
            );
            let worst = results.iter().map(|r| r.max_error()).fold(0.0, f64::max);
            println!("{} records; worst load-control error {:.4}", host.db.len(), worst);
            if let Some(path) = db {
                host.db.save(&path).map_err(|e| CliError(e.to_string()))?;
                println!("records saved to {}", path.display());
            }
            Ok(())
        }
        Command::Convert { srt: srt_path, file, name, repo, v3 } => {
            let trace = match (&srt_path, &file) {
                (Some(p), _) => srt::convert_file(
                    p,
                    name.as_deref().unwrap_or("converted"),
                    srt::ConvertOptions::default(),
                )
                .map_err(io_err)?,
                (None, Some(p)) => tracer_trace::replay_format::read_file_any(p).map_err(io_err)?,
                (None, None) => return Err(CliError("convert needs --srt or --file".into())),
            };
            let path = match (&name, &repo) {
                (Some(name), Some(repo)) => {
                    let repo = TraceRepository::open(repo).map_err(io_err)?;
                    if v3 {
                        repo.store_v3_named(name, &trace).map_err(io_err)?
                    } else {
                        repo.store_named(name, &trace).map_err(io_err)?
                    }
                }
                _ => {
                    // Nameless --file conversion: re-encode over the source.
                    let p = file.expect("parse guarantees --file when --name is absent");
                    if v3 {
                        tracer_trace::v3::write_file(&trace, &p).map_err(io_err)?;
                    } else {
                        tracer_trace::replay_format::write_file(&trace, &p).map_err(io_err)?;
                    }
                    p
                }
            };
            let format = if v3 { " (v3 columnar)" } else { "" };
            println!("converted {} IOs -> {}{format}", trace.io_count(), path.display());
            Ok(())
        }
        Command::Stats { name, repo, obs } => {
            if let Some(path) = &obs {
                let text = std::fs::read_to_string(path).map_err(|e| CliError(e.to_string()))?;
                print_obs_snapshot(&text)?;
            }
            let (Some(name), Some(repo)) = (name, repo) else {
                return Ok(()); // --obs only: nothing else to print
            };
            let repo = TraceRepository::open(&repo).map_err(io_err)?;
            // Stats materializes regardless of format, so negotiate first and
            // decode the handle (v3 views included) into a heap trace.
            let trace = repo.load_view_named(&name).map_err(io_err)?.to_trace().map_err(io_err)?;
            let s = TraceStats::compute(&trace);
            println!("trace {name}:");
            println!("  ios            {:>12}", s.ios);
            println!("  bunches        {:>12}", s.bunches);
            println!("  duration       {:>12.1} s", s.duration_ns as f64 / 1e9);
            println!("  read ratio     {:>12.2} %", s.read_ratio * 100.0);
            println!("  avg request    {:>12.1} KB", s.avg_request_kib());
            println!("  fs span        {:>12.2} GB", s.span_gib());
            println!("  dataset        {:>12.2} GB", s.footprint_gib());
            println!("  sequentiality  {:>12.2} %", s.sequential_ratio * 100.0);
            println!("  avg rate       {:>9.1} IOPS / {:.2} MBPS", s.avg_iops, s.avg_mbps);
            Ok(())
        }
        Command::Report { db } => {
            let db = crate::db::Database::load(&db).map_err(|e| CliError(e.to_string()))?;
            print!("{}", crate::report::markdown(&db));
            Ok(())
        }
        Command::Serve { repo, array, workers, queue, port, log, join, scenario } => {
            if workers > 1 || port != 0 || log.is_some() || join.is_some() || scenario.is_some() {
                // Everything beyond the classic single-session generator —
                // worker pools, pinned ports, durable logs, fabric
                // registration, scenario-defined testbeds — lives in the
                // tracer-serve binary.
                let source = match (&repo, &scenario) {
                    (_, Some(s)) => format!("--scenario {}", s.display()),
                    (Some(r), None) => format!(
                        "--repo {} --array {}",
                        r.display(),
                        match array {
                            ArrayChoice::Hdd4 => "hdd4",
                            ArrayChoice::Hdd6 => "hdd6",
                            ArrayChoice::Ssd4 => "ssd4",
                        }
                    ),
                    (None, None) => unreachable!("parse requires --repo or --scenario"),
                };
                return Err(CliError(format!(
                    "the concurrent job service is the `tracer-serve` binary; run: \
                     tracer-serve {source} --workers {}{}{}{}{}",
                    workers.max(2),
                    if queue > 0 { format!(" --queue {queue}") } else { String::new() },
                    if port > 0 { format!(" --port {port}") } else { String::new() },
                    match &log {
                        Some(p) => format!(" --log {}", p.display()),
                        None => String::new(),
                    },
                    match &join {
                        Some(a) => format!(" --join {a}"),
                        None => String::new(),
                    }
                )));
            }
            let repo = repo.expect("parse requires --repo without --scenario");
            let repo = TraceRepository::open(&repo).map_err(io_err)?;
            let device = array.build().config().name.clone();
            let server = crate::net::GeneratorServer::spawn(
                move |requested: &str| (requested == device).then(|| array.build()),
                move |dev: &str, mode: &WorkloadMode| repo.load_view(dev, mode).ok(),
            )
            .map_err(|e| CliError(e.to_string()))?;
            println!("workload generator listening on {}", server.addr());
            println!("send the line protocol (see `tracer help`); `quit` stops the server");
            // Serve until the peer sends quit; the spawn thread owns the loop.
            match server.shutdown_on_quit() {
                Ok(()) => Ok(()),
                Err(e) => Err(CliError(e.to_string())),
            }
        }
        Command::Coordinate { nodes, .. } => Err(CliError(format!(
            "the fabric coordinator is the `tracer-coordinate` binary; run: \
             tracer-coordinate --nodes {}",
            if nodes.is_empty() { "HOST:PORT,...".to_string() } else { nodes.join(",") }
        ))),
        Command::Policies { seconds, db } => {
            let trace = WebServerTraceBuilder {
                duration_s: seconds as f64,
                mean_iops: 150.0,
                ..Default::default()
            }
            .build();
            let mut host = EvaluationHost::new();
            let outcomes = compare_policies(
                &mut host,
                || ArraySpec::hdd_raid5(6).parts(),
                &trace,
                WorkloadMode::peak(22 * 1024, 50, 90),
                &[
                    ConservationPolicy::SpinDown { idle_timeout: SimDuration::from_secs(10) },
                    ConservationPolicy::DegradedParity { parked_disk: 0 },
                    ConservationPolicy::WriteBackCache,
                ],
                "cli-policies",
            );
            println!(
                "{:<28} {:>10} {:>9} {:>9} {:>10} {:>10}",
                "policy", "energy J", "watts", "avg ms", "saving %", "penalty %"
            );
            for o in &outcomes {
                println!(
                    "{:<28} {:>10.1} {:>9.2} {:>9.2} {:>10.2} {:>10.2}",
                    o.policy,
                    o.energy_joules,
                    o.avg_watts,
                    o.avg_response_ms,
                    o.energy_saving_pct,
                    o.response_penalty_pct
                );
            }
            if let Some(path) = db {
                host.db.save(&path).map_err(|e| CliError(e.to_string()))?;
                println!("records saved to {}", path.display());
            }
            Ok(())
        }
    }
}

/// Render a `tracer-obs` JSON-lines snapshot as a human-readable table:
/// counters first, then histograms/spans with a sparkline over their log2
/// buckets, then the event tally.
fn print_obs_snapshot(text: &str) -> Result<(), CliError> {
    use serde_json::Value;
    fn as_str(v: &Value) -> Option<&str> {
        match v {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_u64(v: &Value) -> Option<u64> {
        match v {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut hists: Vec<(String, String, u64, f64, u64, String)> = Vec::new();
    let mut events = 0u64;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| CliError(format!("obs snapshot line {}: {e}", idx + 1)))?;
        let name = v.get("name").and_then(as_str).unwrap_or("?").to_string();
        match v.get("kind").and_then(as_str).unwrap_or("") {
            "counter" | "gauge" => {
                counters.push((name, v.get("value").and_then(as_u64).unwrap_or(0)));
            }
            kind @ ("hist" | "span") => {
                let count = v.get("count").and_then(as_u64).unwrap_or(0);
                let mean = v.get("mean").and_then(Value::as_f64).unwrap_or(0.0);
                let max = v.get("max").and_then(as_u64).unwrap_or(0);
                let buckets: Vec<f64> = match v.get("buckets") {
                    Some(Value::Seq(items)) => items.iter().filter_map(Value::as_f64).collect(),
                    _ => Vec::new(),
                };
                hists.push((name, kind.to_string(), count, mean, max, tracer_obs::spark(&buckets)));
            }
            "event" => events += 1,
            other => {
                return Err(CliError(format!(
                    "obs snapshot line {}: unknown kind {other:?}",
                    idx + 1
                )));
            }
        }
    }
    if !counters.is_empty() {
        println!("counters:");
        for (name, value) in &counters {
            println!("  {name:<32} {value:>14}");
        }
    }
    if !hists.is_empty() {
        println!("histograms (log2 buckets):");
        for (name, kind, count, mean, max, spark) in &hists {
            println!(
                "  {name:<32} {kind:<5} count {count:>10}  mean {mean:>14.1}  max {max:>12}  {spark}"
            );
        }
    }
    println!("events: {events}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_idle() {
        let cmd = parse(&argv("idle --disks 6")).unwrap();
        assert_eq!(cmd, Command::Idle { disks: 6, seconds: 60 });
        let cmd = parse(&argv("idle --disks 0 --seconds 5")).unwrap();
        assert_eq!(cmd, Command::Idle { disks: 0, seconds: 5 });
    }

    #[test]
    fn parses_collect_and_replay() {
        let cmd = parse(&argv("collect --rs 4096 --rn 50 --rd 0 --repo /tmp/r")).unwrap();
        match cmd {
            Command::Collect { mode, seconds, array, .. } => {
                assert_eq!(mode, WorkloadMode::peak(4096, 50, 0));
                assert_eq!(seconds, 120);
                assert_eq!(array, ArrayChoice::Hdd6);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv(
            "replay --rs 4096 --rn 50 --rd 0 --load 30 --intensity 200 --repo /tmp/r --array ssd4",
        ))
        .unwrap();
        match cmd {
            Command::Replay { mode, intensity, array, afap_depth, .. } => {
                assert_eq!(mode.load_pct, 30);
                assert_eq!(intensity, 200);
                assert_eq!(array, ArrayChoice::Ssd4);
                assert_eq!(afap_depth, None);
            }
            other => panic!("{other:?}"),
        }
        let cmd =
            parse(&argv("replay --rs 4096 --rn 50 --rd 0 --load 100 --repo /tmp/r --afap 32"))
                .unwrap();
        assert!(matches!(cmd, Command::Replay { afap_depth: Some(32), .. }));
    }

    #[test]
    fn parses_replay_load_sweep_flags() {
        // --loads makes --load optional and carries the parsed levels.
        let cmd = parse(&argv(
            "replay --rs 4096 --rn 50 --rd 0 --loads 20,50,80 --workers 4 --repo /tmp/r",
        ))
        .unwrap();
        match cmd {
            Command::Replay { loads, workers, mode, .. } => {
                assert_eq!(loads, vec![20, 50, 80]);
                assert_eq!(workers, 4);
                assert_eq!(mode.load_pct, 100);
            }
            other => panic!("{other:?}"),
        }
        let cmd =
            parse(&argv("replay --rs 4096 --rn 50 --rd 0 --loads all --repo /tmp/r")).unwrap();
        match cmd {
            Command::Replay { loads, workers, .. } => {
                assert_eq!(loads, sweep::LOAD_PCTS.to_vec());
                assert_eq!(workers, 1, "serial by default");
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            "replay --rs 4096 --rn 0 --rd 0 --loads ten --repo /tmp/r",
            "replay --rs 4096 --rn 0 --rd 0 --loads 0,50 --repo /tmp/r",
            "replay --rs 4096 --rn 0 --rd 0 --loads 150 --repo /tmp/r",
        ] {
            assert!(parse(&argv(bad)).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_sweep() {
        let cmd = parse(&argv("sweep --repo /tmp/r")).unwrap();
        match cmd {
            Command::Sweep { workers, seconds, modes, array, db, .. } => {
                assert_eq!(workers, 0, "sweep defaults to one worker per core");
                assert_eq!(seconds, 10);
                assert_eq!(modes, 125);
                assert_eq!(array, ArrayChoice::Hdd6);
                assert_eq!(db, None);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv(
            "sweep --repo /tmp/r --modes 5 --seconds 2 --workers 2 --array hdd4 --db /tmp/d.json",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Sweep { modes: 5, seconds: 2, workers: 2, array: ArrayChoice::Hdd4, .. }
        ));
        assert!(parse(&argv("sweep --repo /tmp/r --modes 0")).is_err());
        assert!(parse(&argv("sweep --repo /tmp/r --modes 126")).is_err());
        assert!(parse(&argv("sweep")).is_err(), "sweep needs --repo");
    }

    #[test]
    fn run_sweep_end_to_end_small() {
        let repo = std::env::temp_dir().join(format!("tracer_cli_sweep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&repo);
        let db_path = repo.join("sweep_db.json");
        let obs_path = repo.join("sweep_obs.jsonl");
        run(Command::Sweep {
            repo: Some(repo.clone()),
            array: ArrayChoice::Hdd4,
            workers: 2,
            seconds: 1,
            modes: 2,
            db: Some(db_path.clone()),
            obs: Some(obs_path.clone()),
            scenario: None,
        })
        .unwrap();
        let stored = crate::db::Database::load(&db_path).unwrap();
        // 2 modes × the paper's 10 load levels.
        assert_eq!(stored.len(), 20);
        // The obs snapshot is JSON lines and `tracer stats --obs` renders it.
        let snapshot = std::fs::read_to_string(&obs_path).unwrap();
        assert!(snapshot.lines().count() > 3, "snapshot too small:\n{snapshot}");
        assert!(snapshot.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(snapshot.contains("\"sweep.cells\""), "{snapshot}");
        assert!(snapshot.contains("\"executor.cell_ns\""), "{snapshot}");
        run(Command::Stats { name: None, repo: None, obs: Some(obs_path) }).unwrap();
        std::fs::remove_dir_all(&repo).unwrap();
    }

    #[test]
    fn parses_convert_stats_policies_help() {
        assert!(matches!(
            parse(&argv("convert --srt a.srt --name cello --repo /tmp/r")).unwrap(),
            Command::Convert { .. }
        ));
        assert!(matches!(
            parse(&argv("stats --name cello --repo /tmp/r")).unwrap(),
            Command::Stats { .. }
        ));
        assert_eq!(parse(&argv("policies")).unwrap(), Command::Policies { seconds: 120, db: None });
        assert!(matches!(parse(&argv("report --db /tmp/x.json")).unwrap(), Command::Report { .. }));
        assert!(parse(&argv("report")).is_err(), "report needs --db");
        assert!(matches!(
            parse(&argv("serve --repo /tmp/r --array ssd4")).unwrap(),
            Command::Serve { array: ArrayChoice::Ssd4, workers: 1, queue: 0, .. }
        ));
        assert!(matches!(
            parse(&argv("serve --repo /tmp/r --workers 4 --queue 8")).unwrap(),
            Command::Serve { workers: 4, queue: 8, .. }
        ));
        assert!(parse(&argv("serve --repo /tmp/r --workers 0")).is_err());
        // Multi-worker serve is routed to the tracer-serve binary.
        let err = run(parse(&argv("serve --repo /tmp/r --workers 4")).unwrap()).unwrap_err();
        assert!(err.0.contains("tracer-serve"), "{err}");
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_fabric_serve_flags_and_routes_them_to_the_binary() {
        let cmd = parse(&argv(
            "serve --repo /tmp/r --workers 2 --port 7401 --log /tmp/n.joblog --join 127.0.0.1:9000",
        ))
        .unwrap();
        match &cmd {
            Command::Serve { port, log, join, .. } => {
                assert_eq!(*port, 7401);
                assert_eq!(log.as_deref(), Some(std::path::Path::new("/tmp/n.joblog")));
                assert_eq!(join.as_deref(), Some("127.0.0.1:9000"));
            }
            other => panic!("{other:?}"),
        }
        // Any fabric flag routes to tracer-serve even at one worker.
        let err =
            run(parse(&argv("serve --repo /tmp/r --log /tmp/n.joblog")).unwrap()).unwrap_err();
        assert!(err.0.contains("tracer-serve") && err.0.contains("--log"), "{err}");
        assert!(parse(&argv("serve --repo /tmp/r --port 70000")).is_err());
    }

    #[test]
    fn parses_coordinate_and_routes_it_to_the_binary() {
        let cmd = parse(&argv("coordinate --nodes 127.0.0.1:7401,127.0.0.1:7402")).unwrap();
        match &cmd {
            Command::Coordinate { nodes, loads, intensity, mode, expect, .. } => {
                assert_eq!(nodes, &["127.0.0.1:7401", "127.0.0.1:7402"]);
                assert_eq!(loads, &sweep::LOAD_PCTS.to_vec(), "defaults to the paper's ten");
                assert_eq!(*intensity, 100);
                assert_eq!(mode.request_bytes, 8192);
                assert_eq!(*expect, 0);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv(
            "coordinate --expect 2 --port 9000 --rs 4096 --rn 0 --rd 100 --loads 20,50 \
             --intensity 200 --array hdd4 --obs /tmp/o.jsonl",
        ))
        .unwrap();
        match &cmd {
            Command::Coordinate { nodes, loads, expect, port, obs, .. } => {
                assert!(nodes.is_empty());
                assert_eq!(loads, &[20, 50]);
                assert_eq!(*expect, 2);
                assert_eq!(*port, 9000);
                assert!(obs.is_some());
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv("coordinate --serial /tmp/repo")).unwrap();
        match &cmd {
            Command::Coordinate { nodes, serial, .. } => {
                assert!(nodes.is_empty());
                assert_eq!(serial.as_deref(), Some(std::path::Path::new("/tmp/repo")));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("coordinate")).is_err(), "needs --nodes, --expect, or --serial");
        assert!(parse(&argv("coordinate --nodes a --intensity 0")).is_err());
        let err = run(parse(&argv("coordinate --nodes 127.0.0.1:7401")).unwrap()).unwrap_err();
        assert!(err.0.contains("tracer-coordinate"), "{err}");
    }

    #[test]
    fn parses_convert_forms_and_rejects_ambiguous_ones() {
        let cmd = parse(&argv("convert --file /tmp/t.replay --v3")).unwrap();
        assert!(matches!(
            cmd,
            Command::Convert { srt: None, file: Some(_), name: None, repo: None, v3: true }
        ));
        let cmd = parse(&argv("convert --srt a.srt --name cello --repo /tmp/r")).unwrap();
        assert!(matches!(
            cmd,
            Command::Convert { srt: Some(_), file: None, name: Some(_), repo: Some(_), v3: false }
        ));
        assert!(parse(&argv("convert")).is_err(), "needs a source");
        assert!(parse(&argv("convert --srt a.srt --file b.replay --name x --repo /r")).is_err());
        assert!(parse(&argv("convert --srt a.srt --repo /r")).is_err(), "--srt needs --name");
        assert!(parse(&argv("convert --file b.replay --name x")).is_err(), "--name needs --repo");
    }

    #[test]
    fn convert_migrates_a_replay_file_to_v3_in_place() {
        use tracer_trace::{replay_format, Bunch, IoPackage, Trace};
        let dir = std::env::temp_dir().join(format!("tracer_cli_conv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mig.replay");
        let trace = Trace::from_bunches(
            "d",
            (0..20)
                .map(|i| Bunch::new(i * 1_000_000, vec![IoPackage::read(i * 8, 4096)]))
                .collect(),
        );
        replay_format::write_file(&trace, &path).unwrap();
        run(Command::Convert {
            srt: None,
            file: Some(path.clone()),
            name: None,
            repo: None,
            v3: true,
        })
        .unwrap();
        // The file is now v3 on disk and decodes to the identical trace.
        let head = std::fs::read(&path).unwrap();
        assert_eq!(u16::from_le_bytes([head[4], head[5]]), 3, "not re-encoded as v3");
        assert_eq!(replay_format::read_file_any(&path).unwrap(), trace);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parses_obs_flags() {
        let cmd = parse(&argv("sweep --repo /tmp/r --obs /tmp/o.jsonl")).unwrap();
        assert!(matches!(cmd, Command::Sweep { obs: Some(_), .. }));
        let cmd = parse(&argv(
            "replay --rs 4096 --rn 0 --rd 0 --load 50 --repo /tmp/r --obs /tmp/o.jsonl",
        ))
        .unwrap();
        assert!(matches!(cmd, Command::Replay { obs: Some(_), .. }));
        // --obs alone is a valid stats invocation; --name/--repo stay optional.
        let cmd = parse(&argv("stats --obs /tmp/o.jsonl")).unwrap();
        assert_eq!(
            cmd,
            Command::Stats { name: None, repo: None, obs: Some(PathBuf::from("/tmp/o.jsonl")) }
        );
        assert!(matches!(
            parse(&argv("stats --name cello --repo /tmp/r --obs /tmp/o.jsonl")).unwrap(),
            Command::Stats { name: Some(_), repo: Some(_), obs: Some(_) }
        ));
        assert!(parse(&argv("stats")).is_err(), "stats needs --name/--repo or --obs");
        assert!(parse(&argv("stats --obs")).is_err(), "--obs needs a value");
    }

    #[test]
    fn stats_renders_obs_snapshot() {
        let dir = std::env::temp_dir().join(format!("tracer_cli_obs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.jsonl");
        std::fs::write(
            &path,
            "{\"kind\":\"counter\",\"name\":\"des.events\",\"value\":12}\n\
             {\"kind\":\"hist\",\"name\":\"executor.cell_ns\",\"count\":2,\"sum\":6,\"max\":4,\
             \"mean\":3.0,\"buckets\":[1,1]}\n\
             {\"kind\":\"event\",\"t_ns\":5,\"name\":\"sweep.start\",\"fields\":{}}\n",
        )
        .unwrap();
        run(Command::Stats { name: None, repo: None, obs: Some(path.clone()) }).unwrap();
        // A malformed snapshot surfaces a line-numbered error.
        std::fs::write(&path, "{\"kind\":\"counter\",\"name\":\"x\",\"value\":1}\nnot json\n")
            .unwrap();
        let err = run(Command::Stats { name: None, repo: None, obs: Some(path) }).unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "dance",
            "idle",                                           // missing --disks
            "idle --disks",                                   // missing value
            "idle --disks six",                               // non-numeric
            "idle disks 6",                                   // not a flag
            "idle --disks 6 --disks 7",                       // duplicate
            "collect --rs 512 --rn 200 --rd 0 --repo /tmp/r", // ratio > 100
            "replay --rs 512 --rn 0 --rd 0 --repo /tmp/r",    // missing --load
            "replay --rs 512 --rn 0 --rd 0 --load 50 --intensity 0 --repo /tmp/r", // zero intensity
            "collect --rs 512 --rn 0 --rd 0 --repo /tmp/r --array floppy",
        ] {
            assert!(parse(&argv(bad)).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn run_idle_and_collect_replay_round_trip() {
        run(Command::Idle { disks: 2, seconds: 1 }).unwrap();
        let repo = std::env::temp_dir().join(format!("tracer_cli_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&repo);
        let mode = WorkloadMode::peak(8192, 50, 100);
        run(Command::Collect { mode, seconds: 1, repo: repo.clone(), array: ArrayChoice::Hdd4 })
            .unwrap();
        let db_path = repo.join("cli_db.json");
        run(Command::Replay {
            mode: mode.at_load(50),
            intensity: 100,
            repo: repo.clone(),
            array: ArrayChoice::Hdd4,
            db: Some(db_path.clone()),
            afap_depth: None,
            loads: vec![],
            workers: 1,
            obs: None,
        })
        .unwrap();
        // A second replay appends to the same database.
        run(Command::Replay {
            mode: mode.at_load(100),
            intensity: 100,
            repo: repo.clone(),
            array: ArrayChoice::Hdd4,
            db: Some(db_path.clone()),
            afap_depth: None,
            loads: vec![],
            workers: 1,
            obs: None,
        })
        .unwrap();
        // AFAP mode runs against the same stored trace.
        run(Command::Replay {
            mode,
            intensity: 100,
            repo: repo.clone(),
            array: ArrayChoice::Hdd4,
            db: None,
            afap_depth: Some(16),
            loads: vec![],
            workers: 1,
            obs: None,
        })
        .unwrap();
        // A --loads sweep appends one record per level (50 % + the baseline).
        run(Command::Replay {
            mode,
            intensity: 100,
            repo: repo.clone(),
            array: ArrayChoice::Hdd4,
            db: Some(db_path.clone()),
            afap_depth: None,
            loads: vec![50],
            workers: 2,
            obs: None,
        })
        .unwrap();
        let stored = crate::db::Database::load(&db_path).unwrap();
        assert_eq!(stored.len(), 4);
        run(Command::Report { db: db_path.clone() }).unwrap();
        // Replaying a never-collected mode errors cleanly.
        let missing = run(Command::Replay {
            mode: WorkloadMode::peak(512, 0, 0),
            intensity: 100,
            repo: repo.clone(),
            array: ArrayChoice::Hdd4,
            db: None,
            afap_depth: None,
            loads: vec![],
            workers: 1,
            obs: None,
        });
        assert!(missing.is_err());
        assert!(run(Command::Report { db: repo.join("nope.json") }).is_err());
        std::fs::remove_dir_all(&repo).unwrap();
    }

    #[test]
    fn parses_scenario_flags_across_verbs() {
        // sweep --scenario: the file governs everything but --db/--obs.
        let cmd = parse(&argv("sweep --scenario fig08.toml --db /tmp/d.json")).unwrap();
        match &cmd {
            Command::Sweep { repo, scenario, db, .. } => {
                assert_eq!(*repo, None);
                assert_eq!(scenario.as_deref(), Some(std::path::Path::new("fig08.toml")));
                assert!(db.is_some());
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            "sweep --scenario f.toml --repo /tmp/r",
            "sweep --scenario f.toml --workers 4",
            "sweep --scenario f.toml --array hdd4",
            "sweep --scenario f.toml --modes 5",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert!(err.0.contains("conflicts with --scenario"), "{bad}: {err}");
        }
        // serve --scenario replaces --repo and routes to the binary.
        let cmd = parse(&argv("serve --scenario f.toml --workers 2")).unwrap();
        assert!(matches!(&cmd, Command::Serve { repo: None, scenario: Some(_), .. }));
        let err = run(cmd).unwrap_err();
        assert!(err.0.contains("tracer-serve") && err.0.contains("--scenario"), "{err}");
        let err = run(parse(&argv("serve --scenario f.toml")).unwrap()).unwrap_err();
        assert!(err.0.contains("tracer-serve"), "one worker still routes: {err}");
        assert!(parse(&argv("serve --repo /tmp/r --scenario f.toml")).is_err());
        assert!(parse(&argv("serve")).is_err(), "serve needs --repo or --scenario");
        // coordinate --scenario stands alone (local baseline) or with nodes.
        let cmd = parse(&argv("coordinate --scenario f.toml")).unwrap();
        assert!(matches!(&cmd, Command::Coordinate { scenario: Some(_), .. }));
        let cmd = parse(&argv("coordinate --scenario f.toml --nodes 127.0.0.1:7401")).unwrap();
        match &cmd {
            Command::Coordinate { nodes, scenario, .. } => {
                assert_eq!(nodes.len(), 1);
                assert!(scenario.is_some());
            }
            other => panic!("{other:?}"),
        }
        let err = parse(&argv("coordinate --scenario f.toml --rs 4096")).unwrap_err();
        assert!(err.0.contains("conflicts with --scenario"), "{err}");
        let err = parse(&argv("coordinate --scenario f.toml --loads 20,50")).unwrap_err();
        assert!(err.0.contains("conflicts with --scenario"), "{err}");
    }

    #[test]
    fn run_sweep_scenario_end_to_end() {
        let dir = std::env::temp_dir().join(format!("tracer_cli_scn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("smoke.toml");
        std::fs::write(
            &path,
            "[scenario]\nname = \"cli-smoke\"\n[array]\ndevice = \"memoright-slc\"\n\
             layout = \"raid5\"\ndisks = 3\n[workload]\nrs = 4096\nrn = 100\nrd = 100\n\
             seconds = 1\n[sweep]\nloads = [50]\nworkers = 2\n",
        )
        .unwrap();
        let db_path = dir.join("scn_db.json");
        let obs_path = dir.join("scn_obs.jsonl");
        run(Command::Sweep {
            repo: None,
            array: ArrayChoice::Hdd6,
            workers: 1,
            seconds: 10,
            modes: 125,
            db: Some(db_path.clone()),
            obs: Some(obs_path.clone()),
            scenario: Some(path.clone()),
        })
        .unwrap();
        let stored = crate::db::Database::load(&db_path).unwrap();
        assert_eq!(stored.len(), 2, "50 % plus the implied baseline");
        let snapshot = std::fs::read_to_string(&obs_path).unwrap();
        assert!(snapshot.contains("\"scenario.cells\""), "{snapshot}");
        // A broken scenario surfaces a clean error, not a panic.
        let broken = dir.join("broken.toml");
        std::fs::write(&broken, "[scenario]\nname = 5\n").unwrap();
        let err = run(Command::Sweep {
            repo: None,
            array: ArrayChoice::Hdd6,
            workers: 1,
            seconds: 10,
            modes: 125,
            db: None,
            obs: None,
            scenario: Some(broken),
        })
        .unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn usage_mentions_every_command() {
        for verb in [
            "idle",
            "collect",
            "replay",
            "sweep",
            "convert",
            "stats",
            "policies",
            "report",
            "serve",
            "coordinate",
        ] {
            assert!(USAGE.contains(verb), "usage missing {verb}");
        }
    }
}
