//! Control-plane message types and the GUI-protocol parser.
//!
//! The paper's evaluation host talks to the workload generator over TCP
//! ("test control information mainly includes workload modes and I/O
//! intensity levels") and to the power analyzer through a messenger module;
//! a *parser* sits between the GUI's text protocol and the typed messenger
//! protocol, "maintain\[ing\] the consistency between the two protocols"
//! (§III-A1). This module defines the typed commands/reports and a
//! line-oriented text encoding with a round-trippable parser.

use serde::{Deserialize, Serialize};
use std::fmt;
use tracer_replay::PerfSummary;
use tracer_trace::WorkloadMode;

/// Commands the evaluation host issues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HostCommand {
    /// Configure the next test: target device and workload mode (including
    /// load proportion).
    Configure {
        /// Device under test.
        device: String,
        /// Workload-mode vector.
        mode: WorkloadMode,
        /// Inter-arrival intensity in percent (100 = original pacing).
        intensity_pct: u32,
    },
    /// Begin the configured test.
    Start,
    /// Abort the running test.
    Abort,
    /// Initialise the power analyzer with a sampling cycle in milliseconds.
    InitAnalyzer {
        /// Sampling cycle, milliseconds.
        cycle_ms: u64,
    },
    /// Finalise the power measurement.
    FinalizeAnalyzer,
    /// Query stored results for a device.
    Query {
        /// Device whose records are requested.
        device: String,
    },
}

/// Reports flowing back to the host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Report {
    /// Periodic progress from the workload generator.
    Progress {
        /// Seconds since test start.
        at_s: f64,
        /// IOPS over the last cycle.
        iops: f64,
        /// MBPS over the last cycle.
        mbps: f64,
    },
    /// Generator finished; whole-run performance summary.
    Finished {
        /// Performance summary of the run.
        perf: PerfSummary,
    },
    /// Power analyzer sample (watts over the last cycle).
    Power {
        /// Seconds since measurement start.
        at_s: f64,
        /// Mean watts over the cycle.
        watts: f64,
    },
}

/// Parse errors from the GUI text protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol parse error: {}", self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err(reason: impl Into<String>) -> ParseError {
    ParseError { reason: reason.into() }
}

/// Encode a command as one GUI-protocol line.
pub fn format_command(cmd: &HostCommand) -> String {
    match cmd {
        HostCommand::Configure { device, mode, intensity_pct } => format!(
            "configure device={device} rs={} rn={} rd={} load={} intensity={intensity_pct}",
            mode.request_bytes, mode.random_pct, mode.read_pct, mode.load_pct
        ),
        HostCommand::Start => "start".to_string(),
        HostCommand::Abort => "abort".to_string(),
        HostCommand::InitAnalyzer { cycle_ms } => format!("init-analyzer cycle={cycle_ms}"),
        HostCommand::FinalizeAnalyzer => "finalize-analyzer".to_string(),
        HostCommand::Query { device } => format!("query device={device}"),
    }
}

/// Split the words after a verb into a `key=value` map, rejecting duplicate
/// keys and bare words.
fn split_kv<'a>(
    words: impl Iterator<Item = &'a str>,
) -> Result<std::collections::HashMap<&'a str, &'a str>, ParseError> {
    let mut kv = std::collections::HashMap::new();
    for w in words {
        let (k, v) =
            w.split_once('=').ok_or_else(|| err(format!("expected key=value, got {w:?}")))?;
        if kv.insert(k, v).is_some() {
            return Err(err(format!("duplicate key {k:?}")));
        }
    }
    Ok(kv)
}

/// Validate an intensity percentage at the protocol boundary: 0 would divide
/// by zero in the replay timestamp scaler, so it is rejected here rather than
/// panicking deep inside a worker thread.
fn checked_intensity(pct: u32) -> Result<u32, ParseError> {
    if pct == 0 {
        return Err(err("intensity must be positive"));
    }
    Ok(pct)
}

/// Parse the `rs`/`rn`/`rd`/`load` keys into a validated workload mode.
fn mode_from_kv(kv: &std::collections::HashMap<&str, &str>) -> Result<WorkloadMode, ParseError> {
    let num = |k: &str| -> Result<u32, ParseError> {
        kv.get(k)
            .ok_or_else(|| err(format!("missing key {k:?}")))?
            .parse()
            .map_err(|_| err(format!("key {k:?} is not a number")))
    };
    let mode = WorkloadMode {
        request_bytes: num("rs")?,
        random_pct: num("rn")?.try_into().map_err(|_| err("rn out of range"))?,
        read_pct: num("rd")?.try_into().map_err(|_| err("rd out of range"))?,
        load_pct: num("load")?,
    };
    if mode.random_pct > 100 || mode.read_pct > 100 {
        return Err(err("ratios must be 0-100"));
    }
    Ok(mode)
}

/// Parse one GUI-protocol line into a command.
pub fn parse_command(line: &str) -> Result<HostCommand, ParseError> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or_else(|| err("empty command"))?;
    let kv = split_kv(words)?;
    let get = |k: &str| kv.get(k).copied().ok_or_else(|| err(format!("missing key {k:?}")));
    let num = |k: &str| -> Result<u32, ParseError> {
        get(k)?.parse().map_err(|_| err(format!("key {k:?} is not a number")))
    };
    match verb {
        "configure" => Ok(HostCommand::Configure {
            device: get("device")?.to_string(),
            mode: mode_from_kv(&kv)?,
            intensity_pct: if kv.contains_key("intensity") {
                checked_intensity(num("intensity")?)?
            } else {
                100
            },
        }),
        "start" => Ok(HostCommand::Start),
        "abort" => Ok(HostCommand::Abort),
        "init-analyzer" => Ok(HostCommand::InitAnalyzer { cycle_ms: u64::from(num("cycle")?) }),
        "finalize-analyzer" => Ok(HostCommand::FinalizeAnalyzer),
        "query" => Ok(HostCommand::Query { device: get("device")?.to_string() }),
        other => Err(err(format!("unknown verb {other:?}"))),
    }
}

/// Commands of the job-service protocol spoken by the concurrent evaluation
/// service (`tracer-serve`). They reuse the GUI line encoding: one verb plus
/// `key=value` words. Unlike [`HostCommand`], a submission is self-contained —
/// configure + start in one line — so many clients can interleave freely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobCommand {
    /// Enqueue one evaluation (device + workload mode + intensity).
    Submit {
        /// Device under test.
        device: String,
        /// Workload-mode vector, including the load proportion.
        mode: WorkloadMode,
        /// Inter-arrival intensity in percent (100 = original pacing).
        intensity_pct: u32,
        /// Optional label stored with the result (no whitespace). Defaults to
        /// `job-<id>` server-side.
        name: Option<String>,
        /// Scheduling priority (0 = default). Any non-zero priority opts the
        /// job into deferred admission: instead of a flat `err busy`, the
        /// service parks it in the priority queue beyond the strict capacity.
        priority: u8,
        /// Queueing deadline in milliseconds. A job still queued when its
        /// deadline passes expires instead of running.
        deadline_ms: Option<u64>,
    },
    /// Ask the lifecycle state of a job.
    Status {
        /// Job id returned by submit.
        id: u64,
    },
    /// Fetch the efficiency metrics of a finished job.
    Result {
        /// Job id returned by submit.
        id: u64,
    },
    /// Cancel a job that is still queued (running jobs are not interrupted).
    Cancel {
        /// Job id returned by submit.
        id: u64,
    },
    /// Ask for a service-wide snapshot: worker count, queue capacity, and
    /// job counts per lifecycle state.
    Stats,
    /// Liveness probe; the service answers `ok pong`. The fabric coordinator
    /// uses it as the heartbeat for nodes with no work in flight.
    Ping,
    /// Register a serve node with a fabric coordinator (`tracer serve
    /// --join`): the node announces the address clients should dial and its
    /// worker count. Sent *to* a coordinator, never to a serve node.
    Join {
        /// `host:port` the node's job server listens on.
        addr: String,
        /// Worker threads the node runs.
        workers: usize,
    },
}

/// Encode a job command as one protocol line.
pub fn format_job_command(cmd: &JobCommand) -> String {
    match cmd {
        JobCommand::Submit { device, mode, intensity_pct, name, priority, deadline_ms } => {
            let mut line = format!(
                "submit device={device} rs={} rn={} rd={} load={} intensity={intensity_pct}",
                mode.request_bytes, mode.random_pct, mode.read_pct, mode.load_pct
            );
            if let Some(name) = name {
                line.push_str(" name=");
                line.push_str(name);
            }
            if *priority > 0 {
                line.push_str(&format!(" priority={priority}"));
            }
            if let Some(ms) = deadline_ms {
                line.push_str(&format!(" deadline_ms={ms}"));
            }
            line
        }
        JobCommand::Status { id } => format!("status id={id}"),
        JobCommand::Result { id } => format!("result id={id}"),
        JobCommand::Cancel { id } => format!("cancel id={id}"),
        JobCommand::Stats => "stats".to_string(),
        JobCommand::Ping => "ping".to_string(),
        JobCommand::Join { addr, workers } => format!("join addr={addr} workers={workers}"),
    }
}

/// Parse one job-service line into a command.
pub fn parse_job_command(line: &str) -> Result<JobCommand, ParseError> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or_else(|| err("empty command"))?;
    let kv = split_kv(words)?;
    let get = |k: &str| kv.get(k).copied().ok_or_else(|| err(format!("missing key {k:?}")));
    let id = || -> Result<u64, ParseError> {
        get("id")?.parse().map_err(|_| err("key \"id\" is not a number"))
    };
    match verb {
        "submit" => Ok(JobCommand::Submit {
            device: get("device")?.to_string(),
            mode: mode_from_kv(&kv)?,
            intensity_pct: match kv.get("intensity") {
                Some(v) => checked_intensity(
                    v.parse().map_err(|_| err("key \"intensity\" is not a number"))?,
                )?,
                None => 100,
            },
            name: kv.get("name").map(|s| s.to_string()),
            priority: match kv.get("priority") {
                Some(v) => v.parse().map_err(|_| err("key \"priority\" must be 0-255"))?,
                None => 0,
            },
            deadline_ms: match kv.get("deadline_ms") {
                Some(v) => Some(v.parse().map_err(|_| err("key \"deadline_ms\" is not a number"))?),
                None => None,
            },
        }),
        "status" => Ok(JobCommand::Status { id: id()? }),
        "result" => Ok(JobCommand::Result { id: id()? }),
        "cancel" => Ok(JobCommand::Cancel { id: id()? }),
        "stats" => Ok(JobCommand::Stats),
        "ping" => Ok(JobCommand::Ping),
        "join" => Ok(JobCommand::Join {
            addr: get("addr")?.to_string(),
            workers: get("workers")?.parse().map_err(|_| err("key \"workers\" is not a number"))?,
        }),
        other => Err(err(format!("unknown verb {other:?}"))),
    }
}

/// A parsed `ok …` / `err …` response line of the wire protocols.
///
/// `head` collects the bare words after the status token (`"submitted"`,
/// `"busy"`, free-form error text); `fields` collects the `key=value` words.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// `true` for `ok` lines, `false` for `err` lines.
    pub ok: bool,
    /// Bare words after the status token, joined by single spaces.
    pub head: String,
    /// All `key=value` words (later duplicates win; servers control the line).
    pub fields: std::collections::HashMap<String, String>,
}

impl Reply {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// Field parsed as `f64`.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.field(key)?.parse().ok()
    }

    /// The `id=` field parsed as a job/record id.
    pub fn id(&self) -> Option<u64> {
        self.field("id")?.parse().ok()
    }
}

/// Parse a response line (`ok …` or `err …`) into its parts.
pub fn parse_reply(line: &str) -> Result<Reply, ParseError> {
    let mut words = line.split_whitespace();
    let status = words.next().ok_or_else(|| err("empty reply"))?;
    let ok = match status {
        "ok" => true,
        "err" => false,
        other => return Err(err(format!("reply must start with ok/err, got {other:?}"))),
    };
    let mut head: Vec<&str> = Vec::new();
    let mut fields = std::collections::HashMap::new();
    for w in words {
        match w.split_once('=') {
            Some((k, v)) => {
                fields.insert(k.to_string(), v.to_string());
            }
            None => head.push(w),
        }
    }
    Ok(Reply { ok, head: head.join(" "), fields })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_commands() {
        let cmds = vec![
            HostCommand::Configure {
                device: "raid5-hdd6".into(),
                mode: WorkloadMode::peak(4096, 50, 0).at_load(30),
                intensity_pct: 200,
            },
            HostCommand::Start,
            HostCommand::Abort,
            HostCommand::InitAnalyzer { cycle_ms: 1000 },
            HostCommand::FinalizeAnalyzer,
            HostCommand::Query { device: "ssd".into() },
        ];
        for cmd in cmds {
            let line = format_command(&cmd);
            let back = parse_command(&line).unwrap();
            assert_eq!(back, cmd, "line {line:?}");
        }
    }

    #[test]
    fn intensity_defaults_to_100() {
        let cmd = parse_command("configure device=d rs=512 rn=0 rd=100 load=50").unwrap();
        assert!(matches!(cmd, HostCommand::Configure { intensity_pct: 100, .. }));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "dance",
            "configure device=d rs=512 rn=0 rd=100", // missing load
            "configure device=d rs=512 rn=0 rd=100 load=x", // non-numeric
            "configure device=d rs=512 rn=200 rd=0 load=10", // ratio > 100
            "configure device=d rs=512 rn=0 rn=1 rd=0 load=1", // duplicate key
            "configure device=d rs=512 rn=0 rd=100 load=50 intensity=0", // zero intensity
            "init-analyzer",                         // missing cycle
            "query",                                 // missing device
            "configure device",                      // not key=value
        ] {
            assert!(parse_command(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn zero_intensity_is_rejected_with_a_clear_reason() {
        for line in [
            "configure device=d rs=512 rn=0 rd=100 load=50 intensity=0",
            "submit device=d rs=512 rn=0 rd=100 load=50 intensity=0",
        ] {
            let e = if line.starts_with("configure") {
                parse_command(line).unwrap_err()
            } else {
                parse_job_command(line).unwrap_err()
            };
            assert!(e.reason.contains("intensity must be positive"), "{line}: {e}");
        }
    }

    #[test]
    fn parse_error_displays() {
        let e = parse_command("blah").unwrap_err();
        assert!(e.to_string().contains("unknown verb"));
    }

    #[test]
    fn round_trip_all_job_commands() {
        let cmds = vec![
            JobCommand::Submit {
                device: "raid5-hdd6".into(),
                mode: WorkloadMode::peak(8192, 50, 100).at_load(40),
                intensity_pct: 150,
                name: Some("sweep-40".into()),
                priority: 0,
                deadline_ms: None,
            },
            JobCommand::Submit {
                device: "ssd".into(),
                mode: WorkloadMode::peak(512, 0, 0),
                intensity_pct: 100,
                name: None,
                priority: 0,
                deadline_ms: None,
            },
            JobCommand::Submit {
                device: "raid5-hdd4".into(),
                mode: WorkloadMode::peak(4096, 0, 100).at_load(10),
                intensity_pct: 100,
                name: Some("urgent".into()),
                priority: 9,
                deadline_ms: Some(2_500),
            },
            JobCommand::Status { id: 7 },
            JobCommand::Result { id: 0 },
            JobCommand::Cancel { id: u64::MAX },
            JobCommand::Stats,
            JobCommand::Ping,
            JobCommand::Join { addr: "127.0.0.1:7401".into(), workers: 4 },
        ];
        for cmd in cmds {
            let line = format_job_command(&cmd);
            let back = parse_job_command(&line).unwrap();
            assert_eq!(back, cmd, "line {line:?}");
        }
    }

    #[test]
    fn job_submit_intensity_defaults_to_100() {
        let cmd = parse_job_command("submit device=d rs=4096 rn=50 rd=100 load=30").unwrap();
        assert!(matches!(
            cmd,
            JobCommand::Submit {
                intensity_pct: 100,
                name: None,
                priority: 0,
                deadline_ms: None,
                ..
            }
        ));
    }

    #[test]
    fn job_submit_priority_and_deadline_are_optional_keys() {
        let cmd = parse_job_command(
            "submit device=d rs=4096 rn=50 rd=100 load=30 priority=3 deadline_ms=750",
        )
        .unwrap();
        assert!(matches!(cmd, JobCommand::Submit { priority: 3, deadline_ms: Some(750), .. }));
        // Out-of-range priorities are protocol errors, not silent truncation.
        assert!(
            parse_job_command("submit device=d rs=4096 rn=0 rd=0 load=10 priority=300").is_err()
        );
        assert!(parse_job_command("submit device=d rs=4096 rn=0 rd=0 load=10 deadline_ms=soon")
            .is_err());
    }

    #[test]
    fn job_parse_rejects_malformed_lines() {
        for bad in [
            "",
            "launch id=1",                                          // unknown verb
            "submit device=d rs=512 rn=0 rd=100",                   // missing load
            "submit device=d rs=x rn=0 rd=100 load=50",             // non-numeric
            "submit device=d rs=512 rn=101 rd=0 load=50",           // ratio > 100
            "submit rs=512 rn=0 rd=0 load=50",                      // missing device
            "submit device=d rs=512 rs=9 rn=0 rd=0 load=1",         // duplicate key
            "submit device=d rs=512 rn=0 rd=0 load=50 intensity=0", // zero intensity
            "status",                                               // missing id
            "status id=abc",                                        // non-numeric id
            "result id=-3",                                         // negative id
            "cancel job 4",                                         // bare words
            "join addr=127.0.0.1:1",                                // missing workers
            "join workers=2",                                       // missing addr
            "join addr=h:1 workers=two",                            // non-numeric
        ] {
            assert!(parse_job_command(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn replies_parse_into_head_and_fields() {
        let r = parse_reply("ok submitted id=12").unwrap();
        assert!(r.ok);
        assert_eq!(r.head, "submitted");
        assert_eq!(r.id(), Some(12));

        let r = parse_reply("err busy queue=4").unwrap();
        assert!(!r.ok);
        assert_eq!(r.head, "busy");
        assert_eq!(r.num("queue"), Some(4.0));

        let r = parse_reply("ok result id=3 iops=1523.25 iops_per_watt=37.5").unwrap();
        assert_eq!(r.num("iops"), Some(1523.25));
        assert_eq!(r.num("iops_per_watt"), Some(37.5));
        assert_eq!(r.num("nope"), None);

        // Free-form error text survives as the head.
        let r = parse_reply("err no trace for that mode").unwrap();
        assert_eq!(r.head, "no trace for that mode");

        assert!(parse_reply("").is_err());
        assert!(parse_reply("ready id=1").is_err(), "must start with ok/err");
    }
}
