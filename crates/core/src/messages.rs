//! Control-plane message types and the GUI-protocol parser.
//!
//! The paper's evaluation host talks to the workload generator over TCP
//! ("test control information mainly includes workload modes and I/O
//! intensity levels") and to the power analyzer through a messenger module;
//! a *parser* sits between the GUI's text protocol and the typed messenger
//! protocol, "maintain\[ing\] the consistency between the two protocols"
//! (§III-A1). This module defines the typed commands/reports and a
//! line-oriented text encoding with a round-trippable parser.

use serde::{Deserialize, Serialize};
use std::fmt;
use tracer_replay::PerfSummary;
use tracer_trace::WorkloadMode;

/// Commands the evaluation host issues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HostCommand {
    /// Configure the next test: target device and workload mode (including
    /// load proportion).
    Configure {
        /// Device under test.
        device: String,
        /// Workload-mode vector.
        mode: WorkloadMode,
        /// Inter-arrival intensity in percent (100 = original pacing).
        intensity_pct: u32,
    },
    /// Begin the configured test.
    Start,
    /// Abort the running test.
    Abort,
    /// Initialise the power analyzer with a sampling cycle in milliseconds.
    InitAnalyzer {
        /// Sampling cycle, milliseconds.
        cycle_ms: u64,
    },
    /// Finalise the power measurement.
    FinalizeAnalyzer,
    /// Query stored results for a device.
    Query {
        /// Device whose records are requested.
        device: String,
    },
}

/// Reports flowing back to the host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Report {
    /// Periodic progress from the workload generator.
    Progress {
        /// Seconds since test start.
        at_s: f64,
        /// IOPS over the last cycle.
        iops: f64,
        /// MBPS over the last cycle.
        mbps: f64,
    },
    /// Generator finished; whole-run performance summary.
    Finished {
        /// Performance summary of the run.
        perf: PerfSummary,
    },
    /// Power analyzer sample (watts over the last cycle).
    Power {
        /// Seconds since measurement start.
        at_s: f64,
        /// Mean watts over the cycle.
        watts: f64,
    },
}

/// Parse errors from the GUI text protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol parse error: {}", self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err(reason: impl Into<String>) -> ParseError {
    ParseError { reason: reason.into() }
}

/// Encode a command as one GUI-protocol line.
pub fn format_command(cmd: &HostCommand) -> String {
    match cmd {
        HostCommand::Configure { device, mode, intensity_pct } => format!(
            "configure device={device} rs={} rn={} rd={} load={} intensity={intensity_pct}",
            mode.request_bytes, mode.random_pct, mode.read_pct, mode.load_pct
        ),
        HostCommand::Start => "start".to_string(),
        HostCommand::Abort => "abort".to_string(),
        HostCommand::InitAnalyzer { cycle_ms } => format!("init-analyzer cycle={cycle_ms}"),
        HostCommand::FinalizeAnalyzer => "finalize-analyzer".to_string(),
        HostCommand::Query { device } => format!("query device={device}"),
    }
}

/// Parse one GUI-protocol line into a command.
pub fn parse_command(line: &str) -> Result<HostCommand, ParseError> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or_else(|| err("empty command"))?;
    let mut kv = std::collections::HashMap::new();
    for w in words {
        let (k, v) = w.split_once('=').ok_or_else(|| err(format!("expected key=value, got {w:?}")))?;
        if kv.insert(k, v).is_some() {
            return Err(err(format!("duplicate key {k:?}")));
        }
    }
    let get = |k: &str| kv.get(k).copied().ok_or_else(|| err(format!("missing key {k:?}")));
    let num = |k: &str| -> Result<u32, ParseError> {
        get(k)?.parse().map_err(|_| err(format!("key {k:?} is not a number")))
    };
    match verb {
        "configure" => {
            let mode = WorkloadMode {
                request_bytes: num("rs")?,
                random_pct: num("rn")?.try_into().map_err(|_| err("rn out of range"))?,
                read_pct: num("rd")?.try_into().map_err(|_| err("rd out of range"))?,
                load_pct: num("load")?,
            };
            if mode.random_pct > 100 || mode.read_pct > 100 {
                return Err(err("ratios must be 0-100"));
            }
            Ok(HostCommand::Configure {
                device: get("device")?.to_string(),
                mode,
                intensity_pct: if kv.contains_key("intensity") { num("intensity")? } else { 100 },
            })
        }
        "start" => Ok(HostCommand::Start),
        "abort" => Ok(HostCommand::Abort),
        "init-analyzer" => Ok(HostCommand::InitAnalyzer { cycle_ms: u64::from(num("cycle")?) }),
        "finalize-analyzer" => Ok(HostCommand::FinalizeAnalyzer),
        "query" => Ok(HostCommand::Query { device: get("device")?.to_string() }),
        other => Err(err(format!("unknown verb {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_commands() {
        let cmds = vec![
            HostCommand::Configure {
                device: "raid5-hdd6".into(),
                mode: WorkloadMode::peak(4096, 50, 0).at_load(30),
                intensity_pct: 200,
            },
            HostCommand::Start,
            HostCommand::Abort,
            HostCommand::InitAnalyzer { cycle_ms: 1000 },
            HostCommand::FinalizeAnalyzer,
            HostCommand::Query { device: "ssd".into() },
        ];
        for cmd in cmds {
            let line = format_command(&cmd);
            let back = parse_command(&line).unwrap();
            assert_eq!(back, cmd, "line {line:?}");
        }
    }

    #[test]
    fn intensity_defaults_to_100() {
        let cmd = parse_command("configure device=d rs=512 rn=0 rd=100 load=50").unwrap();
        assert!(matches!(cmd, HostCommand::Configure { intensity_pct: 100, .. }));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "dance",
            "configure device=d rs=512 rn=0 rd=100",          // missing load
            "configure device=d rs=512 rn=0 rd=100 load=x",   // non-numeric
            "configure device=d rs=512 rn=200 rd=0 load=10",  // ratio > 100
            "configure device=d rs=512 rn=0 rn=1 rd=0 load=1", // duplicate key
            "init-analyzer",                                   // missing cycle
            "query",                                           // missing device
            "configure device",                                // not key=value
        ] {
            assert!(parse_command(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_error_displays() {
        let e = parse_command("blah").unwrap_err();
        assert!(e.to_string().contains("unknown verb"));
    }
}
