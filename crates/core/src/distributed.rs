//! Distributed evaluation: multiple arrays measured in parallel.
//!
//! §III-C of the paper deploys TRACER across an FC-SAN: several workload
//! generators drive several storage systems while "multi-channel power
//! analyzers … monitor power dissipation in multiple storage devices in
//! parallel". Here each job (array + trace + mode) runs on its own thread;
//! when all finish, one multi-channel [`PowerAnalyzer`] produces the
//! per-system energy reports and everything is merged into the shared
//! database.

use crate::db::{PowerData, TestRecord};
use crate::executor::SweepExecutor;
use crate::host::EvaluationHost;
use crate::metrics::EfficiencyMetrics;
use std::sync::Mutex;
use tracer_power::{Channel, PowerAnalyzer};
use tracer_replay::{replay, LoadControl, PerfSummary, ReplayConfig};
use tracer_sim::{ArrayPowerLog, ArraySim, SimTime};
use tracer_trace::{TraceHandle, WorkloadMode};

/// One evaluation job: a storage system plus the workload to replay on it.
pub struct EvaluationJob {
    /// Job name (becomes the record label).
    pub name: String,
    /// Builds the array under test (runs on the worker thread).
    pub build: Box<dyn FnOnce() -> ArraySim + Send>,
    /// The trace to replay, shared: many jobs over the same trace hold one
    /// copy (decoded or mmap-backed), and the replay path reads it without
    /// materializing a clone.
    pub trace: TraceHandle,
    /// Workload mode (its load proportion applies).
    pub mode: WorkloadMode,
    /// Inter-arrival intensity, percent.
    pub intensity_pct: u32,
}

impl EvaluationJob {
    /// Job at original pacing. Accepts an owned `Trace`, a pre-shared
    /// `Arc<Trace>` (e.g. from [`tracer_trace::TraceRepository::load_shared`]),
    /// or a [`TraceHandle`] from
    /// [`tracer_trace::TraceRepository::load_view`], whose v3 views replay
    /// straight off the mapped file.
    pub fn new(
        name: impl Into<String>,
        build: impl FnOnce() -> ArraySim + Send + 'static,
        trace: impl Into<TraceHandle>,
        mode: WorkloadMode,
    ) -> Self {
        Self {
            name: name.into(),
            build: Box::new(build),
            trace: trace.into(),
            mode,
            intensity_pct: 100,
        }
    }
}

struct JobResult {
    name: String,
    device: String,
    mode: WorkloadMode,
    perf: PerfSummary,
    log: ArrayPowerLog,
    window: (SimTime, SimTime),
}

/// Run all jobs in parallel (one worker per core), measure each on its own
/// analyzer channel, and store one record per job in `host`'s database.
/// Returns the record ids in job order.
pub fn run_parallel(host: &mut EvaluationHost, jobs: Vec<EvaluationJob>) -> Vec<u64> {
    crate::orchestrate::SweepBuilder::new().executor(SweepExecutor::auto()).jobs(host, jobs)
}

/// [`run_parallel`] on an explicit executor: the jobs are fanned out over a
/// *bounded* worker pool instead of one thread per job, so a fleet of
/// hundreds of systems does not oversubscribe the machine. Records are still
/// inserted in job order regardless of completion order.
#[deprecated(since = "0.1.0", note = "use `SweepBuilder::new().executor(*exec).jobs(host, jobs)`")]
pub fn run_parallel_with(
    host: &mut EvaluationHost,
    exec: &SweepExecutor,
    jobs: Vec<EvaluationJob>,
) -> Vec<u64> {
    crate::orchestrate::SweepBuilder::new().executor(*exec).jobs(host, jobs)
}

/// The fan-out/merge implementation behind
/// [`SweepBuilder::jobs`](crate::orchestrate::SweepBuilder::jobs).
/// `progress` fires on the caller's thread per completed job.
pub(crate) fn run_parallel_impl(
    host: &mut EvaluationHost,
    exec: &SweepExecutor,
    jobs: Vec<EvaluationJob>,
    progress: &mut dyn FnMut(usize, usize),
) -> Vec<u64> {
    if jobs.is_empty() {
        return Vec::new();
    }
    // Simulated time is per-array, so every job replays over its own clock;
    // the analyzer channels share the measurement window [0, max_end).
    // Each job is taken out of its slot exactly once, by whichever worker
    // claims that index (the build closure is FnOnce).
    let slots: Vec<Mutex<Option<EvaluationJob>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let total = slots.len();
    let mut done = 0usize;
    let results: Vec<JobResult> = exec.run_indexed(
        slots.len(),
        |i| {
            let job = slots[i].lock().unwrap().take().expect("job claimed once");
            let mut sim = (job.build)();
            let cfg = ReplayConfig {
                load: LoadControl {
                    proportion_pct: job.mode.load_pct,
                    intensity_pct: job.intensity_pct,
                },
                ..Default::default()
            };
            let report = replay(&mut sim, &job.trace, &cfg);
            JobResult {
                name: job.name,
                device: sim.config().name.clone(),
                mode: job.mode,
                perf: report.summary,
                window: (report.started, report.finished),
                log: sim.power_log().clone(),
            }
        },
        |_| {
            done += 1;
            progress(done, total);
        },
    );

    // One multi-channel analyzer finalizes every system at once.
    let mut analyzer = PowerAnalyzer::new();
    for r in &results {
        analyzer.add_channel(Channel::ac_220v(r.device.clone()));
    }
    analyzer.start(SimTime::ZERO);
    let max_end = results
        .iter()
        .map(|r| r.window.1)
        .max()
        .filter(|t| *t > SimTime::ZERO)
        .unwrap_or(SimTime::from_secs(1));
    let logs: Vec<&ArrayPowerLog> = results.iter().map(|r| &r.log).collect();
    let energy_reports = analyzer.finalize(max_end, &logs);

    results
        .into_iter()
        .zip(energy_reports)
        .map(|(r, energy)| {
            // Efficiency uses each job's own replay window for power, so jobs
            // of different lengths are not diluted by the shared window.
            let own = tracer_power::PowerAnalyzer::measure_window(
                &r.log,
                r.window.0,
                r.window.1.max(r.window.0 + tracer_sim::SimDuration::from_nanos(1)),
            );
            let metrics = EfficiencyMetrics::from_parts(&r.perf, &own);
            let record = TestRecord {
                id: 0,
                label: r.name,
                device: r.device,
                mode: r.mode,
                power: PowerData {
                    volts: 220.0,
                    avg_amps: metrics.avg_watts / 220.0,
                    avg_watts: metrics.avg_watts,
                    energy_joules: energy.exact_joules,
                },
                perf: r.perf,
                efficiency: metrics,
            };
            host.db.insert(record)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer_sim::ArraySpec;
    use tracer_trace::{Bunch, IoPackage, Trace};

    fn trace(n: usize) -> Trace {
        Trace::from_bunches(
            "t",
            (0..n)
                .map(|i| {
                    Bunch::new(
                        i as u64 * 10_000_000,
                        vec![IoPackage::read((i as u64 * 997) % 100_000, 8192)],
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn parallel_jobs_store_one_record_each() {
        let mut host = EvaluationHost::new();
        let jobs = vec![
            EvaluationJob::new(
                "hdd-job",
                || ArraySpec::hdd_raid5(4).build(),
                trace(50),
                WorkloadMode::peak(8192, 50, 100),
            ),
            EvaluationJob::new(
                "ssd-job",
                || ArraySpec::ssd_raid5(4).build(),
                trace(50),
                WorkloadMode::peak(8192, 50, 100),
            ),
            EvaluationJob::new(
                "hdd-half",
                || ArraySpec::hdd_raid5(4).build(),
                trace(50),
                WorkloadMode::peak(8192, 50, 100).at_load(50),
            ),
        ];
        let ids = run_parallel(&mut host, jobs);
        assert_eq!(ids.len(), 3);
        assert_eq!(host.db.len(), 3);
        let hdd = host.db.get(ids[0]).unwrap();
        let ssd = host.db.get(ids[1]).unwrap();
        let half = host.db.get(ids[2]).unwrap();
        assert_eq!(hdd.perf.total_ios, 50);
        assert_eq!(ssd.perf.total_ios, 50);
        assert_eq!(half.perf.total_ios, 25);
        // The SSD array idles lower than the HDD array.
        assert!(ssd.efficiency.avg_watts < hdd.efficiency.avg_watts);
    }

    #[test]
    fn parallel_matches_sequential_results() {
        // Determinism: the same job run on a thread or inline must agree.
        let mut host = EvaluationHost::new();
        let ids = run_parallel(
            &mut host,
            vec![EvaluationJob::new(
                "par",
                || ArraySpec::hdd_raid5(4).build(),
                trace(30),
                WorkloadMode::peak(8192, 50, 100),
            )],
        );
        let par = host.db.get(ids[0]).unwrap().clone();

        let mut host2 = EvaluationHost::new();
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let seq = host2.commit(EvaluationHost::measure_test(
            host2.meter_cycle_ms,
            &mut sim,
            &trace(30),
            WorkloadMode::peak(8192, 50, 100),
            100,
            "seq",
        ));
        assert_eq!(par.perf.total_ios, seq.report.summary.total_ios);
        assert!((par.efficiency.iops - seq.metrics.iops).abs() < 1e-9);
        assert!((par.efficiency.avg_watts - seq.metrics.avg_watts).abs() < 1e-9);
    }

    #[test]
    #[allow(deprecated)] // the shim's equivalence to the wide pool stays asserted
    fn bounded_pool_matches_one_thread_per_job() {
        let make_jobs = || {
            (0..6)
                .map(|i| {
                    EvaluationJob::new(
                        format!("job{i}"),
                        || ArraySpec::hdd_raid5(4).build(),
                        trace(20 + 3 * i),
                        WorkloadMode::peak(8192, 50, 100),
                    )
                })
                .collect::<Vec<_>>()
        };
        let mut wide = EvaluationHost::new();
        run_parallel(&mut wide, make_jobs());
        let mut bounded = EvaluationHost::new();
        run_parallel_with(&mut bounded, &SweepExecutor::new(2), make_jobs());
        assert_eq!(wide.db.records(), bounded.db.records());
    }

    #[test]
    fn empty_job_list() {
        let mut host = EvaluationHost::new();
        assert!(run_parallel(&mut host, vec![]).is_empty());
        assert!(host.db.is_empty());
    }
}
