//! The parallel sweep executor: bounded scoped-thread fan-out with a
//! deterministic merge.
//!
//! The paper's whole evaluation is sweep-shaped — every trace replayed "ten
//! times with load proportions varied from 10 % to 100 %", and the synthetic
//! campaign is 125 modes × 10 loads = 1,250 independent simulations. Each
//! cell builds a fresh [`tracer_sim::ArraySim`] and replays into it, so cells
//! share no state and can run on any core; what must stay serial is the
//! *merge*: database record ids are assigned in cell order, after the fan-out,
//! so the parallel path is bit-identical to the serial one.
//!
//! [`SweepExecutor::run_indexed`] is the primitive: run `n` independent jobs
//! on a bounded pool of scoped worker threads (the worker-pool pattern of
//! `tracer-serve`, without the long-lived service), stream completions back
//! to the caller's thread for progress reporting, and return the results in
//! index order regardless of completion order.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A bounded pool of scoped worker threads for independent sweep cells.
///
/// `workers == 1` is the serial path: jobs run inline on the caller's thread,
/// in index order, with no thread machinery at all. `workers > 1` fans out on
/// `std::thread::scope`. Either way [`SweepExecutor::run_indexed`] returns
/// results in index order, so callers merge deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepExecutor {
    workers: usize,
}

impl Default for SweepExecutor {
    fn default() -> Self {
        Self::auto()
    }
}

impl SweepExecutor {
    /// Executor with an explicit worker count; `0` means "one per core"
    /// (the CLI's `--workers 0` convention).
    pub fn new(workers: usize) -> Self {
        if workers == 0 {
            Self::auto()
        } else {
            Self { workers }
        }
    }

    /// The serial executor: everything runs inline on the caller's thread.
    pub fn serial() -> Self {
        Self { workers: 1 }
    }

    /// One worker per available core.
    pub fn auto() -> Self {
        let workers = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        Self { workers }
    }

    /// The configured worker count (at least 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether this executor runs cells inline instead of spawning workers.
    pub fn is_serial(&self) -> bool {
        self.workers <= 1
    }

    /// Run `n` independent jobs and return their results in index order.
    ///
    /// `job(i)` computes cell `i`; it must not depend on any other cell.
    /// `on_done(i)` fires on the caller's thread once cell `i` has finished
    /// (in completion order, which under parallelism is nondeterministic —
    /// use it for progress only, never for results).
    ///
    /// A panicking job propagates to the caller after the surviving workers
    /// drain their claimed cells.
    pub fn run_indexed<R, F, D>(&self, n: usize, job: F, mut on_done: D) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        D: FnMut(usize),
    {
        // Instrumentation is sampled once per fan-out: when disabled the hot
        // loop pays one atomic load here and nothing per cell.
        let obs_on = tracer_obs::enabled();
        let cell_ns = obs_on.then(|| tracer_obs::histogram("executor.cell_ns"));

        if self.is_serial() || n <= 1 {
            let out = (0..n)
                .map(|i| {
                    let started = cell_ns.map(|_| std::time::Instant::now());
                    let r = job(i);
                    if let (Some(hist), Some(t0)) = (cell_ns, started) {
                        hist.record(t0.elapsed().as_nanos() as u64);
                    }
                    on_done(i);
                    r
                })
                .collect();
            if obs_on && n > 0 {
                tracer_obs::counter("executor.cells_claimed").add(n as u64);
                tracer_obs::counter("executor.worker0.claims").add(n as u64);
            }
            return out;
        }

        let next = AtomicUsize::new(0);
        let next = &next;
        let job = &job;
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers.min(n))
                .map(|w| {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        // Per-worker tallies publish once at loop exit, so
                        // claim accounting costs nothing per cell.
                        let mut claims = 0u64;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let started = cell_ns.map(|_| std::time::Instant::now());
                            let r = job(i);
                            if let (Some(hist), Some(t0)) = (cell_ns, started) {
                                hist.record(t0.elapsed().as_nanos() as u64);
                            }
                            claims += 1;
                            // A send can only fail if the receiver is gone, which
                            // means a sibling panicked and the scope is unwinding.
                            if tx.send((i, r)).is_err() {
                                break;
                            }
                        }
                        if obs_on && claims > 0 {
                            tracer_obs::counter("executor.cells_claimed").add(claims);
                            tracer_obs::counter(&format!("executor.worker{w}.claims")).add(claims);
                        }
                    })
                })
                .collect();
            drop(tx);

            let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for (i, r) in rx {
                slots[i] = Some(r);
                on_done(i);
            }
            // The channel closed: every worker exited. Surface any panic
            // before touching the slots so the original payload wins.
            for handle in handles {
                if let Err(panic) = handle.join() {
                    std::panic::resume_unwind(panic);
                }
            }
            slots.into_iter().map(|r| r.expect("every cell completed")).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 8] {
            let exec = SweepExecutor::new(workers);
            let out = exec.run_indexed(50, |i| i * 3, |_| {});
            assert_eq!(out, (0..50).map(|i| i * 3).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn on_done_fires_once_per_cell() {
        let exec = SweepExecutor::new(4);
        let mut seen = [false; 32];
        exec.run_indexed(32, |i| i, |i| seen[i] = true);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let exec = SweepExecutor::new(3);
        exec.run_indexed(
            100,
            |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            },
            |_| {},
        );
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_workers_means_auto_and_zero_jobs_is_empty() {
        assert!(SweepExecutor::new(0).workers() >= 1);
        assert!(SweepExecutor::serial().is_serial());
        assert!(!SweepExecutor::new(2).is_serial());
        let out: Vec<u32> = SweepExecutor::new(4).run_indexed(0, |_| 7, |_| {});
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let exec = SweepExecutor::new(2);
        let result = std::panic::catch_unwind(|| {
            exec.run_indexed(8, |i| if i == 5 { panic!("cell exploded") } else { i }, |_| {})
        });
        let err = result.expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "cell exploded");
    }

    #[test]
    fn obs_accounts_claims_and_cell_timings_when_enabled() {
        // Sibling tests may also fan out while obs is on, so assert floors,
        // not exact counts.
        tracer_obs::enable();
        let before = tracer_obs::counter("executor.cells_claimed").value();
        let hist_before = tracer_obs::histogram("executor.cell_ns").snapshot().count;
        SweepExecutor::new(3).run_indexed(20, |i| i, |_| {});
        SweepExecutor::serial().run_indexed(5, |i| i, |_| {});
        tracer_obs::disable();
        assert!(tracer_obs::counter("executor.cells_claimed").value() >= before + 25);
        assert!(tracer_obs::histogram("executor.cell_ns").snapshot().count >= hist_before + 25);
        assert!(tracer_obs::counter("executor.worker0.claims").value() >= 5);
    }

    #[test]
    fn serial_executor_preserves_strict_order_of_side_effects() {
        let exec = SweepExecutor::serial();
        let mut order = Vec::new();
        let log = std::sync::Mutex::new(Vec::new());
        exec.run_indexed(10, |i| log.lock().unwrap().push(i), |i| order.push(i));
        assert_eq!(*log.lock().unwrap(), (0..10).collect::<Vec<_>>());
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}
