//! Human-readable reports over the results database.
//!
//! The paper's users "send queries to the database to access results after
//! the testing processes are done" (§III-A1); this module renders those
//! queries as markdown — a per-device efficiency table grouped by workload
//! mode and sorted by load proportion, plus a cross-device summary — for
//! lab notebooks, CI artifacts, and the `tracer report` command.
#![doc = "tracer-invariant: deterministic"]

use crate::db::{Database, TestRecord};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Markdown efficiency table for one device: one row per record, grouped by
/// workload mode, ordered by (mode, load proportion).
pub fn device_table(db: &Database, device: &str) -> String {
    let mut records: Vec<&TestRecord> = db.query(|r| r.device == device);
    records.sort_by_key(|r| {
        (r.mode.request_bytes, r.mode.random_pct, r.mode.read_pct, r.mode.load_pct)
    });
    let mut out = String::new();
    let _ = writeln!(out, "### {device}\n");
    let _ = writeln!(
        out,
        "| size B | rnd % | rd % | load % | IOPS | MBPS | avg ms | watts | IOPS/W | MBPS/kW |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for r in records {
        let e = &r.efficiency;
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.1} | {:.2} | {:.2} | {:.2} | {:.3} | {:.1} |",
            r.mode.request_bytes,
            r.mode.random_pct,
            r.mode.read_pct,
            r.mode.load_pct,
            e.iops,
            e.mbps,
            e.avg_response_ms,
            e.avg_watts,
            e.iops_per_watt,
            e.mbps_per_kilowatt,
        );
    }
    out
}

/// Cross-device summary: record counts and each device's best efficiency.
pub fn summary(db: &Database) -> String {
    let devices: BTreeSet<&str> = db.records().iter().map(|r| r.device.as_str()).collect();
    let mut out = String::new();
    let _ = writeln!(out, "## TRACER results — {} records\n", db.len());
    let _ = writeln!(out, "| device | records | best IOPS/W | best MBPS/kW | max watts |");
    let _ = writeln!(out, "|---|---:|---:|---:|---:|");
    for device in devices {
        let recs = db.query(|r| r.device == device);
        let best_ipw = recs.iter().map(|r| r.efficiency.iops_per_watt).fold(0.0, f64::max);
        let best_mpk = recs.iter().map(|r| r.efficiency.mbps_per_kilowatt).fold(0.0, f64::max);
        let max_w = recs.iter().map(|r| r.efficiency.avg_watts).fold(0.0, f64::max);
        let _ = writeln!(
            out,
            "| {device} | {} | {best_ipw:.3} | {best_mpk:.1} | {max_w:.2} |",
            recs.len()
        );
    }
    out
}

/// The full markdown report: summary plus one table per device.
pub fn markdown(db: &Database) -> String {
    let mut out = summary(db);
    out.push('\n');
    let devices: BTreeSet<String> = db.records().iter().map(|r| r.device.clone()).collect();
    for device in devices {
        out.push_str(&device_table(db, &device));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::PowerData;
    use crate::metrics::EfficiencyMetrics;
    use tracer_trace::WorkloadMode;

    fn db_with(entries: &[(&str, u32, f64)]) -> Database {
        let mut db = Database::new();
        for &(device, load, iops) in entries {
            db.insert(TestRecord {
                id: 0,
                label: "t".into(),
                device: device.into(),
                mode: WorkloadMode::peak(4096, 50, 0).at_load(load),
                power: PowerData {
                    volts: 220.0,
                    avg_amps: 0.2,
                    avg_watts: 44.0,
                    energy_joules: 1.0,
                },
                perf: Default::default(),
                efficiency: EfficiencyMetrics {
                    iops,
                    mbps: iops / 100.0,
                    avg_watts: 44.0,
                    iops_per_watt: iops / 44.0,
                    mbps_per_kilowatt: iops / 4.4,
                    ..Default::default()
                },
            });
        }
        db
    }

    #[test]
    fn device_table_sorts_by_load() {
        let db = db_with(&[("raid5", 80, 400.0), ("raid5", 20, 100.0), ("ssd", 50, 900.0)]);
        let table = device_table(&db, "raid5");
        let p20 = table.find("| 20 |").expect("20% row");
        let p80 = table.find("| 80 |").expect("80% row");
        assert!(p20 < p80, "rows ordered by load");
        assert!(!table.contains("900"), "other devices excluded");
        assert!(table.contains("### raid5"));
    }

    #[test]
    fn summary_covers_all_devices() {
        let db = db_with(&[("a", 100, 10.0), ("b", 100, 20.0)]);
        let s = summary(&db);
        assert!(s.contains("2 records"));
        assert!(s.contains("| a | 1 |"));
        assert!(s.contains("| b | 1 |"));
    }

    #[test]
    fn markdown_combines_everything() {
        let db = db_with(&[("a", 100, 10.0), ("b", 50, 20.0)]);
        let md = markdown(&db);
        assert!(md.contains("## TRACER results"));
        assert!(md.contains("### a"));
        assert!(md.contains("### b"));
        // Empty database renders a header and nothing else.
        let empty = markdown(&Database::new());
        assert!(empty.contains("0 records"));
        assert!(!empty.contains("###"));
    }
}
