//! The `tracer` command-line tool: headless front-end of the TRACER
//! framework. See `tracer help` or [`tracer_core::cli`] for the command set.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match tracer_core::cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", tracer_core::cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match tracer_core::cli::run(cmd) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
