//! `TracerError` — the workspace-wide error type.
//!
//! Public fallible entry points across the evaluation stack used to return
//! `Result<_, String>` (the serve binary) or module-local enums (the command
//! session), which made errors impossible to match on and easy to stringify
//! too early. This enum unifies them, hand-rolled in the `thiserror` style —
//! explicit `Display` + `Error` impls, no proc-macro dependency — so the
//! workspace stays buildable offline.
//!
//! The `Display` strings are load-bearing: protocol `err` lines and CLI
//! diagnostics are built from them, and clients (plus the serve e2e tests)
//! match on the exact text. Each variant documents the string it preserves.

use crate::messages::ParseError;

/// Unified error for TRACER's fallible public operations.
#[derive(Debug)]
pub enum TracerError {
    /// A protocol line failed to parse. Displays as the underlying
    /// [`ParseError`] (`protocol parse error: ...`).
    Parse(ParseError),
    /// A command is invalid in the current session state.
    /// Displays as `invalid command sequence: ...` (unchanged from the old
    /// `SessionError::State`).
    State(String),
    /// No trace exists for the requested device/mode.
    /// Displays as `no trace available: ...` (unchanged from the old
    /// `SessionError::NoTrace`).
    NoTrace(String),
    /// An underlying I/O operation failed (socket, repository, obs sink).
    /// Displays as the `std::io::Error` it wraps, matching the strings the
    /// serve binary used to produce via `e.to_string()`.
    Io(std::io::Error),
    /// Service-level failure (worker pool, job queue, shutdown).
    Config(String),
}

impl std::fmt::Display for TracerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TracerError::Parse(e) => write!(f, "{e}"),
            TracerError::State(s) => write!(f, "invalid command sequence: {s}"),
            TracerError::NoTrace(s) => write!(f, "no trace available: {s}"),
            TracerError::Io(e) => write!(f, "{e}"),
            TracerError::Config(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for TracerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TracerError::Parse(e) => Some(e),
            TracerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for TracerError {
    fn from(e: ParseError) -> Self {
        TracerError::Parse(e)
    }
}

impl From<std::io::Error> for TracerError {
    fn from(e: std::io::Error) -> Self {
        TracerError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_match_the_protocol() {
        // These strings appear verbatim in protocol err lines; changing them
        // is a wire-format break.
        assert_eq!(
            TracerError::State("start before configure".into()).to_string(),
            "invalid command sequence: start before configure"
        );
        assert_eq!(
            TracerError::NoTrace("dev/mode".into()).to_string(),
            "no trace available: dev/mode"
        );
        assert_eq!(TracerError::Config("queue full".into()).to_string(), "queue full");
        let io = TracerError::Io(std::io::Error::other("boom"));
        assert_eq!(io.to_string(), "boom");
    }

    #[test]
    fn conversions_and_source_chain() {
        let io: TracerError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, TracerError::Io(_)));
        assert!(std::error::Error::source(&io).is_some());
        assert!(std::error::Error::source(&TracerError::State("x".into())).is_none());
    }
}
