//! The evaluation host: test orchestration and the command session.
//!
//! The evaluation host is "a kernel control part of the entire system"
//! (§III-A1): it configures the workload generator, arms the power analyzer,
//! runs the test, and stores an energy-efficiency record in the database.
//! [`EvaluationHost::run_test`] is that sequence against a simulated array;
//! [`CommandSession`] drives it through the GUI text protocol (parser →
//! messenger), which is how the paper's GUI front-end reaches the machinery.

use crate::db::{Database, PowerData, TestRecord};
use crate::messages::{parse_command, HostCommand};
use crate::metrics::EfficiencyMetrics;
use tracer_power::{Channel, PowerAnalyzer};
use tracer_replay::{replay, LoadControl, ReplayConfig, ReplayReport};
use tracer_sim::{ArraySim, SimDuration};
use tracer_trace::{BunchSource, Trace, TraceHandle, WorkloadMode};

/// Orchestrates tests and owns the results database.
#[derive(Debug, Default)]
pub struct EvaluationHost {
    /// The results database.
    pub db: Database,
    /// Power-analyzer sampling cycle in milliseconds (paper default: 1000).
    pub meter_cycle_ms: u64,
}

/// The outcome of one test run (besides the stored record).
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Id of the record stored in the database.
    pub record_id: u64,
    /// The replay report (completions, per-cycle samples).
    pub report: ReplayReport,
    /// The computed efficiency metrics.
    pub metrics: EfficiencyMetrics,
}

/// A finished measurement that has not been committed to a database yet.
///
/// This is the worker-thread half of [`EvaluationHost::run_test`]: everything
/// except the record-id assignment, which the sweep executor's merge step
/// performs in deterministic cell order (see [`crate::executor`]). The
/// embedded record carries `id == 0` until [`EvaluationHost::commit`] stores
/// it.
#[derive(Debug, Clone)]
pub struct MeasuredTest {
    /// The record to store (id unassigned).
    pub record: TestRecord,
    /// The replay report (completions, per-cycle samples).
    pub report: ReplayReport,
    /// The computed efficiency metrics.
    pub metrics: EfficiencyMetrics,
}

impl EvaluationHost {
    /// Host with the paper's defaults.
    pub fn new() -> Self {
        Self { db: Database::new(), meter_cycle_ms: 1000 }
    }

    /// Run one test: apply the mode's load proportion (and `intensity_pct`
    /// pacing) to `trace`, replay it into `sim`, measure power over the replay
    /// window, and store a [`TestRecord`].
    #[deprecated(
        since = "0.1.0",
        note = "use `EvaluationHost::measure_test` + `EvaluationHost::commit`, the canonical \
                single-cell entry points"
    )]
    pub fn run_test(
        &mut self,
        sim: &mut ArraySim,
        trace: &Trace,
        mode: WorkloadMode,
        intensity_pct: u32,
        label: &str,
    ) -> TestOutcome {
        let measured =
            Self::measure_test(self.meter_cycle_ms, sim, trace, mode, intensity_pct, label);
        self.commit(measured)
    }

    /// The measurement half of [`EvaluationHost::run_test`], free of host
    /// state so sweep workers can run it concurrently: replay, meter, and
    /// package the record — without storing it. Pair with
    /// [`EvaluationHost::commit`] on the merging thread.
    ///
    /// The source is any [`BunchSource`]: an in-memory [`Trace`], or an
    /// mmap-backed view handed out by `TraceRepository::load_view`, which
    /// replays straight off the mapped file.
    pub fn measure_test<S: BunchSource + ?Sized>(
        meter_cycle_ms: u64,
        sim: &mut ArraySim,
        trace: &S,
        mode: WorkloadMode,
        intensity_pct: u32,
        label: &str,
    ) -> MeasuredTest {
        let _span = tracer_obs::span("host.measure_ns");
        let cfg = ReplayConfig {
            load: LoadControl { proportion_pct: mode.load_pct, intensity_pct },
            ..Default::default()
        };
        let report = replay(sim, trace, &cfg);

        // Arm and finalize the analyzer over the replay window, like the
        // host's init/finalize commands around a physical run.
        let mut analyzer = PowerAnalyzer::new();
        let mut channel = Channel::ac_220v(sim.config().name.clone());
        channel.meter.cycle = SimDuration::from_millis(meter_cycle_ms.max(1));
        analyzer.add_channel(channel);
        analyzer.start(report.started);
        let window_end = if report.finished > report.started {
            report.finished
        } else {
            report.started + SimDuration::from_nanos(1)
        };
        let energy = analyzer
            .finalize(window_end, &[sim.power_log()])
            .pop()
            .expect("one channel configured");

        let metrics = EfficiencyMetrics::from_parts(&report.summary, &energy);
        let record = TestRecord {
            id: 0,
            label: label.to_string(),
            device: sim.config().name.clone(),
            mode,
            power: PowerData {
                volts: 220.0,
                avg_amps: metrics.avg_watts / 220.0,
                avg_watts: metrics.avg_watts,
                energy_joules: metrics.energy_joules,
            },
            perf: report.summary,
            efficiency: metrics,
        };
        MeasuredTest { record, report, metrics }
    }

    /// Store a finished measurement, assigning its record id. The merge half
    /// of [`EvaluationHost::run_test`].
    pub fn commit(&mut self, measured: MeasuredTest) -> TestOutcome {
        let MeasuredTest { record, report, metrics } = measured;
        let record_id = self.db.insert(record);
        TestOutcome { record_id, report, metrics }
    }

    /// Measure the array's idle power over `window` without any workload
    /// (the Fig. 7 experiment).
    pub fn measure_idle(&mut self, sim: &mut ArraySim, window: SimDuration, label: &str) -> f64 {
        let from = sim.now();
        sim.run_until(from + window);
        let report = PowerAnalyzer::measure_window(sim.power_log(), from, from + window);
        let record = TestRecord {
            id: 0,
            label: label.to_string(),
            device: sim.config().name.clone(),
            mode: WorkloadMode::peak(0, 0, 0).at_load(0),
            power: PowerData {
                volts: 220.0,
                avg_amps: report.avg_watts / 220.0,
                avg_watts: report.avg_watts,
                energy_joules: report.exact_joules,
            },
            perf: Default::default(),
            efficiency: EfficiencyMetrics {
                avg_watts: report.avg_watts,
                energy_joules: report.exact_joules,
                ..Default::default()
            },
        };
        self.db.insert(record);
        report.avg_watts
    }
}

/// Errors from the command session.
///
/// Historical alias: session errors are now the workspace-wide
/// [`TracerError`](crate::error::TracerError); the `Parse` / `State` /
/// `NoTrace` variants (and their `Display` strings) are unchanged, so
/// existing matches keep compiling and protocol `err` lines are identical.
pub type SessionError = crate::error::TracerError;

/// A GUI-protocol session: text lines in, text responses out.
///
/// `build_array` constructs the device under test per run; `load_trace`
/// resolves `(device, mode)` to a shared [`TraceHandle`] on the trace to
/// replay (typically [`tracer_trace::TraceRepository::load_view`], so
/// repeated `start` commands for the same mode reuse one decoded trace or
/// mmap view, and v3 files replay without materialization).
pub struct CommandSession<B, L>
where
    B: FnMut(&str) -> Option<ArraySim>,
    L: FnMut(&str, &WorkloadMode) -> Option<TraceHandle>,
{
    host: EvaluationHost,
    build_array: B,
    load_trace: L,
    pending: Option<(String, WorkloadMode, u32)>,
    tests_run: u64,
}

impl<B, L> CommandSession<B, L>
where
    B: FnMut(&str) -> Option<ArraySim>,
    L: FnMut(&str, &WorkloadMode) -> Option<TraceHandle>,
{
    /// New session around fresh host state.
    pub fn new(build_array: B, load_trace: L) -> Self {
        Self { host: EvaluationHost::new(), build_array, load_trace, pending: None, tests_run: 0 }
    }

    /// Access the results accumulated by this session.
    pub fn host(&self) -> &EvaluationHost {
        &self.host
    }

    /// Handle one protocol line, returning the textual response.
    pub fn handle_line(&mut self, line: &str) -> Result<String, SessionError> {
        let cmd = parse_command(line).map_err(SessionError::Parse)?;
        match cmd {
            HostCommand::Configure { device, mode, intensity_pct } => {
                self.pending = Some((device.clone(), mode, intensity_pct));
                Ok(format!("ok configured device={device} {mode}"))
            }
            HostCommand::Start => {
                let (device, mode, intensity) = self
                    .pending
                    .clone()
                    .ok_or_else(|| SessionError::State("start before configure".into()))?;
                let mut sim = (self.build_array)(&device)
                    .ok_or_else(|| SessionError::NoTrace(format!("unknown device {device}")))?;
                let trace = (self.load_trace)(&device, &mode)
                    .ok_or_else(|| SessionError::NoTrace(format!("{device}/{mode}")))?;
                self.tests_run += 1;
                let label = format!("session-test-{}", self.tests_run);
                let measured = EvaluationHost::measure_test(
                    self.host.meter_cycle_ms,
                    &mut sim,
                    &trace,
                    mode,
                    intensity,
                    &label,
                );
                let outcome = self.host.commit(measured);
                Ok(format!(
                    "ok test id={} iops={:.2} mbps={:.3} watts={:.2} iops_per_watt={:.3}",
                    outcome.record_id,
                    outcome.metrics.iops,
                    outcome.metrics.mbps,
                    outcome.metrics.avg_watts,
                    outcome.metrics.iops_per_watt
                ))
            }
            HostCommand::Abort => {
                self.pending = None;
                Ok("ok aborted".to_string())
            }
            HostCommand::InitAnalyzer { cycle_ms } => {
                if cycle_ms == 0 {
                    return Err(SessionError::State("cycle must be positive".into()));
                }
                self.host.meter_cycle_ms = cycle_ms;
                Ok(format!("ok analyzer cycle={cycle_ms}ms"))
            }
            HostCommand::FinalizeAnalyzer => Ok("ok analyzer finalized".to_string()),
            HostCommand::Query { device } => {
                let n = self.host.db.query(|r| r.device == device).len();
                Ok(format!("ok records device={device} count={n}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tracer_sim::ArraySpec;
    use tracer_trace::{Bunch, IoPackage};

    fn test_trace(n: usize) -> Trace {
        Trace::from_bunches(
            "raid5-hdd4",
            (0..n)
                .map(|i| {
                    Bunch::new(
                        i as u64 * 10_000_000,
                        vec![IoPackage::read((i as u64 * 997) % 100_000, 4096)],
                    )
                })
                .collect(),
        )
    }

    #[test]
    #[allow(deprecated)] // run_test stays covered while it remains a shim
    fn run_test_stores_record_with_metrics() {
        let mut host = EvaluationHost::new();
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let mode = WorkloadMode::peak(4096, 50, 100).at_load(50);
        let outcome = host.run_test(&mut sim, &test_trace(100), mode, 100, "unit");
        assert_eq!(outcome.report.issued_ios, 50);
        assert!(outcome.metrics.avg_watts > 30.0, "watts {}", outcome.metrics.avg_watts);
        assert!(outcome.metrics.iops_per_watt > 0.0);
        let rec = host.db.get(outcome.record_id).unwrap();
        assert_eq!(rec.device, "raid5-hdd4");
        assert_eq!(rec.mode.load_pct, 50);
        assert!((rec.power.avg_amps - rec.power.avg_watts / 220.0).abs() < 1e-12);
    }

    #[test]
    fn idle_measurement_matches_configuration() {
        let mut host = EvaluationHost::new();
        let mut sim = ArraySpec::hdd_idle(6).build();
        let w = host.measure_idle(&mut sim, SimDuration::from_secs(30), "idle6");
        assert!((w - (16.0 + 6.0 * 5.0)).abs() < 1e-9);
        assert_eq!(host.db.len(), 1);
    }

    #[test]
    #[allow(deprecated)] // run_test stays covered while it remains a shim
    fn empty_trace_test_does_not_divide_by_zero() {
        let mut host = EvaluationHost::new();
        let mut sim = ArraySpec::hdd_raid5(4).build();
        let mode = WorkloadMode::peak(4096, 0, 0);
        let outcome = host.run_test(&mut sim, &Trace::new("empty"), mode, 100, "empty");
        assert_eq!(outcome.metrics.iops, 0.0);
        assert!(outcome.metrics.iops_per_watt.is_finite());
    }

    #[test]
    fn session_full_flow() {
        let mut session = CommandSession::new(
            |device| (device == "raid5-hdd4").then(|| ArraySpec::hdd_raid5(4).build()),
            |_, _| Some(Arc::new(test_trace(50)).into()),
        );
        let r = session.handle_line("init-analyzer cycle=500").unwrap();
        assert!(r.contains("500ms"));
        let r = session
            .handle_line("configure device=raid5-hdd4 rs=4096 rn=50 rd=100 load=20")
            .unwrap();
        assert!(r.contains("configured"));
        let r = session.handle_line("start").unwrap();
        assert!(r.contains("iops="), "{r}");
        let r = session.handle_line("query device=raid5-hdd4").unwrap();
        assert!(r.contains("count=1"));
        let r = session.handle_line("finalize-analyzer").unwrap();
        assert!(r.contains("finalized"));
        assert_eq!(session.host().db.len(), 1);
    }

    #[test]
    fn session_rejects_bad_sequences() {
        let mut session = CommandSession::new(
            |_| Some(ArraySpec::hdd_raid5(4).build()),
            |_, _| Some(Arc::new(test_trace(10)).into()),
        );
        assert!(matches!(session.handle_line("start"), Err(SessionError::State(_))));
        assert!(matches!(session.handle_line("nonsense"), Err(SessionError::Parse(_))));
        assert!(matches!(
            session.handle_line("init-analyzer cycle=0"),
            Err(SessionError::State(_))
        ));
        session.handle_line("configure device=ghost rs=512 rn=0 rd=0 load=10").unwrap();
        // Unknown device surfaces as NoTrace.
        let mut ghost_session = CommandSession::new(
            |_: &str| None::<ArraySim>,
            |_, _| Some(Arc::new(test_trace(10)).into()),
        );
        ghost_session.handle_line("configure device=ghost rs=512 rn=0 rd=0 load=10").unwrap();
        assert!(matches!(ghost_session.handle_line("start"), Err(SessionError::NoTrace(_))));
        // Abort clears pending config.
        session.handle_line("abort").unwrap();
        assert!(matches!(session.handle_line("start"), Err(SessionError::State(_))));
    }
}
