//! TRACER: an integrated framework for evaluating the energy efficiency of
//! mass storage systems.
//!
//! This crate is the top of the TRACER reproduction stack ("TRACER: A Trace
//! Replay Tool to Evaluate Energy-Efficiency of Mass Storage Systems",
//! CLUSTER 2010). It ties the substrates together the way the paper's
//! evaluation host does:
//!
//! * [`metrics`] — the paper's headline metrics (IOPS/Watt, MBPS/Kilowatt)
//!   and the load-proportion / accuracy equations (Eqs. 1–2);
//! * [`db`] — the results database: one record per test with workload mode,
//!   energy-dissipation data, performance, and efficiency;
//! * [`messages`] — the typed host↔generator↔analyzer protocol plus the GUI
//!   text-protocol parser;
//! * [`host`] — test orchestration ([`host::EvaluationHost::measure_test`] +
//!   [`host::EvaluationHost::commit`]) and the protocol-driven
//!   [`host::CommandSession`];
//! * [`orchestrate`] — load sweeps, the 125-mode synthetic sweep, accuracy
//!   tables;
//! * [`distributed`] — parallel evaluation of multiple arrays with a
//!   multi-channel power analyzer (§III-C).
//!
//! Re-exports cover the full public surface of the lower crates so examples
//! and downstream users need a single dependency.
//!
//! # Quickstart
//!
//! ```
//! use tracer_core::prelude::*;
//!
//! // Build the paper's testbed: RAID-5 over four HDDs.
//! let mut sim = ArraySpec::hdd_raid5(4).build();
//!
//! // A small synthetic trace (4 KiB random reads every 10 ms).
//! let trace = Trace::from_bunches(
//!     "demo",
//!     (0..50)
//!         .map(|i| Bunch::at_micros(i * 10_000, vec![IoPackage::read(i * 8191 % 65_536, 4096)]))
//!         .collect(),
//! );
//!
//! // Replay at a 50 % load proportion and record energy efficiency:
//! // measure (thread-safe), then commit (assigns the record id).
//! let mut host = EvaluationHost::new();
//! let mode = WorkloadMode::peak(4096, 100, 100).at_load(50);
//! let measured =
//!     EvaluationHost::measure_test(host.meter_cycle_ms, &mut sim, &trace, mode, 100, "quickstart");
//! let outcome = host.commit(measured);
//! assert!(outcome.metrics.iops_per_watt > 0.0);
//! ```

pub mod analysis;
pub mod cli;
pub mod db;
pub mod distributed;
pub mod error;
pub mod executor;
pub mod export;
pub mod host;
pub mod messages;
pub mod metrics;
pub mod net;
pub mod orchestrate;
pub mod report;
pub mod scenario;
pub mod techniques;

pub use analysis::{
    coefficient_of_variation, linear_fit, mean, pearson, relative_spread, LinearFit,
};
pub use db::{Database, DbError, PowerData, TestRecord};
pub use distributed::{run_parallel, EvaluationJob};
pub use error::TracerError;
pub use executor::SweepExecutor;
pub use host::{CommandSession, EvaluationHost, MeasuredTest, SessionError, TestOutcome};
pub use messages::{format_command, parse_command, HostCommand, ParseError, Report};
pub use metrics::{load_accuracy, load_proportion, AccuracyRow, EfficiencyMetrics};
pub use net::{GeneratorServer, HostClient};
pub use orchestrate::{
    load_sweep, repeated_trials, run_sweep, LoadSweepResult, SweepBuilder, SweepConfig, TrialStat,
    TrialSummary,
};
pub use scenario::{run_scenario, ScenarioCell, ScenarioOutcome, ScenarioSpec, WorkloadSpec};
pub use techniques::{compare_policies, ConservationPolicy, PolicyOutcome};
#[allow(deprecated)]
pub use {
    distributed::run_parallel_with,
    orchestrate::{load_sweep_with, repeated_trials_with, run_sweep_with},
};

/// Everything an application typically needs, including the lower layers.
pub mod prelude {
    pub use crate::techniques::{compare_policies, ConservationPolicy, PolicyOutcome};
    pub use crate::{
        load_accuracy, load_proportion, load_sweep, run_parallel, run_scenario, run_sweep,
        AccuracyRow, CommandSession, Database, EfficiencyMetrics, EvaluationHost, EvaluationJob,
        LoadSweepResult, MeasuredTest, ScenarioCell, ScenarioOutcome, ScenarioSpec, SweepBuilder,
        SweepConfig, SweepExecutor, TestRecord, TracerError,
    };
    #[allow(deprecated)]
    pub use crate::{load_sweep_with, run_sweep_with};
    pub use tracer_power::{Channel, EnergyReport, NoiseModel, PowerAnalyzer, PowerMeter};
    pub use tracer_replay::{
        replay, scale_intensity, AddressPolicy, LoadControl, PerformanceMonitor,
        ProportionalFilter, RealTimeReplayer, ReplayConfig,
    };
    pub use tracer_sim::{
        presets, ArrayConfig, ArrayRequest, ArraySim, ArraySpec, Completion, DeviceSpec, Geometry,
        Layout, PowerPolicy, QueueDiscipline, SimDuration, SimTime,
    };
    pub use tracer_trace::{
        sweep, Bunch, IoPackage, OpKind, Trace, TraceRepository, TraceStats, WorkloadMode,
    };
    pub use tracer_workload::{
        collect_sweep, CelloTraceBuilder, IometerConfig, TraceCollector, WebServerTraceBuilder,
    };
}
