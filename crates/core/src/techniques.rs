//! Energy-conservation technique comparison — the purpose TRACER was built
//! for.
//!
//! The paper motivates TRACER with the zoo of conservation schemes (Table I:
//! MAID, PDC, PARAID, DRPM, eRAID, Hibernator, BUD…) that were all evaluated
//! with incompatible benchmarks and metrics, and closes with "We will
//! leverage TRACER to make further measurements on mainstream
//! energy-conservation techniques for comprehensive evaluation and
//! comparisons" (§VII). This module is that harness: a set of policies
//! applied to the same array, driven by the same load-controlled trace,
//! scored with the same metrics (energy saving versus response-time
//! penalty — the two columns every row of Table I reports).

use crate::host::EvaluationHost;
use serde::{Deserialize, Serialize};
use std::fmt;
use tracer_sim::{ArrayConfig, ArraySim, CacheConfig, Device, SimDuration};
use tracer_trace::{Trace, WorkloadMode};

/// An energy-conservation policy applied to the array under test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConservationPolicy {
    /// No conservation: every member spinning, cache as configured. The
    /// comparison baseline.
    AlwaysOn,
    /// MAID-style: spin idle members down after a timeout; they pay the
    /// spin-up cost on the next access.
    SpinDown {
        /// Idle time before a member spins down.
        idle_timeout: SimDuration,
    },
    /// eRAID-style: park one member and serve through parity (degraded
    /// RAID-5). Saves that member's power continuously, at reconstruction
    /// cost for the I/O that touches it.
    DegradedParity {
        /// Member index to park.
        parked_disk: usize,
    },
    /// Power-aware-cache style (the PA/PB line of work): enable the
    /// controller cache so disk accesses are absorbed in RAM.
    WriteBackCache,
    /// DRPM-style: run every HDD member at a fraction of its nominal spindle
    /// speed (a static gear; the original DRPM shifts dynamically). Spindle
    /// power falls steeply (~RPM^2.8) while rotation and streaming slow down
    /// linearly. SSD members are unaffected.
    LowRpm {
        /// RPM factor in percent, 1–100 (e.g. 50 = half speed).
        factor_pct: u32,
    },
}

impl fmt::Display for ConservationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConservationPolicy::AlwaysOn => write!(f, "always-on"),
            ConservationPolicy::SpinDown { idle_timeout } => {
                write!(f, "spin-down({idle_timeout})")
            }
            ConservationPolicy::DegradedParity { parked_disk } => {
                write!(f, "degraded-parity(disk {parked_disk})")
            }
            ConservationPolicy::WriteBackCache => write!(f, "write-back-cache"),
            ConservationPolicy::LowRpm { factor_pct } => write!(f, "low-rpm({factor_pct}%)"),
        }
    }
}

impl ConservationPolicy {
    /// Build the array with this policy applied.
    pub fn build(&self, mut cfg: ArrayConfig, devices: Vec<Device>) -> ArraySim {
        match *self {
            ConservationPolicy::AlwaysOn => ArraySim::new(cfg, devices),
            ConservationPolicy::SpinDown { idle_timeout } => {
                cfg.spin_down_after = Some(idle_timeout);
                ArraySim::new(cfg, devices)
            }
            ConservationPolicy::DegradedParity { parked_disk } => {
                let mut sim = ArraySim::new(cfg, devices);
                sim.fail_disk(parked_disk);
                sim
            }
            ConservationPolicy::WriteBackCache => {
                cfg.cache = Some(CacheConfig::paper_300mb());
                ArraySim::new(cfg, devices)
            }
            ConservationPolicy::LowRpm { factor_pct } => {
                assert!((1..=100).contains(&factor_pct), "RPM factor must be 1-100 %");
                let factor = f64::from(factor_pct) / 100.0;
                let devices = devices
                    .into_iter()
                    .map(|d| match d {
                        Device::Hdd(h) => {
                            Device::Hdd(tracer_sim::hdd::HddModel::new(h.params().derated(factor)))
                        }
                        ssd => ssd,
                    })
                    .collect();
                ArraySim::new(cfg, devices)
            }
        }
    }
}

/// Scorecard of one policy under one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Policy description.
    pub policy: String,
    /// Total energy over the replay, joules.
    pub energy_joules: f64,
    /// Mean power, watts.
    pub avg_watts: f64,
    /// Throughput, IO/s.
    pub iops: f64,
    /// Throughput, MB/s.
    pub mbps: f64,
    /// Mean response time, milliseconds.
    pub avg_response_ms: f64,
    /// 95th-percentile response time, milliseconds.
    pub p95_response_ms: f64,
    /// Energy saved versus the baseline, percent (negative = costs energy).
    pub energy_saving_pct: f64,
    /// Mean-response-time degradation versus the baseline, percent
    /// (negative = faster than baseline).
    pub response_penalty_pct: f64,
}

/// Compare `policies` on the array `build_parts` describes, under `trace`
/// filtered to `mode`'s load proportion. The first entry of the result is
/// always the [`ConservationPolicy::AlwaysOn`] baseline (prepended when not
/// given); savings and penalties are relative to it. One record per policy is
/// stored in `host`'s database.
pub fn compare_policies<F>(
    host: &mut EvaluationHost,
    build_parts: F,
    trace: &Trace,
    mode: WorkloadMode,
    policies: &[ConservationPolicy],
    label: &str,
) -> Vec<PolicyOutcome>
where
    F: Fn() -> (ArrayConfig, Vec<Device>),
{
    let mut all = Vec::with_capacity(policies.len() + 1);
    if policies.first() != Some(&ConservationPolicy::AlwaysOn) {
        all.push(ConservationPolicy::AlwaysOn);
    }
    all.extend_from_slice(policies);

    let mut outcomes: Vec<PolicyOutcome> = Vec::with_capacity(all.len());
    for policy in &all {
        let (cfg, devices) = build_parts();
        let mut sim = policy.build(cfg, devices);
        let outcome = host.commit(EvaluationHost::measure_test(
            host.meter_cycle_ms,
            &mut sim,
            trace,
            mode,
            100,
            &format!("{label}/{policy}"),
        ));
        let m = outcome.metrics;
        let (baseline_energy, baseline_resp) = outcomes
            .first()
            .map(|b: &PolicyOutcome| (b.energy_joules, b.avg_response_ms))
            .unwrap_or((m.energy_joules, m.avg_response_ms));
        outcomes.push(PolicyOutcome {
            policy: policy.to_string(),
            energy_joules: m.energy_joules,
            avg_watts: m.avg_watts,
            iops: m.iops,
            mbps: m.mbps,
            avg_response_ms: m.avg_response_ms,
            p95_response_ms: outcome.report.summary.p95_response_ms,
            energy_saving_pct: if baseline_energy > 0.0 {
                (1.0 - m.energy_joules / baseline_energy) * 100.0
            } else {
                0.0
            },
            response_penalty_pct: if baseline_resp > 0.0 {
                (m.avg_response_ms / baseline_resp - 1.0) * 100.0
            } else {
                0.0
            },
        });
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer_sim::ArraySpec;
    use tracer_trace::{Bunch, IoPackage};

    /// A sparse trace with long idle gaps: fertile ground for spin-down.
    fn sparse_trace() -> Trace {
        Trace::from_bunches(
            "sparse",
            (0..8u64)
                .map(|i| Bunch::new(i * 30_000_000_000, vec![IoPackage::read(i * 4096, 8192)]))
                .collect(),
        )
    }

    /// A busy re-referencing trace: fertile ground for caching.
    fn hot_trace() -> Trace {
        Trace::from_bunches(
            "hot",
            (0..300u64)
                .map(|i| Bunch::new(i * 20_000_000, vec![IoPackage::read((i % 16) * 128, 16384)]))
                .collect(),
        )
    }

    #[test]
    fn spin_down_saves_energy_on_sparse_load_with_latency_penalty() {
        let mut host = EvaluationHost::new();
        let outcomes = compare_policies(
            &mut host,
            || ArraySpec::hdd_raid5(4).parts(),
            &sparse_trace(),
            WorkloadMode::peak(8192, 50, 100),
            &[ConservationPolicy::SpinDown { idle_timeout: SimDuration::from_secs(5) }],
            "maid",
        );
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].policy, "always-on");
        assert_eq!(outcomes[0].energy_saving_pct, 0.0);
        let spin = &outcomes[1];
        assert!(spin.energy_saving_pct > 10.0, "saving {}", spin.energy_saving_pct);
        assert!(spin.response_penalty_pct > 100.0, "spin-up penalty {}", spin.response_penalty_pct);
        assert_eq!(host.db.len(), 2);
    }

    #[test]
    fn degraded_parity_trades_energy_for_latency() {
        let mut host = EvaluationHost::new();
        let outcomes = compare_policies(
            &mut host,
            || ArraySpec::hdd_raid5(4).parts(),
            &hot_trace(),
            WorkloadMode::peak(16384, 50, 100),
            &[ConservationPolicy::DegradedParity { parked_disk: 0 }],
            "eraid",
        );
        let degraded = &outcomes[1];
        assert!(degraded.energy_saving_pct > 1.0, "saving {}", degraded.energy_saving_pct);
        assert!(degraded.response_penalty_pct > 0.0, "penalty {}", degraded.response_penalty_pct);
    }

    #[test]
    fn cache_improves_latency_on_hot_set() {
        let mut host = EvaluationHost::new();
        let outcomes = compare_policies(
            &mut host,
            || ArraySpec::hdd_raid5(4).parts(),
            &hot_trace(),
            WorkloadMode::peak(16384, 50, 100),
            &[ConservationPolicy::WriteBackCache],
            "cache",
        );
        let cached = &outcomes[1];
        assert!(
            cached.response_penalty_pct < -50.0,
            "cache must cut latency, got {}",
            cached.response_penalty_pct
        );
        assert!(cached.p95_response_ms <= outcomes[0].p95_response_ms);
    }

    #[test]
    fn explicit_baseline_not_duplicated() {
        let mut host = EvaluationHost::new();
        let outcomes = compare_policies(
            &mut host,
            || ArraySpec::hdd_raid5(4).parts(),
            &sparse_trace(),
            WorkloadMode::peak(8192, 0, 100),
            &[ConservationPolicy::AlwaysOn],
            "base",
        );
        assert_eq!(outcomes.len(), 1);
    }

    #[test]
    fn low_rpm_trades_throughput_for_power() {
        let mut host = EvaluationHost::new();
        let outcomes = compare_policies(
            &mut host,
            || ArraySpec::hdd_raid5(4).parts(),
            &hot_trace(),
            WorkloadMode::peak(16384, 50, 100),
            &[ConservationPolicy::LowRpm { factor_pct: 50 }],
            "drpm",
        );
        let low = &outcomes[1];
        assert!(low.energy_saving_pct > 5.0, "saving {}", low.energy_saving_pct);
        assert!(low.response_penalty_pct > 5.0, "penalty {}", low.response_penalty_pct);
        assert!(low.avg_watts < outcomes[0].avg_watts);
    }

    #[test]
    fn policy_display() {
        assert_eq!(ConservationPolicy::AlwaysOn.to_string(), "always-on");
        assert!(ConservationPolicy::SpinDown { idle_timeout: SimDuration::from_secs(5) }
            .to_string()
            .contains("spin-down"));
        assert!(ConservationPolicy::DegradedParity { parked_disk: 2 }
            .to_string()
            .contains("disk 2"));
        assert_eq!(ConservationPolicy::WriteBackCache.to_string(), "write-back-cache");
        assert_eq!(ConservationPolicy::LowRpm { factor_pct: 50 }.to_string(), "low-rpm(50%)");
    }
}
