//! Fig. 7 — "Power consumptions of a RAID with increasing number of disks".
//!
//! The paper measures the idle disk array as the disk count grows from zero
//! to six, observing (1) power linear in the number of disks and (2) disks
//! dominating the non-disk components once more than three are installed.

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;

fn main() {
    banner("Fig. 7", "idle array power vs number of disks");
    let mut host = EvaluationHost::new();
    let mut watts = Vec::new();
    timed("fig07", || {
        row(&["disks".into(), "total W".into(), "disks W".into(), "chassis W".into()]);
        let mut chassis = 0.0;
        for disks in 0..=6usize {
            let mut sim = ArraySpec::hdd_idle(disks).build();
            let total = host.measure_idle(&mut sim, SimDuration::from_secs(60), "fig07");
            if disks == 0 {
                chassis = total;
            }
            row(&[disks.to_string(), f(total), f(total - chassis), f(chassis)]);
            watts.push(total);
        }
    });

    // Shape checks from the paper's §VI-A.
    let increments: Vec<f64> = watts.windows(2).map(|w| w[1] - w[0]).collect();
    let per_disk = increments[0];
    let linear = increments.iter().all(|d| (d - per_disk).abs() < 0.05 * per_disk.max(0.1));
    let dominates_after_3 = watts[4] - watts[0] > watts[0] && watts[3] - watts[0] <= watts[0] + 1.0;
    println!("linear in disk count ............ {}", if linear { "yes" } else { "NO" });
    println!("disks dominate once count > 3 ... {}", if dominates_after_3 { "yes" } else { "NO" });
    json_result(
        "fig07",
        &serde_json::json!({
            "watts": watts,
            "per_disk_watts": per_disk,
            "linear": linear,
            "disks_dominate_beyond_3": dominates_after_3,
        }),
    );
    assert!(linear, "Fig. 7 linearity violated");
    assert!(dominates_after_3, "Fig. 7 dominance crossover violated");
}
