//! Ablation — uniform versus random bunch selection.
//!
//! §IV-A justifies the filter design: "the filter algorithm uniformly rather
//! than randomly select[s] I/O bunches … because random filtering bunches can
//! possibly lead to distorted features of replayed traces due to many wave
//! crests and troughs of workloads." This bench quantifies that claim.
//!
//! Both strategies keep identical per-group counts, so coarse-window
//! throughput is the same — the distortion is in the *pacing*: random
//! selection produces irregular inter-arrival gaps ("crests and troughs" at
//! sub-group timescale). We measure (1) the coefficient of variation of the
//! replayed inter-arrival gaps and (2) the short-window (250 ms) throughput
//! variance, then confirm the long-window trend is preserved by both.

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;
use tracer_replay::RandomFilter;

/// Coefficient of variation of the bunch inter-arrival gaps.
fn gap_cv(trace: &Trace) -> f64 {
    let gaps: Vec<f64> =
        trace.bunches.windows(2).map(|w| (w[1].timestamp - w[0].timestamp) as f64).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len().max(1) as f64;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len().max(1) as f64;
    if mean > 0.0 {
        var.sqrt() / mean
    } else {
        0.0
    }
}

/// Variance of per-250 ms arrival counts.
fn short_window_variance(trace: &Trace) -> f64 {
    let window_ns = 250_000_000u64;
    let bins = (trace.duration() / window_ns + 1) as usize;
    let mut counts = vec![0f64; bins];
    for b in &trace.bunches {
        counts[(b.timestamp / window_ns) as usize] += b.len() as f64;
    }
    let mean = counts.iter().sum::<f64>() / bins as f64;
    counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / bins as f64
}

fn main() {
    banner("ablation", "uniform vs random bunch selection (paper §IV-A design claim)");
    // A steady trace makes pacing distortion unambiguous: the original has
    // perfectly regular 10 ms arrivals, so any added gap variance comes from
    // the selection strategy alone.
    let steady = Trace::from_bunches(
        "steady",
        (0..60_000u64)
            .map(|i| Bunch::new(i * 10_000_000, vec![IoPackage::read((i * 131) % 1_000_000, 8192)]))
            .collect(),
    );
    let web =
        WebServerTraceBuilder { duration_s: 300.0, mean_iops: 200.0, ..Default::default() }.build();

    let mut results = Vec::new();
    let mut rand_noisier = 0;
    timed("filters", || {
        row(&[
            "trace".into(),
            "load %".into(),
            "gapCV unif".into(),
            "gapCV rand".into(),
            "var250 unif".into(),
            "var250 rand".into(),
        ]);
        for (name, trace) in [("steady", &steady), ("web", &web)] {
            for pct in [10u32, 30] {
                let uniform = ProportionalFilter::default().filter(trace, pct);
                let u_cv = gap_cv(&uniform);
                let u_var = short_window_variance(&uniform);
                let (mut r_cv, mut r_var) = (0.0, 0.0);
                let seeds = 3;
                for seed in 0..seeds {
                    let random = RandomFilter::new(seed).filter(trace, pct);
                    r_cv += gap_cv(&random) / seeds as f64;
                    r_var += short_window_variance(&random) / seeds as f64;
                }
                row(&[name.to_string(), pct.to_string(), f(u_cv), f(r_cv), f(u_var), f(r_var)]);
                if r_cv > u_cv && r_var >= u_var * 0.99 {
                    rand_noisier += 1;
                }
                results.push((name, pct, u_cv, r_cv, u_var, r_var));
            }
        }
    });

    println!(
        "\nrandom selection produced rougher pacing in {rand_noisier}/4 cases — the \
         \"wave crests and troughs\" the paper avoids by selecting uniformly."
    );
    json_result(
        "ablation_filter_strategy",
        &serde_json::json!({
            "rows": results,
            "random_noisier_cases": rand_noisier,
        }),
    );
    assert!(rand_noisier >= 3, "random selection must be the noisier strategy");
}
