//! `perf_trace_v3` — v2 heap decode versus the v3 mmap-backed columnar view.
//!
//! Two measurements over the same synthetic trace, stored in both formats:
//!
//! * **decode-to-first-bunch** — cold-open latency: how long until the first
//!   bunch is replayable. v2 pays a full-file heap decode before bunch 0
//!   exists; v3 maps the file and validates the fixed header in O(1).
//! * **sequential scan** — full-trace streaming throughput in IO events/s:
//!   the v2 `BunchDecoder` heap-decodes one `Bunch` (and its `Vec` of IOs)
//!   per step, the v3 cursor decodes columns into one reused scratch buffer
//!   with zero per-bunch allocation.
//!
//! Emits `RESULT perf_trace_v3` with both throughputs and `scan_speedup`
//! (v3/v2), which CI gates: the columnar view must stay well ahead of the
//! heap decoder it bypasses. The speedup is self-normalizing, so runner
//! speed cancels out.

use std::hint::black_box;
use std::time::Instant;
use tracer_bench::{banner, json_result};
use tracer_trace::compact::{encode_body, BunchDecoder};
use tracer_trace::{replay_format, v3, Bunch, BunchSource, IoPackage, Trace, TraceView};

/// Synthetic trace shaped like a collected block trace: mostly-sequential
/// sectors with periodic jumps, small bunches, mixed reads/writes.
fn fixture(bunches: u64) -> Trace {
    let mut out = Vec::with_capacity(bunches as usize);
    let mut sector = 2048u64;
    for i in 0..bunches {
        let n = 1 + (i % 3) as usize;
        let mut ios = Vec::with_capacity(n);
        for j in 0..n {
            let bytes = 4096 * (1 + ((i + j as u64) % 4) as u32);
            if (i + j as u64) % 7 == 0 {
                sector = (sector.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1442695))
                    % 50_000_000;
            }
            let io = if (i + j as u64) % 5 == 0 {
                IoPackage::write(sector, bytes)
            } else {
                IoPackage::read(sector, bytes)
            };
            sector += u64::from(bytes) / 512;
            ios.push(io);
        }
        out.push(Bunch::new(i * 400_000, ios));
    }
    Trace::from_bunches("bench", out)
}

fn checksum(ts: u64, ios: &[IoPackage]) -> u64 {
    let mut sum = ts;
    for io in ios {
        sum = sum.wrapping_mul(31).wrapping_add(io.sector).wrapping_add(u64::from(io.bytes));
    }
    sum
}

fn main() {
    banner("perf_trace_v3", "v2 heap decode vs v3 mmap columnar view");
    let bunches = std::env::var("TRACER_BENCH_V3_BUNCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150_000u64);
    let trace = fixture(bunches);
    let total_ios = trace.io_count() as u64;

    let dir = std::env::temp_dir().join(format!("tracer_perf_v3_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let v2_path = dir.join("bench.replay");
    let v3_path = dir.join("bench.replay3");
    replay_format::write_file(&trace, &v2_path).expect("write v2");
    v3::write_file(&trace, &v3_path).expect("write v3");

    // In-memory v2 body for the scan loop: the decoder is measured against
    // warm bytes, so the comparison cannot hide page-cache effects.
    let mut body = bytes::BytesMut::new();
    encode_body(&trace, &mut body);
    let body = body.freeze();

    // Decode-to-first-bunch: best of 7 cold opens per format.
    let mut v2_first = f64::MAX;
    let mut v3_first = f64::MAX;
    for _ in 0..7 {
        let t0 = Instant::now();
        let decoded = replay_format::read_file(&v2_path).expect("read v2");
        black_box(&decoded.bunches[0]);
        v2_first = v2_first.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let view = TraceView::open(&v3_path).expect("open v3");
        let mut cursor = view.cursor();
        let mut scratch = Vec::new();
        let first = cursor.next_into(&mut scratch).expect("first bunch");
        black_box(first);
        v3_first = v3_first.min(t0.elapsed().as_secs_f64());
    }

    // Sequential scan: interleaved best-of-3 so a scheduler blip on one side
    // cannot manufacture a speedup. Checksums pin both sides to identical
    // decoded content.
    let view = TraceView::open(&v3_path).expect("open v3");
    let mut v2_scan = f64::MAX;
    let mut v3_scan = f64::MAX;
    let mut sum_v2 = 0u64;
    let mut sum_v3 = 0u64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut sum = 0u64;
        let mut dec = BunchDecoder::new(&body).expect("v2 decoder");
        while let Some(bunch) = dec.next_bunch().expect("v2 bunch") {
            sum = sum.wrapping_add(checksum(bunch.timestamp, &bunch.ios));
        }
        v2_scan = v2_scan.min(t0.elapsed().as_secs_f64());
        sum_v2 = sum;

        let t0 = Instant::now();
        let mut sum = 0u64;
        view.try_for_each_bunch(&mut |ts, ios| {
            sum = sum.wrapping_add(checksum(ts, ios));
        })
        .expect("v3 scan");
        v3_scan = v3_scan.min(t0.elapsed().as_secs_f64());
        sum_v3 = sum;
    }
    assert_eq!(sum_v2, sum_v3, "formats decoded different content");
    black_box((sum_v2, sum_v3));

    let v2_eps = total_ios as f64 / v2_scan;
    let v3_eps = total_ios as f64 / v3_scan;
    println!(
        "first bunch:     v2 heap decode {:>10.1} us   v3 mmap view {:>10.1} us  ({:.0}x)",
        v2_first * 1e6,
        v3_first * 1e6,
        v2_first / v3_first
    );
    println!(
        "sequential scan: v2 {:>12.0} events/s   v3 {:>12.0} events/s  ({:.2}x)",
        v2_eps,
        v3_eps,
        v3_eps / v2_eps
    );

    json_result(
        "perf_trace_v3",
        &serde_json::json!({
            "bunches": bunches,
            "ios": total_ios,
            "v2_first_bunch_us": v2_first * 1e6,
            "v3_first_bunch_us": v3_first * 1e6,
            "first_bunch_speedup": v2_first / v3_first,
            "v2_scan_events_per_sec": v2_eps,
            "v3_scan_events_per_sec": v3_eps,
            "scan_speedup": v3_eps / v2_eps,
        }),
    );

    let _ = std::fs::remove_dir_all(&dir);
}
