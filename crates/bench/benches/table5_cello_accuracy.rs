//! Table V — accuracy of load-proportion control for the HP cello99 trace.
//!
//! The cello-style trace carries heavily uneven request sizes, which is
//! exactly why its MBPS control error is visibly worse than the web trace's
//! (the paper measures up to ~32 % at the 10 % level).
//!
//! Workload and sweep shape come from `examples/scenarios/table5.toml`
//! (workload kind `cello`), and the run asserts byte-identical serial and
//! pooled reports. The `.srt` format transformer the paper feeds cello
//! through is exercised alongside: the same synthesized trace round-trips
//! render → convert without losing a request.

use tracer_bench::{banner, f, json_result, row, run_scenario_differential, scenario, timed};
use tracer_core::prelude::*;
use tracer_trace::srt;

fn main() {
    banner("Table V", "load-proportion control accuracy, HP cello99-style trace");
    let spec = scenario("table5.toml");
    let mode = spec.workload.modes()[0];

    // The paper's ingest path: render the cello trace to `.srt`, convert it
    // back, and check the transformer preserved every request.
    let cello = spec.workload.trace(&spec.array, mode, 0);
    let converted = timed("srt-round-trip", || {
        let dir = std::env::temp_dir().join("tracer_table5");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cello99.srt");
        srt::write_srt(&cello, &path).expect("write srt");
        srt::convert_file(&path, "hp-cello99", srt::ConvertOptions::default()).expect("convert")
    });
    assert_eq!(converted.io_count(), cello.io_count(), "srt round-trip must keep every IO");
    let stats = TraceStats::compute(&cello);
    println!(
        "trace: {} IOs, read ratio {:.1} %, avg req {:.1} KB (uneven sizes)",
        stats.ios,
        stats.read_ratio * 100.0,
        stats.avg_request_kib()
    );

    let outcome = timed("scenario", || run_scenario_differential(&spec));
    let result = &outcome.results[0].1;

    let head: Vec<String> = std::iter::once("Configured Load %".to_string())
        .chain(result.rows.iter().map(|r| r.configured_pct.to_string()))
        .collect();
    row(&head);
    let cells: Vec<String> = std::iter::once("Measured MBPS %".to_string())
        .chain(result.rows.iter().map(|r| f(r.measured_mbps_pct)))
        .collect();
    row(&cells);

    let mbps_err = result.rows.iter().map(|r| (r.accuracy_mbps - 1.0).abs()).fold(0.0f64, f64::max);
    println!(
        "max MBPS error: {:.1} % (paper: up to ~32 %, cause: uneven request sizes)",
        mbps_err * 100.0
    );

    // Shape: cello's MBPS error exceeds a fixed-size baseline replayed the
    // same way.
    let fixed = Trace::from_bunches(
        "fixed",
        (0..5_000u64)
            .map(|i| Bunch::new(i * 2_000_000, vec![IoPackage::read((i * 131) % 100_000, 8192)]))
            .collect(),
    );
    let mut host = EvaluationHost::new();
    let fixed_result = timed("fixed-baseline", || {
        SweepBuilder::new().workers(4).loads(&sweep::LOAD_PCTS).label("table5f").load_sweep(
            &mut host,
            || spec.array.build(),
            &fixed,
            mode,
        )
    });
    let fixed_err =
        fixed_result.rows.iter().map(|r| (r.accuracy_mbps - 1.0).abs()).fold(0.0f64, f64::max);
    println!("fixed-size baseline error: {:.2} %", fixed_err * 100.0);
    let ordering_ok = mbps_err > fixed_err;
    println!("uneven sizes degrade accuracy ... {}", if ordering_ok { "yes" } else { "NO" });
    let csv = tracer_core::export::accuracy_rows_csv(&result.rows);
    let out = std::path::Path::new("target").join("table5_accuracy.csv");
    let _ = std::fs::create_dir_all("target");
    std::fs::write(&out, csv).expect("write csv");
    println!("rows exported to {}", out.display());
    json_result(
        "table5",
        &serde_json::json!({
            "rows": result.rows,
            "max_mbps_error": mbps_err,
            "fixed_baseline_error": fixed_err,
            "uneven_worse_than_fixed": ordering_ok,
        }),
    );
    assert!(mbps_err < 0.40, "cello error out of control: {mbps_err}");
    assert!(ordering_ok, "cello must control worse than a fixed-size trace");
}
