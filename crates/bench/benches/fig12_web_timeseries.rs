//! Fig. 12 — average throughput of the RAID-5 array during a 30-minute
//! replay of the web-server trace at load proportions 20–100 %.
//!
//! The paper's observation: "the I/O workload trend remains unchanged when
//! the load proportion is reduced" — the per-minute IOPS/MBPS series at lower
//! proportions are scaled copies of the 100 % series.

use tracer_bench::{banner, f, json_result, row, spark, timed};
use tracer_core::prelude::*;

const LOADS: [u32; 5] = [20, 40, 60, 80, 100];

fn main() {
    let minutes: u64 =
        std::env::var("TRACER_FIG12_MINUTES").ok().and_then(|v| v.parse().ok()).unwrap_or(30);
    banner("Fig. 12", &format!("web-server trace, {minutes}-minute replay, per-minute series"));

    let trace = timed("synthesize", || {
        WebServerTraceBuilder {
            duration_s: minutes as f64 * 60.0,
            mean_iops: 250.0,
            ..Default::default()
        }
        .build()
    });
    println!("trace: {} IOs over {:.0} min", trace.io_count(), trace.duration() as f64 / 6e10);

    let mut iops_series: Vec<Vec<f64>> = Vec::new();
    let mut mbps_series: Vec<Vec<f64>> = Vec::new();
    timed("replays", || {
        for &load in &LOADS {
            let mut sim = ArraySpec::hdd_raid5(6).build();
            let cfg = ReplayConfig { load: LoadControl::proportion(load), ..Default::default() };
            let report = replay(&mut sim, &trace, &cfg);
            let bins = PerformanceMonitor::with_cycle(SimDuration::from_secs(60)).bin(
                &report.completions,
                report.started,
                report.started + SimDuration::from_secs(minutes * 60),
            );
            iops_series.push(bins.iter().map(|b| b.iops).collect());
            mbps_series.push(bins.iter().map(|b| b.mbps).collect());
        }
    });

    for (name, series) in [("(a) IOPS", &iops_series), ("(b) MBPS", &mbps_series)] {
        println!("{name}");
        let mut header = vec!["min".to_string()];
        header.extend(LOADS.iter().map(|l| format!("{l}%")));
        row(&header);
        for m in 0..minutes as usize {
            let mut cells = vec![(m + 1).to_string()];
            cells.extend(series.iter().map(|s| f(s.get(m).copied().unwrap_or(0.0))));
            row(&cells);
        }
    }

    println!("\nshape at a glance (per-minute IOPS):");
    for (i, &load) in LOADS.iter().enumerate() {
        println!("  {load:>3}%  {}", spark(&iops_series[i]));
    }

    // Shape check: each reduced-load series correlates strongly with the
    // 100 % series (trend preserved), and its mean scales with the load.
    let full = iops_series.last().expect("100% series");
    let mut trend_ok = true;
    for (i, &load) in LOADS.iter().enumerate().take(LOADS.len() - 1) {
        let s = &iops_series[i];
        let corr = pearson(s, full);
        let mean_ratio = mean(s) / mean(full);
        let expect = f64::from(load) / 100.0;
        println!(
            "load {load:>3}%: corr with 100% = {corr:.3}, mean ratio = {mean_ratio:.3} (expect {expect:.2})"
        );
        trend_ok &= corr > 0.9 && (mean_ratio - expect).abs() < 0.05;
    }
    json_result(
        "fig12",
        &serde_json::json!({
            "loads": LOADS,
            "iops": iops_series,
            "mbps": mbps_series,
            "trend_preserved": trend_ok,
        }),
    );
    assert!(trend_ok, "workload trend must be preserved under load control");
}

use tracer_core::{mean, pearson};
