//! `perf_parallel_des` — conservative per-disk parallel simulation versus the
//! serial engine on a wave-dense workload.
//!
//! The workload is the densest wave-former the engine sees in practice: wide
//! full-stripe reads on an 8-member array, so every phase fans out to every
//! disk and the resulting same-time `DiskFree` events commute. The RESULT
//! line records serial DES throughput (gated in CI — this is the absolute
//! hot-path number the calendar queue and SoA store bought) and the parallel
//! speedup (informational only: CI runners have wildly varying core counts,
//! and a 1-core container measures a slowdown from thread overhead).
//!
//! Identity of serial and parallel results is asserted here too — a perf
//! harness that quietly benchmarks a *wrong* fast path would be worse than no
//! harness.

use std::hint::black_box;
use std::time::Instant;
use tracer_bench::{banner, json_result};
use tracer_sim::device::OpKind;
use tracer_sim::{ArrayRequest, ArraySim, ArraySpec, SimDuration, SimTime};

const REQUESTS: u64 = 4_000;

fn build() -> ArraySim {
    ArraySpec::hdd_raid5(8).build()
}

/// Submit wide stripe reads on a tight cadence, keeping every member busy.
fn submit_all(sim: &mut ArraySim) {
    let mut at = SimTime::ZERO;
    for i in 0..REQUESTS {
        at += SimDuration::from_micros(400);
        sim.submit(at, ArrayRequest::new((i * 14_336) % 40_000_000, 2 << 20, OpKind::Read))
            .expect("submit");
    }
}

/// Run one configuration to idle; returns (events, seconds, completions).
fn run(parallelism: usize) -> (u64, f64, Vec<tracer_sim::Completion>) {
    let mut sim = build().with_parallelism(parallelism);
    sim.reserve_events(REQUESTS as usize);
    submit_all(&mut sim);
    let t0 = Instant::now();
    sim.run_to_idle();
    let secs = t0.elapsed().as_secs_f64();
    black_box(sim.power_log().devices.len());
    (sim.events_processed(), secs, sim.drain_completions())
}

fn main() {
    banner("perf_parallel_des", "conservative parallel DES vs serial (wave-dense stripe reads)");

    // Best-of-three per configuration, interleaved.
    let mut serial_secs = f64::MAX;
    let mut par_secs = f64::MAX;
    let mut serial_events = 0u64;
    let mut serial_done = Vec::new();
    let workers = 4usize;
    for round in 0..3 {
        let (events, secs, done) = run(1);
        serial_secs = serial_secs.min(secs);
        serial_events = events;
        let (p_events, p_secs, p_done) = run(workers);
        par_secs = par_secs.min(p_secs);
        assert_eq!(events, p_events, "parallel engine processed a different event count");
        assert_eq!(done, p_done, "parallel engine produced different completions");
        if round == 0 {
            serial_done = done;
        }
    }

    let serial_eps = serial_events as f64 / serial_secs.max(1e-9);
    let par_eps = serial_events as f64 / par_secs.max(1e-9);
    println!(
        "{} requests, {} events: serial {serial_eps:>12.0} ev/s  parallel({workers}) {par_eps:>12.0} ev/s  ({:.2}x)",
        REQUESTS,
        serial_events,
        par_eps / serial_eps,
    );
    black_box(serial_done.len());

    json_result(
        "perf_parallel_des",
        &serde_json::json!({
            "requests": REQUESTS,
            "events": serial_events,
            "serial_seconds": serial_secs,
            "serial_events_per_sec": serial_eps,
            "workers": workers,
            "parallel_seconds": par_secs,
            "parallel_events_per_sec": par_eps,
            "speedup": par_eps / serial_eps,
        }),
    );
}
