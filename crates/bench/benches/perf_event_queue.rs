//! `perf_event_queue` — calendar queue versus binary heap on the DES hot
//! path, isolated from the rest of the engine.
//!
//! Two workloads drive both [`tracer_sim::equeue::EventQueue`] back-ends
//! through the same operation sequence:
//!
//! * **deep drain** — schedule a large pending set up front, then pop it dry:
//!   the regime deep device queues put the engine in, where the heap pays
//!   O(log n) sift-downs per pop and the calendar pays O(1) bucket hops;
//! * **hold model** — the classic event-queue benchmark: at steady depth,
//!   each pop schedules a successor at `t + random increment`, matching how
//!   `DiskFree` events beget future `DiskFree` events.
//!
//! Emits `RESULT perf_event_queue` with events/sec per back-end and the
//! calendar/heap speedup on the deep drain, which CI gates (the calendar must
//! stay well ahead of the heap it replaced).

use std::hint::black_box;
use std::time::Instant;
use tracer_bench::{banner, json_result};
use tracer_sim::equeue::{CalendarQueue, EventQueue, HeapQueue};
use tracer_sim::SimTime;

/// Deterministic xorshift so both back-ends see the identical sequence.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Schedule `n` events with service-time-like spacing, then pop everything.
/// Returns (ops, seconds, checksum) — the checksum pins pop order so the
/// optimizer cannot elide the queue and a wrong order fails loudly.
fn deep_drain<Q: EventQueue<u32>>(mut q: Q, n: u64) -> (u64, f64, u64) {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let t0 = Instant::now();
    // Mirror the engine: replay pre-sizes its queue from the plan's bunch
    // count, so the bench pre-sizes from the known event count.
    q.reserve_events(n as usize);
    for seq in 0..n {
        // Cluster timestamps the way bunched I/O does: microsecond-scale
        // spacing with millisecond-scale outliers.
        let jitter = if seq % 64 == 0 { rng.next() % 8_000_000 } else { rng.next() % 40_000 };
        q.schedule(SimTime::from_nanos(seq * 1_000 + jitter), seq, seq as u32);
    }
    let mut last = 0u64;
    let mut checksum = 0u64;
    while let Some((t, _, v)) = q.pop() {
        let t = t.as_nanos();
        assert!(t >= last, "queue went backwards");
        last = t;
        checksum = checksum.wrapping_mul(31).wrapping_add(u64::from(v));
    }
    (2 * n, t0.elapsed().as_secs_f64(), checksum)
}

/// Classic hold model at constant depth: pop one, push its successor.
fn hold<Q: EventQueue<u32>>(mut q: Q, depth: u64, holds: u64) -> (u64, f64, u64) {
    let mut rng = Rng(0x2545_F491_4F6C_DD1D);
    q.reserve_events(depth as usize);
    for seq in 0..depth {
        q.schedule(SimTime::from_nanos(rng.next() % 1_000_000), seq, seq as u32);
    }
    let mut seq = depth;
    let mut checksum = 0u64;
    let t0 = Instant::now();
    for _ in 0..holds {
        let (t, _, v) = q.pop().expect("hold model never drains");
        checksum = checksum.wrapping_mul(31).wrapping_add(u64::from(v));
        seq += 1;
        q.schedule(SimTime::from_nanos(t.as_nanos() + 1 + rng.next() % 2_000_000), seq, v);
    }
    (2 * holds, t0.elapsed().as_secs_f64(), checksum)
}

fn main() {
    banner("perf_event_queue", "calendar vs heap event queue (deep drain + hold model)");
    // Default depth sits firmly in the deep-queue regime the tentpole targets
    // (heap sift-downs ~log2(4M) ≈ 22 levels deep); override with N=… to
    // sweep other depths.
    let n = std::env::var("N").ok().and_then(|v| v.parse().ok()).unwrap_or(4_000_000u64);
    let depth = 65_536u64;
    let holds = 1_000_000u64;

    // Interleave and keep the best of three so a scheduler blip on one side
    // cannot manufacture or mask a regression.
    let mut heap_drain = f64::MAX;
    let mut cal_drain = f64::MAX;
    let mut heap_hold = f64::MAX;
    let mut cal_hold = f64::MAX;
    let mut sum_heap = 0u64;
    let mut sum_cal = 0u64;
    for _ in 0..3 {
        let (ops, secs, ck) = deep_drain(HeapQueue::new(), n);
        heap_drain = heap_drain.min(secs / ops as f64);
        sum_heap = ck;
        let (ops, secs, ck) = deep_drain(CalendarQueue::new(), n);
        cal_drain = cal_drain.min(secs / ops as f64);
        sum_cal = ck;
        let (ops, secs, _) = hold(HeapQueue::new(), depth, holds);
        heap_hold = heap_hold.min(secs / ops as f64);
        let (ops, secs, _) = hold(CalendarQueue::new(), depth, holds);
        cal_hold = cal_hold.min(secs / ops as f64);
    }
    assert_eq!(sum_heap, sum_cal, "back-ends popped different orders");
    black_box((sum_heap, sum_cal));

    let heap_drain_ops = 1.0 / heap_drain;
    let cal_drain_ops = 1.0 / cal_drain;
    let heap_hold_ops = 1.0 / heap_hold;
    let cal_hold_ops = 1.0 / cal_hold;
    println!("deep drain ({n} events): heap {heap_drain_ops:>12.0} ops/s  calendar {cal_drain_ops:>12.0} ops/s  ({:.2}x)", cal_drain_ops / heap_drain_ops);
    println!("hold model (depth {depth}): heap {heap_hold_ops:>12.0} ops/s  calendar {cal_hold_ops:>12.0} ops/s  ({:.2}x)", cal_hold_ops / heap_hold_ops);

    json_result(
        "perf_event_queue",
        &serde_json::json!({
            "drain_events": n,
            "heap_drain_ops_per_sec": heap_drain_ops,
            "calendar_drain_ops_per_sec": cal_drain_ops,
            "drain_speedup": cal_drain_ops / heap_drain_ops,
            "hold_depth": depth,
            "heap_hold_ops_per_sec": heap_hold_ops,
            "calendar_hold_ops_per_sec": cal_hold_ops,
            "hold_speedup": cal_hold_ops / heap_hold_ops,
        }),
    );
}
