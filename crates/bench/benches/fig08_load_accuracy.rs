//! Fig. 8 — throughput as a function of configured load proportion, with the
//! load-control accuracy curve.
//!
//! Paper setup: request size 4 KB, random ratio 50 %, read ratio 0 %; a
//! collected peak trace replayed at 10 %…100 %. The paper reports error rates
//! below 0.5 % for this fixed-request-size trace.
//!
//! The whole cell grid comes from the checked-in scenario file
//! `examples/scenarios/fig08.toml`; the run doubles as a determinism check
//! (serial and pooled sweeps must render byte-identical reports).

use tracer_bench::{banner, f, json_result, row, run_scenario_differential, scenario, timed};

fn main() {
    banner("Fig. 8", "IOPS/MBPS and control accuracy vs load proportion (4K, rnd 50%, rd 0%)");
    let spec = scenario("fig08.toml");
    let outcome = timed("scenario", || run_scenario_differential(&spec));
    let result = &outcome.results[0].1;

    row(&["config %".into(), "IOPS".into(), "MBPS".into(), "acc IOPS".into(), "acc MBPS".into()]);
    for r in &result.rows {
        row(&[
            r.configured_pct.to_string(),
            f(r.iops),
            f(r.mbps),
            f(r.accuracy_iops),
            f(r.accuracy_mbps),
        ]);
    }
    let max_err = result.max_error();
    println!("max control error: {:.3} % (paper: < 0.5 % on hardware)", max_err * 100.0);

    // Shape: throughput roughly linear in configured load.
    let iops_10 = result.rows[0].iops;
    let iops_100 = result.rows.last().unwrap().iops;
    let linear = (iops_100 / iops_10 / 10.0 - 1.0).abs() < 0.08;
    println!("IOPS linear in load ............. {}", if linear { "yes" } else { "NO" });
    json_result(
        "fig08",
        &serde_json::json!({
            "rows": result.rows,
            "max_error": max_err,
            "linear": linear,
        }),
    );
    assert!(max_err < 0.03, "fixed-size control error too large: {max_err}");
    assert!(linear, "throughput must scale linearly with load proportion");
}
