//! Table IV — accuracy of load-proportion control for the web server trace.
//!
//! The paper replays the web trace at configured proportions 10–100 % and
//! tabulates the measured load percent (IOPS and MBPS) plus the accuracy
//! (Eq. 2); the maximum error they report is around 7 %.
//!
//! Workload and sweep shape come from `examples/scenarios/table4.toml`
//! (workload kind `web`), and the run asserts byte-identical serial and
//! pooled reports before printing the paper's row layout.

use tracer_bench::{banner, f, json_result, row, run_scenario_differential, scenario, timed};
use tracer_core::prelude::*;

fn main() {
    banner("Table IV", "load-proportion control accuracy, web server trace");
    let spec = scenario("table4.toml");
    let outcome = timed("scenario", || run_scenario_differential(&spec));
    let result = &outcome.results[0].1;

    // Paper's row layout.
    let configured: Vec<String> =
        result.rows.iter().map(|r| r.configured_pct.to_string()).collect();
    let head: Vec<String> =
        std::iter::once("Configured Load %".to_string()).chain(configured).collect();
    row(&head);
    let line = |name: &str, get: &dyn Fn(&AccuracyRow) -> f64| {
        let cells: Vec<String> = std::iter::once(name.to_string())
            .chain(result.rows.iter().map(|r| f(get(r))))
            .collect();
        row(&cells);
    };
    line("Measured IOPS %", &|r| r.measured_iops_pct);
    line("Accuracy IOPS", &|r| r.accuracy_iops);
    line("Measured MBPS %", &|r| r.measured_mbps_pct);
    line("Accuracy MBPS", &|r| r.accuracy_mbps);

    let max_err = result.max_error();
    println!("max error: {:.2} % (paper: ~7 %)", max_err * 100.0);
    let csv = tracer_core::export::accuracy_rows_csv(&result.rows);
    let out = std::path::Path::new("target").join("table4_accuracy.csv");
    let _ = std::fs::create_dir_all("target");
    std::fs::write(&out, csv).expect("write csv");
    println!("rows exported to {}", out.display());
    json_result("table4", &serde_json::json!({ "rows": result.rows, "max_error": max_err }));
    assert!(max_err < 0.08, "web-trace control error exceeds Table IV bound: {max_err}");
}
