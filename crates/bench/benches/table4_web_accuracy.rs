//! Table IV — accuracy of load-proportion control for the web server trace.
//!
//! The paper replays the web trace at configured proportions 10–100 % and
//! tabulates the measured load percent (IOPS and MBPS) plus the accuracy
//! (Eq. 2); the maximum error they report is around 7 %.

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;

fn main() {
    banner("Table IV", "load-proportion control accuracy, web server trace");
    let trace = timed("synthesize", || {
        WebServerTraceBuilder { duration_s: 600.0, mean_iops: 250.0, ..Default::default() }.build()
    });
    println!("trace: {} IOs / {} bunches", trace.io_count(), trace.bunch_count());

    let mut host = EvaluationHost::new();
    let mode = WorkloadMode::peak(22 * 1024, 50, 90);
    let exec = SweepExecutor::auto();
    let result = timed("sweep", || {
        SweepBuilder::new().executor(exec).loads(&sweep::LOAD_PCTS).label("table4").load_sweep(
            &mut host,
            || presets::hdd_raid5(6),
            &trace,
            mode,
        )
    });

    // Paper's row layout.
    let configured: Vec<String> =
        result.rows.iter().map(|r| r.configured_pct.to_string()).collect();
    let head: Vec<String> =
        std::iter::once("Configured Load %".to_string()).chain(configured).collect();
    row(&head);
    let line = |name: &str, get: &dyn Fn(&AccuracyRow) -> f64| {
        let cells: Vec<String> = std::iter::once(name.to_string())
            .chain(result.rows.iter().map(|r| f(get(r))))
            .collect();
        row(&cells);
    };
    line("Measured IOPS %", &|r| r.measured_iops_pct);
    line("Accuracy IOPS", &|r| r.accuracy_iops);
    line("Measured MBPS %", &|r| r.measured_mbps_pct);
    line("Accuracy MBPS", &|r| r.accuracy_mbps);

    let max_err = result.max_error();
    println!("max error: {:.2} % (paper: ~7 %)", max_err * 100.0);
    let csv = tracer_core::export::accuracy_rows_csv(&result.rows);
    let out = std::path::Path::new("target").join("table4_accuracy.csv");
    let _ = std::fs::create_dir_all("target");
    std::fs::write(&out, csv).expect("write csv");
    println!("rows exported to {}", out.display());
    json_result("table4", &serde_json::json!({ "rows": result.rows, "max_error": max_err }));
    assert!(max_err < 0.08, "web-trace control error exceeds Table IV bound: {max_err}");
}
