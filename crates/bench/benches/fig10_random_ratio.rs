//! Fig. 10 — impacts of random ratio on energy efficiency.
//!
//! Panel (a): MBPS/Kilowatt vs random ratio, sizes 512 B…64 KB, read 0 %,
//! load 100 %. Panel (b): IOPS/Watt vs random ratio, sizes 512 B…1 MB,
//! read 100 %, load 100 %. The paper observes efficiency falling as the
//! random ratio rises (seek power), with sensitivity concentrated below
//! ~30 % random.
//!
//! Both panels load checked-in scenarios (`fig10a.toml`, `fig10b.toml`)
//! whose cross grids are rs-major — each chunk of cells is one size's
//! random-ratio series — and every run asserts byte-identical serial and
//! pooled reports.

use tracer_bench::{
    banner, f, json_result, metric_series, row, run_scenario_differential, scenario, size_label,
    timed,
};
use tracer_core::prelude::*;

fn panel(
    title: &str,
    file: &str,
    metric: impl Fn(&EfficiencyMetrics) -> f64,
) -> (Vec<u8>, Vec<Vec<f64>>) {
    let spec = scenario(file);
    let randoms = spec.workload.rn.clone();
    banner(title, &format!("read {}%, load 100%", spec.workload.rd[0]));
    let series = timed(&spec.name.clone(), || {
        let outcome = run_scenario_differential(&spec);
        metric_series(&outcome, randoms.len(), metric)
    });
    let mut header = vec!["rand %".to_string()];
    header.extend(spec.workload.rs.iter().map(|&s| size_label(s)));
    row(&header);
    for (i, &rnd) in randoms.iter().enumerate() {
        let mut cells = vec![rnd.to_string()];
        cells.extend(series.iter().map(|v| f(v[i])));
        row(&cells);
    }
    (randoms, series)
}

fn main() {
    let (randoms, panel_a) =
        panel("Fig. 10a — MBPS/Kilowatt vs random ratio", "fig10a.toml", |m| m.mbps_per_kilowatt);
    let (_, panel_b) =
        panel("Fig. 10b — IOPS/Watt vs random ratio", "fig10b.toml", |m| m.iops_per_watt);

    // Shape checks: efficiency falls with random ratio for the sizes where
    // seeks dominate (≤64 KiB), and the 0→25 % drop exceeds the 50→100 % one
    // ("less sensitive … when the random ratio is larger than 30%").
    let falling =
        panel_a.iter().chain(panel_b.iter().take(2)).all(|s| s[0] > s[2] && s[2] >= s[4] * 0.85);
    let front_loaded = panel_a.iter().all(|s| (s[0] - s[1]) >= (s[2] - s[4]).max(0.0) * 0.8);
    println!("\nefficiency falls with random .... {}", if falling { "yes" } else { "NO" });
    println!("sensitivity concentrated <30% ... {}", if front_loaded { "yes" } else { "NO" });
    json_result(
        "fig10",
        &serde_json::json!({
            "randoms": randoms,
            "panel_a_mbps_per_kw": panel_a,
            "panel_b_iops_per_watt": panel_b,
            "falling": falling,
            "front_loaded": front_loaded,
        }),
    );
    assert!(falling, "efficiency must fall with random ratio");
}
