//! Fig. 10 — impacts of random ratio on energy efficiency.
//!
//! Panel (a): MBPS/Kilowatt vs random ratio, sizes 512 B…64 KB, read 0 %,
//! load 100 %. Panel (b): IOPS/Watt vs random ratio, sizes 512 B…1 MB,
//! read 100 %, load 100 %. The paper observes efficiency falling as the
//! random ratio rises (seek power), with sensitivity concentrated below
//! ~30 % random.

use tracer_bench::{banner, f, json_result, row, size_label, timed};
use tracer_core::prelude::*;
use tracer_workload::iometer::run_peak_workload;

const RANDOMS: [u8; 5] = [0, 25, 50, 75, 100];

fn measure_cell(cycle: u64, mode: WorkloadMode) -> MeasuredTest {
    let mut sim = presets::hdd_raid5(6);
    let trace = run_peak_workload(
        &mut sim,
        &IometerConfig {
            duration: SimDuration::from_secs(10),
            ..IometerConfig::two_minutes(mode, 10)
        },
    )
    .trace;
    let mut sim = presets::hdd_raid5(6);
    EvaluationHost::measure_test(cycle, &mut sim, &trace, mode, 100, "fig10")
}

fn panel(
    host: &mut EvaluationHost,
    exec: &SweepExecutor,
    title: &str,
    sizes: &[u32],
    read_pct: u8,
    metric: impl Fn(&EfficiencyMetrics) -> f64,
) -> Vec<Vec<f64>> {
    banner(title, &format!("read {read_pct}%, load 100%"));
    let mut header = vec!["rand %".to_string()];
    header.extend(sizes.iter().map(|&s| size_label(s)));
    row(&header);
    // All size × random cells run on the pool; commits happen serially in
    // size-major order, matching the database layout of the old nested loop.
    let modes: Vec<WorkloadMode> = sizes
        .iter()
        .flat_map(|&s| RANDOMS.iter().map(move |&rnd| WorkloadMode::peak(s, rnd, read_pct)))
        .collect();
    let cycle = host.meter_cycle_ms;
    let measured = exec.run_indexed(modes.len(), |i| measure_cell(cycle, modes[i]), |_| {});
    let series: Vec<Vec<f64>> = measured
        .chunks_exact(RANDOMS.len())
        .map(|chunk| chunk.iter().map(|cell| metric(&host.commit(cell.clone()).metrics)).collect())
        .collect();
    for (i, &rnd) in RANDOMS.iter().enumerate() {
        let mut cells = vec![rnd.to_string()];
        cells.extend(series.iter().map(|v| f(v[i])));
        row(&cells);
    }
    series
}

fn main() {
    let mut host = EvaluationHost::new();
    let exec = SweepExecutor::auto();
    let panel_a = timed("fig10a", || {
        panel(
            &mut host,
            &exec,
            "Fig. 10a — MBPS/Kilowatt vs random ratio",
            &[512, 4096, 16384, 65536],
            0,
            |m| m.mbps_per_kilowatt,
        )
    });
    let panel_b = timed("fig10b", || {
        panel(
            &mut host,
            &exec,
            "Fig. 10b — IOPS/Watt vs random ratio",
            &[4096, 65536, 1 << 20],
            100,
            |m| m.iops_per_watt,
        )
    });

    // Shape checks: efficiency falls with random ratio for the sizes where
    // seeks dominate (≤64 KiB), and the 0→25 % drop exceeds the 50→100 % one
    // ("less sensitive … when the random ratio is larger than 30%").
    let falling =
        panel_a.iter().chain(panel_b.iter().take(2)).all(|s| s[0] > s[2] && s[2] >= s[4] * 0.85);
    let front_loaded = panel_a.iter().all(|s| (s[0] - s[1]) >= (s[2] - s[4]).max(0.0) * 0.8);
    println!("\nefficiency falls with random .... {}", if falling { "yes" } else { "NO" });
    println!("sensitivity concentrated <30% ... {}", if front_loaded { "yes" } else { "NO" });
    json_result(
        "fig10",
        &serde_json::json!({
            "randoms": RANDOMS,
            "panel_a_mbps_per_kw": panel_a,
            "panel_b_iops_per_watt": panel_b,
            "falling": falling,
            "front_loaded": front_loaded,
        }),
    );
    assert!(falling, "efficiency must fall with random ratio");
}
