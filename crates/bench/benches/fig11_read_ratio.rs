//! Fig. 11 — impacts of read ratio on throughput and energy efficiency.
//!
//! Paper setup: request size 16 KB; random ratios 0 %, 50 %, 100 %; read
//! ratio swept 0…100 %. Observations: at random 50/100 % the curves are flat
//! (throughput and efficiency insensitive to read ratio); at random 0 % there
//! is a pronounced U-shape — pure-read and pure-write streams beat mixed
//! ones.

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;
use tracer_workload::iometer::run_peak_workload;

const READS: [u8; 5] = [0, 25, 50, 75, 100];
const RANDOMS: [u8; 3] = [0, 50, 100];

fn measure(cycle: u64, mode: WorkloadMode) -> MeasuredTest {
    let mut sim = presets::hdd_raid5(6);
    let trace = run_peak_workload(
        &mut sim,
        &IometerConfig {
            duration: SimDuration::from_secs(10),
            ..IometerConfig::two_minutes(mode, 11)
        },
    )
    .trace;
    let mut sim = presets::hdd_raid5(6);
    EvaluationHost::measure_test(cycle, &mut sim, &trace, mode, 100, "fig11")
}

fn main() {
    banner("Fig. 11", "throughput and efficiency vs read ratio (16K; rnd 0/50/100%)");
    let mut host = EvaluationHost::new();
    let exec = SweepExecutor::auto();
    let mut mbps = Vec::new();
    let mut eff = Vec::new();
    timed("fig11", || {
        // random-major × read-minor grid, fanned out over the pool and
        // committed in grid order (same order the old serial loops used).
        let modes: Vec<WorkloadMode> = RANDOMS
            .iter()
            .flat_map(|&rnd| READS.iter().map(move |&rd| WorkloadMode::peak(16 * 1024, rnd, rd)))
            .collect();
        let cycle = host.meter_cycle_ms;
        let measured = exec.run_indexed(modes.len(), |i| measure(cycle, modes[i]), |_| {});
        for chunk in measured.chunks_exact(READS.len()) {
            let series: Vec<EfficiencyMetrics> =
                chunk.iter().map(|cell| host.commit(cell.clone()).metrics).collect();
            mbps.push(series.iter().map(|m| m.mbps).collect::<Vec<_>>());
            eff.push(series.iter().map(|m| m.mbps_per_kilowatt).collect::<Vec<_>>());
        }
    });

    println!("(a) MBPS");
    let mut header = vec!["read %".to_string()];
    header.extend(RANDOMS.iter().map(|r| format!("rnd {r}%")));
    row(&header);
    for (i, &rd) in READS.iter().enumerate() {
        let mut cells = vec![rd.to_string()];
        cells.extend(mbps.iter().map(|s| f(s[i])));
        row(&cells);
    }
    println!("(b) MBPS/Kilowatt");
    row(&header);
    for (i, &rd) in READS.iter().enumerate() {
        let mut cells = vec![rd.to_string()];
        cells.extend(eff.iter().map(|s| f(s[i])));
        row(&cells);
    }

    // Shape checks. U-shape at random 0 %: the mixed middle is below both
    // pure ends for throughput and efficiency.
    let u_shape = |s: &Vec<f64>| {
        let mid = s[1].min(s[2]).min(s[3]);
        mid < s[0] && mid < s[4]
    };
    let sequential_u = u_shape(&mbps[0]) && u_shape(&eff[0]);
    // Flat at high random ratios: spread within a small multiple of the mean.
    let flatness = |s: &Vec<f64>| {
        let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
        let spread = s.iter().cloned().fold(0.0f64, f64::max)
            - s.iter().cloned().fold(f64::INFINITY, f64::min);
        spread / mean
    };
    let flat_random = flatness(&mbps[2]) < flatness(&mbps[0]);
    println!("\nU-shape at random 0% ............ {}", if sequential_u { "yes" } else { "NO" });
    println!("flatter at random 100% than 0% .. {}", if flat_random { "yes" } else { "NO" });
    json_result(
        "fig11",
        &serde_json::json!({
            "reads": READS,
            "randoms": RANDOMS,
            "mbps": mbps,
            "mbps_per_kw": eff,
            "sequential_u_shape": sequential_u,
            "flatter_at_high_random": flat_random,
        }),
    );
    assert!(sequential_u, "sequential read-ratio curve must be U-shaped");
    assert!(flat_random, "high-random curves must be flatter than sequential");
}
