//! Fig. 11 — impacts of read ratio on throughput and energy efficiency.
//!
//! Paper setup: request size 16 KB; random ratios 0 %, 50 %, 100 %; read
//! ratio swept 0…100 %. Observations: at random 50/100 % the curves are flat
//! (throughput and efficiency insensitive to read ratio); at random 0 % there
//! is a pronounced U-shape — pure-read and pure-write streams beat mixed
//! ones.
//!
//! The grid comes from `examples/scenarios/fig11.toml`, whose cross grid
//! nests rn over rd — each chunk of cells is one random ratio's read-ratio
//! series — and the run asserts byte-identical serial and pooled reports.

use tracer_bench::{
    banner, f, json_result, metric_series, row, run_scenario_differential, scenario, timed,
};

fn main() {
    banner("Fig. 11", "throughput and efficiency vs read ratio (16K; rnd 0/50/100%)");
    let spec = scenario("fig11.toml");
    let reads = spec.workload.rd.clone();
    let randoms = spec.workload.rn.clone();
    let (mbps, eff) = timed("fig11", || {
        let outcome = run_scenario_differential(&spec);
        (
            metric_series(&outcome, reads.len(), |m| m.mbps),
            metric_series(&outcome, reads.len(), |m| m.mbps_per_kilowatt),
        )
    });

    println!("(a) MBPS");
    let mut header = vec!["read %".to_string()];
    header.extend(randoms.iter().map(|r| format!("rnd {r}%")));
    row(&header);
    for (i, &rd) in reads.iter().enumerate() {
        let mut cells = vec![rd.to_string()];
        cells.extend(mbps.iter().map(|s| f(s[i])));
        row(&cells);
    }
    println!("(b) MBPS/Kilowatt");
    row(&header);
    for (i, &rd) in reads.iter().enumerate() {
        let mut cells = vec![rd.to_string()];
        cells.extend(eff.iter().map(|s| f(s[i])));
        row(&cells);
    }

    // Shape checks. U-shape at random 0 %: the mixed middle is below both
    // pure ends for throughput and efficiency.
    let u_shape = |s: &Vec<f64>| {
        let mid = s[1].min(s[2]).min(s[3]);
        mid < s[0] && mid < s[4]
    };
    let sequential_u = u_shape(&mbps[0]) && u_shape(&eff[0]);
    // Flat at high random ratios: spread within a small multiple of the mean.
    let flatness = |s: &Vec<f64>| {
        let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
        let spread = s.iter().cloned().fold(0.0f64, f64::max)
            - s.iter().cloned().fold(f64::INFINITY, f64::min);
        spread / mean
    };
    let flat_random = flatness(&mbps[2]) < flatness(&mbps[0]);
    println!("\nU-shape at random 0% ............ {}", if sequential_u { "yes" } else { "NO" });
    println!("flatter at random 100% than 0% .. {}", if flat_random { "yes" } else { "NO" });
    json_result(
        "fig11",
        &serde_json::json!({
            "reads": reads,
            "randoms": randoms,
            "mbps": mbps,
            "mbps_per_kw": eff,
            "sequential_u_shape": sequential_u,
            "flatter_at_high_random": flat_random,
        }),
    );
    assert!(sequential_u, "sequential read-ratio curve must be U-shaped");
    assert!(flat_random, "high-random curves must be flatter than sequential");
}
