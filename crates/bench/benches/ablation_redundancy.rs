//! Ablation — the energy price of redundancy.
//!
//! The paper's testbed is RAID-5; this ablation puts the same six drives
//! under RAID-0 (no redundancy), RAID-5 (rotating parity), and RAID-10
//! (mirroring) and replays the same mixed workload, surfacing the classic
//! trade: parity pays a 4x small-write penalty in time *and* energy,
//! mirroring pays 2x on writes but keeps reads cheap, striping pays nothing
//! and survives nothing.

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;
use tracer_sim::ArraySpec;

type Builder = fn() -> ArraySim;

fn mixed_workload(n: u64) -> Trace {
    Trace::from_bunches(
        "mixed",
        (0..n)
            .map(|i| {
                let kind = if i % 3 == 0 { OpKind::Write } else { OpKind::Read };
                Bunch::new(
                    i * 8_000_000,
                    vec![IoPackage::new((i * 524_287) % 5_000_000, 8192, kind)],
                )
            })
            .collect(),
    )
}

fn main() {
    banner("ablation", "redundancy: RAID-0 vs RAID-5 vs RAID-10 on six drives");
    let schemes: [(&str, Builder); 3] = [
        ("raid0", || ArraySpec::hdd_raid0(6).build()),
        ("raid5", || ArraySpec::hdd_raid5(6).build()),
        ("raid10", || ArraySpec::hdd_raid10(6).build()),
    ];
    let trace = mixed_workload(1_500);
    let mut rows = Vec::new();
    timed("replays", || {
        row(&[
            "scheme".into(),
            "avg ms".into(),
            "p95 ms".into(),
            "write amp".into(),
            "joules".into(),
            "J/GB".into(),
        ]);
        for (name, build) in schemes {
            let mut sim = build();
            let report = replay(&mut sim, &trace, &ReplayConfig::default());
            let joules = sim.power_log().energy_joules(report.started, report.finished);
            let gb = report.issued_bytes as f64 / 1e9;
            row(&[
                name.to_string(),
                f(report.summary.avg_response_ms),
                f(report.summary.p95_response_ms),
                f(sim.stats().write_amplification()),
                f(joules),
                f(joules / gb),
            ]);
            rows.push((
                name,
                report.summary.avg_response_ms,
                sim.stats().write_amplification(),
                joules,
            ));
        }
    });

    let (raid0, raid5, raid10) = (&rows[0], &rows[1], &rows[2]);
    // Write amplification ordering: raid0 (1x) < raid10 (<2x incl. reads) < raid5.
    let amp_ordered = raid0.2 < raid10.2 && raid10.2 < raid5.2;
    // Latency: parity RMW must be the slowest; striping the fastest.
    let latency_ordered = raid0.1 <= raid10.1 && raid10.1 < raid5.1;
    println!(
        "\nwrite amplification {:.2} / {:.2} / {:.2}; latency {:.1} / {:.1} / {:.1} ms \
         (raid0 / raid10 / raid5)",
        raid0.2, raid10.2, raid5.2, raid0.1, raid10.1, raid5.1
    );
    println!(
        "redundancy is an energy tax on writes — exactly the class of trade-off the \
         paper built TRACER to make comparable."
    );
    json_result(
        "ablation_redundancy",
        &serde_json::json!({
            "rows": rows.iter().map(|r| serde_json::json!({
                "scheme": r.0, "avg_ms": r.1, "write_amp": r.2, "joules": r.3
            })).collect::<Vec<_>>(),
            "amp_ordered": amp_ordered,
            "latency_ordered": latency_ordered,
        }),
    );
    assert!(amp_ordered, "write amplification must order raid0 < raid10 < raid5");
    assert!(latency_ordered, "latency must order raid0 <= raid10 < raid5");
}
