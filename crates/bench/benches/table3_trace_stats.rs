//! Table III — characteristics of the web server trace.
//!
//! Paper values: file-system size 169.54 GB, dataset 23.31 GB, read ratio
//! 90.39 %, average request size 21.5 KB. The synthesiser targets those
//! statistics; this bench generates a coverage-scale trace and reports the
//! measured values next to the paper's.

use tracer_bench::{banner, json_result, row, timed};
use tracer_core::prelude::*;

fn main() {
    banner("Table III", "characteristics of the (synthesised) web server trace");
    let trace = timed("synthesize", || WebServerTraceBuilder::table_iii_scale().build());
    let stats = timed("stats", || TraceStats::compute(&trace));

    row(&["metric".into(), "paper".into(), "measured".into()]);
    row(&["fs size (GB)".into(), "169.54".into(), format!("{:.2}", stats.span_gib())]);
    row(&["dataset (GB)".into(), "23.31".into(), format!("{:.2}", stats.footprint_gib())]);
    row(&["read ratio (%)".into(), "90.39".into(), format!("{:.2}", stats.read_ratio * 100.0)]);
    row(&["avg req (KB)".into(), "21.5".into(), format!("{:.1}", stats.avg_request_kib())]);
    println!("requests: {} over {:.0} min", stats.ios, stats.duration_ns as f64 / 6e10);

    let span_ok = (stats.span_gib() - 169.54).abs() / 169.54 < 0.05;
    let dataset_ok = (stats.footprint_gib() - 23.31).abs() / 23.31 < 0.25;
    let read_ok = (stats.read_ratio - 0.9039).abs() < 0.02;
    let size_ok = (stats.avg_request_kib() - 21.5).abs() / 21.5 < 0.20;
    for (name, ok) in [
        ("fs span within 5%", span_ok),
        ("dataset within 25%", dataset_ok),
        ("read ratio within 2pp", read_ok),
        ("avg request within 20%", size_ok),
    ] {
        println!("{name:<24} {}", if ok { "yes" } else { "NO" });
    }
    json_result(
        "table3",
        &serde_json::json!({
            "span_gib": stats.span_gib(),
            "footprint_gib": stats.footprint_gib(),
            "read_ratio": stats.read_ratio,
            "avg_request_kib": stats.avg_request_kib(),
            "ios": stats.ios,
            "all_ok": span_ok && dataset_ok && read_ok && size_ok,
        }),
    );
    assert!(span_ok && read_ok && size_ok, "Table III statistics out of tolerance");
    assert!(dataset_ok, "dataset footprint out of tolerance");
}
