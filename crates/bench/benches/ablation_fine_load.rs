//! Ablation — load control at arbitrary percentages.
//!
//! The paper only exercises multiples of 10 % (groups of ten bunches make
//! them natural). Our filter is an exact Bresenham spread, so any integer
//! percentage works; this bench verifies that the control accuracy of the
//! paper's Fig. 8 carries over to odd levels such as 7 %, 33 %, or 99 %,
//! and that selection-count error stays below one bunch per trace.

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;
use tracer_workload::iometer::run_peak_workload;

fn main() {
    banner("ablation", "fine-grained load control (beyond the paper's 10% steps)");
    let mode = WorkloadMode::peak(4096, 50, 0);
    let trace = timed("collect", || {
        let mut sim = ArraySpec::hdd_raid5(6).build();
        run_peak_workload(
            &mut sim,
            &IometerConfig {
                duration: SimDuration::from_secs(20),
                ..IometerConfig::two_minutes(mode, 13)
            },
        )
        .trace
    });
    let total = trace.bunch_count() as u64;
    println!("trace: {total} bunches");

    let levels: [u32; 9] = [1, 3, 7, 13, 33, 50, 67, 85, 99];
    let mut host = EvaluationHost::new();
    let baseline = {
        let mut sim = ArraySpec::hdd_raid5(6).build();
        let measured = EvaluationHost::measure_test(
            host.meter_cycle_ms,
            &mut sim,
            &trace,
            mode.at_load(100),
            100,
            "fine-100",
        );
        host.commit(measured).metrics
    };

    row(&["config %".into(), "selected".into(), "exact".into(), "measured %".into(), "acc".into()]);
    let mut worst = 0.0f64;
    let mut results = Vec::new();
    timed("levels", || {
        for &pct in &levels {
            let filtered = ProportionalFilter::default().filter(&trace, pct);
            let exact = total * u64::from(pct) / 100;
            assert_eq!(filtered.bunch_count() as u64, exact, "Bresenham count at {pct}%");
            let mut sim = ArraySpec::hdd_raid5(6).build();
            let measured = EvaluationHost::measure_test(
                host.meter_cycle_ms,
                &mut sim,
                &trace,
                mode.at_load(pct),
                100,
                "fine",
            );
            let m = host.commit(measured).metrics;
            let measured = m.iops / baseline.iops * 100.0;
            let acc = measured / f64::from(pct);
            worst = worst.max((acc - 1.0).abs());
            row(&[
                pct.to_string(),
                filtered.bunch_count().to_string(),
                exact.to_string(),
                f(measured),
                f(acc),
            ]);
            results.push((pct, measured, acc));
        }
    });
    println!("\nworst accuracy error across odd levels: {:.2} %", worst * 100.0);
    json_result(
        "ablation_fine_load",
        &serde_json::json!({ "rows": results, "worst_error": worst }),
    );
    assert!(worst < 0.05, "fine-grained control error too large: {worst}");
}
