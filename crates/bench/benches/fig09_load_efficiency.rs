//! Fig. 9 — impacts of I/O load on energy efficiency.
//!
//! Panel (a): IOPS/Watt vs load proportion, request sizes 512 B…1 MB,
//! read 25 %, random 25 %. Panel (b): MBPS/Kilowatt vs load, sizes
//! 512 B…64 KB, read ratios 0…75 %, random 25 %. The paper observes
//! efficiency linearly proportional to load, with small requests earning the
//! higher IOPS/Watt.

use tracer_bench::{banner, f, json_result, row, size_label, timed};
use tracer_core::prelude::*;
use tracer_workload::iometer::run_peak_workload;

const LOADS: [u32; 10] = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

fn collect(mode: WorkloadMode, seed: u64) -> Trace {
    let mut sim = presets::hdd_raid5(6);
    run_peak_workload(
        &mut sim,
        &IometerConfig {
            duration: SimDuration::from_secs(10),
            ..IometerConfig::two_minutes(mode, seed)
        },
    )
    .trace
}

fn sweep_metric(
    host: &mut EvaluationHost,
    exec: &SweepExecutor,
    mode: WorkloadMode,
    metric: impl Fn(&EfficiencyMetrics) -> f64,
) -> Vec<f64> {
    let trace = collect(mode, 9);
    // Measure every load level on the pool, then commit serially in load
    // order so the database looks exactly as if the loop had run inline.
    let cycle = host.meter_cycle_ms;
    let cells = exec.run_indexed(
        LOADS.len(),
        |i| {
            let mut sim = presets::hdd_raid5(6);
            EvaluationHost::measure_test(
                cycle,
                &mut sim,
                &trace,
                mode.at_load(LOADS[i]),
                100,
                "fig09",
            )
        },
        |_| {},
    );
    cells.into_iter().map(|cell| metric(&host.commit(cell).metrics)).collect()
}

fn main() {
    let mut host = EvaluationHost::new();
    let exec = SweepExecutor::auto();

    banner("Fig. 9a", "IOPS/Watt vs load (sizes 512B–1M; rd 25%, rnd 25%)");
    let sizes_a: [u32; 5] = [512, 4096, 65536, 262_144, 1 << 20];
    let mut panel_a = Vec::new();
    timed("fig09a", || {
        let mut header = vec!["load %".to_string()];
        header.extend(sizes_a.iter().map(|&s| size_label(s)));
        row(&header);
        let series: Vec<Vec<f64>> = sizes_a
            .iter()
            .map(|&s| {
                sweep_metric(&mut host, &exec, WorkloadMode::peak(s, 25, 25), |m| m.iops_per_watt)
            })
            .collect();
        for (i, &load) in LOADS.iter().enumerate() {
            let mut cells = vec![load.to_string()];
            cells.extend(series.iter().map(|v| f(v[i])));
            row(&cells);
        }
        panel_a = series;
    });

    banner("Fig. 9b", "MBPS/Kilowatt vs load (sizes 512B–64K; rd 0–75%, rnd 25%)");
    let cfgs_b: [(u32, u8); 4] = [(512, 0), (4096, 25), (16384, 50), (65536, 75)];
    let mut panel_b = Vec::new();
    timed("fig09b", || {
        let mut header = vec!["load %".to_string()];
        header.extend(cfgs_b.iter().map(|&(s, rd)| format!("{} rd{rd}", size_label(s))));
        row(&header);
        let series: Vec<Vec<f64>> = cfgs_b
            .iter()
            .map(|&(s, rd)| {
                sweep_metric(&mut host, &exec, WorkloadMode::peak(s, 25, rd), |m| {
                    m.mbps_per_kilowatt
                })
            })
            .collect();
        for (i, &load) in LOADS.iter().enumerate() {
            let mut cells = vec![load.to_string()];
            cells.extend(series.iter().map(|v| f(v[i])));
            row(&cells);
        }
        panel_b = series;
    });

    // Shape checks: every series grows ~linearly with load; small requests
    // earn more IOPS/Watt than large ones at every load level.
    let monotone = panel_a.iter().chain(&panel_b).all(|s| s.windows(2).all(|w| w[1] > w[0] * 0.98));
    let small_beats_large = panel_a[0].iter().zip(&panel_a[4]).all(|(small, large)| small > large);
    println!("\nefficiency grows with load ...... {}", if monotone { "yes" } else { "NO" });
    println!("small req wins IOPS/Watt ........ {}", if small_beats_large { "yes" } else { "NO" });
    json_result(
        "fig09",
        &serde_json::json!({
            "loads": LOADS,
            "panel_a_iops_per_watt": panel_a,
            "panel_b_mbps_per_kw": panel_b,
            "monotone": monotone,
            "small_beats_large": small_beats_large,
        }),
    );
    assert!(monotone, "efficiency must grow with load");
    assert!(small_beats_large, "small requests must win IOPS/Watt");
}
