//! Fig. 9 — impacts of I/O load on energy efficiency.
//!
//! Panel (a): IOPS/Watt vs load proportion, request sizes 512 B…1 MB,
//! read 25 %, random 25 %. Panel (b): MBPS/Kilowatt vs load, sizes
//! 512 B…64 KB, read ratios 0…75 %, random 25 %. The paper observes
//! efficiency linearly proportional to load, with small requests earning the
//! higher IOPS/Watt.
//!
//! Both panels are checked-in scenarios — `fig09a.toml` is a cross grid over
//! request sizes, `fig09b.toml` zips sizes with read ratios — and each run
//! asserts byte-identical serial and pooled reports.

use tracer_bench::{
    banner, f, json_result, metric_series, row, run_scenario_differential, scenario, size_label,
    timed,
};
use tracer_trace::sweep::LOAD_PCTS;

fn main() {
    banner("Fig. 9a", "IOPS/Watt vs load (sizes 512B–1M; rd 25%, rnd 25%)");
    let spec_a = scenario("fig09a.toml");
    let sizes_a: Vec<u32> = spec_a.workload.rs.clone();
    let panel_a = timed("fig09a", || {
        let outcome = run_scenario_differential(&spec_a);
        metric_series(&outcome, LOAD_PCTS.len(), |m| m.iops_per_watt)
    });
    let mut header = vec!["load %".to_string()];
    header.extend(sizes_a.iter().map(|&s| size_label(s)));
    row(&header);
    for (i, &load) in LOAD_PCTS.iter().enumerate() {
        let mut cells = vec![load.to_string()];
        cells.extend(panel_a.iter().map(|v| f(v[i])));
        row(&cells);
    }

    banner("Fig. 9b", "MBPS/Kilowatt vs load (sizes 512B–64K; rd 0–75%, rnd 25%)");
    let spec_b = scenario("fig09b.toml");
    let cfgs_b: Vec<(u32, u8)> =
        spec_b.workload.rs.iter().copied().zip(spec_b.workload.rd.iter().copied()).collect();
    let panel_b = timed("fig09b", || {
        let outcome = run_scenario_differential(&spec_b);
        metric_series(&outcome, LOAD_PCTS.len(), |m| m.mbps_per_kilowatt)
    });
    let mut header = vec!["load %".to_string()];
    header.extend(cfgs_b.iter().map(|&(s, rd)| format!("{} rd{rd}", size_label(s))));
    row(&header);
    for (i, &load) in LOAD_PCTS.iter().enumerate() {
        let mut cells = vec![load.to_string()];
        cells.extend(panel_b.iter().map(|v| f(v[i])));
        row(&cells);
    }

    // Shape checks: every series grows ~linearly with load; small requests
    // earn more IOPS/Watt than large ones at every load level.
    let monotone = panel_a.iter().chain(&panel_b).all(|s| s.windows(2).all(|w| w[1] > w[0] * 0.98));
    let small_beats_large = panel_a[0].iter().zip(&panel_a[4]).all(|(small, large)| small > large);
    println!("\nefficiency grows with load ...... {}", if monotone { "yes" } else { "NO" });
    println!("small req wins IOPS/Watt ........ {}", if small_beats_large { "yes" } else { "NO" });
    json_result(
        "fig09",
        &serde_json::json!({
            "loads": LOAD_PCTS,
            "panel_a_iops_per_watt": panel_a,
            "panel_b_mbps_per_kw": panel_b,
            "monotone": monotone,
            "small_beats_large": small_beats_large,
        }),
    );
    assert!(monotone, "efficiency must grow with load");
    assert!(small_beats_large, "small requests must win IOPS/Watt");
}
