//! Criterion micro-benchmarks of the framework's hot paths: the proportional
//! filter, trace (de)serialisation, RAID-5 planning, the DES engine (request
//! store and elevator dispatch), the closed-loop generator, the end-to-end
//! load sweep (serial vs pooled), blkparse ingest (serial vs chunked
//! parallel), and replay planning (materializing pipeline vs zero-copy plan).
//!
//! Each DES-engine benchmark also emits a machine-readable `RESULT` line
//! (events/sec, sweep seconds) so EXPERIMENTS.md can track the hot-path
//! numbers across commits. Set `TRACER_BENCH_SAMPLES` to shrink the sample
//! count (CI smoke runs use `TRACER_BENCH_SAMPLES=2`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;
use tracer_bench::json_result;
use tracer_core::{EvaluationHost, SweepBuilder, SweepExecutor};
use tracer_replay::{
    replay, replay_prepared, AddressPolicy, LoadControl, ProportionalFilter, ReplayConfig,
};
use tracer_sim::{
    ArrayRequest, ArraySim, ArraySpec, Geometry, QueueDiscipline, SimDuration, SimTime,
};
use tracer_trace::blkparse::{
    convert, convert_parallel, parse_str, parse_str_parallel, BlkparseOptions,
};
use tracer_trace::WorkloadMode;
use tracer_trace::{replay_format, Bunch, IoPackage, OpKind, Trace};
use tracer_workload::iometer::{run_peak_workload, IometerConfig};

fn samples_from_env() -> usize {
    std::env::var("TRACER_BENCH_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(20).max(1)
}

fn big_trace(bunches: usize) -> Trace {
    Trace::from_bunches(
        "bench",
        (0..bunches as u64)
            .map(|i| {
                Bunch::new(
                    i * 1_000_000,
                    (0..4).map(|j| IoPackage::read((i * 4 + j) * 128 % 10_000_000, 8192)).collect(),
                )
            })
            .collect(),
    )
}

fn bench_filter(c: &mut Criterion) {
    let trace = big_trace(100_000);
    let filter = ProportionalFilter::default();
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Elements(trace.bunch_count() as u64));
    g.bench_function("proportional_30pct_100k_bunches", |b| {
        b.iter(|| black_box(filter.filter(black_box(&trace), 30)))
    });
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let trace = big_trace(50_000);
    let bytes = replay_format::to_bytes(&trace);
    let mut g = c.benchmark_group("replay_format");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_v1_50k_bunches", |b| {
        b.iter(|| black_box(replay_format::to_bytes(black_box(&trace))))
    });
    g.bench_function("decode_v1_50k_bunches", |b| {
        b.iter(|| black_box(replay_format::from_bytes(black_box(&bytes)).unwrap()))
    });
    g.finish();

    let v2 = tracer_trace::compact::to_bytes(&trace);
    let mut g = c.benchmark_group("compact_v2");
    g.throughput(Throughput::Bytes(v2.len() as u64));
    g.bench_function("encode_v2_50k_bunches", |b| {
        b.iter(|| black_box(tracer_trace::compact::to_bytes(black_box(&trace))))
    });
    g.bench_function("decode_v2_50k_bunches", |b| {
        b.iter(|| black_box(replay_format::from_bytes(black_box(&v2)).unwrap()))
    });
    g.finish();
}

fn bench_raid_planning(c: &mut Criterion) {
    let geom = Geometry::raid5(6);
    let mut g = c.benchmark_group("raid5");
    g.throughput(Throughput::Elements(1));
    g.bench_function("plan_small_write", |b| {
        let mut sector = 0u64;
        b.iter(|| {
            sector = (sector + 8_191) % 10_000_000;
            black_box(geom.plan(black_box(sector), 8, OpKind::Write))
        })
    });
    g.bench_function("plan_large_read", |b| {
        let mut sector = 0u64;
        b.iter(|| {
            sector = (sector + 131_071) % 10_000_000;
            black_box(geom.plan(black_box(sector), 4096, OpKind::Read))
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let trace = big_trace(2_000);
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(trace.io_count() as u64));
    g.bench_function("replay_8k_ios_raid5_hdd6", |b| {
        b.iter_batched(
            || ArraySpec::hdd_raid5(6).build(),
            |mut sim| black_box(replay_prepared(&mut sim, &trace, AddressPolicy::Wrap)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// A simulator whose queues stay deep: requests arrive far faster than the
/// disks can serve them, so every DES event exercises the request store.
fn deep_queue_sim(total: u64) -> ArraySim {
    let mut sim = ArraySpec::hdd_raid5(6).build();
    for i in 0..total {
        let at = SimTime::from_micros(i * 20);
        let req = ArrayRequest::new((i * 48_271) % 400_000 * 256, 8192, OpKind::Read);
        sim.submit(at, req).expect("submit");
    }
    sim
}

fn bench_request_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("request_store");
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("deep_queue_5k_requests", |b| {
        b.iter_batched(
            || deep_queue_sim(5_000),
            |mut sim| {
                sim.run_to_idle();
                black_box(sim.events_processed())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();

    // One deterministic run for the RESULT line: raw DES event throughput.
    let mut sim = deep_queue_sim(20_000);
    let t0 = Instant::now();
    sim.run_to_idle();
    let secs = t0.elapsed().as_secs_f64();
    let events = sim.events_processed();
    json_result(
        "perf_request_store",
        &serde_json::json!({
            "requests": 20_000,
            "events": events,
            "seconds": secs,
            "events_per_sec": events as f64 / secs.max(1e-9),
        }),
    );
}

/// An elevator-disciplined array with `depth` scattered requests queued in
/// one burst, so every dispatch walks the per-disk sector index.
fn elevator_backlog(depth: u64) -> ArraySim {
    let (mut cfg, devices) = ArraySpec::hdd_raid5(6).parts();
    cfg.queue_discipline = QueueDiscipline::Elevator;
    let mut sim = ArraySim::new(cfg, devices);
    for i in 0..depth {
        let req = ArrayRequest::new((i * 48_271) % 400_000 * 256, 4096, OpKind::Read);
        sim.submit(SimTime::ZERO, req).expect("submit");
    }
    sim
}

fn bench_elevator_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("elevator");
    for &depth in &[1u64, 8, 64, 512] {
        g.throughput(Throughput::Elements(depth));
        g.bench_function(&format!("dispatch_depth_{depth}"), |b| {
            b.iter_batched(
                || elevator_backlog(depth),
                |mut sim| {
                    sim.run_to_idle();
                    black_box(sim.events_processed())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();

    let mut sim = elevator_backlog(512);
    let t0 = Instant::now();
    sim.run_to_idle();
    let secs = t0.elapsed().as_secs_f64();
    let events = sim.events_processed();
    json_result(
        "perf_elevator",
        &serde_json::json!({
            "depth": 512,
            "events": events,
            "seconds": secs,
            "events_per_sec": events as f64 / secs.max(1e-9),
        }),
    );
}

/// End-to-end load sweep, serial versus a four-worker pool. On a single-core
/// host the two are expected to tie; the RESULT line records both so scaling
/// can be compared across runners.
fn bench_load_sweep(c: &mut Criterion) {
    let _ = c;
    let trace = big_trace(20_000);
    let mode = WorkloadMode::peak(8192, 50, 100);
    let loads = [20, 40, 60, 80, 100];
    let run = |workers: usize| {
        let mut host = EvaluationHost::new();
        let exec = SweepExecutor::new(workers);
        let t0 = Instant::now();
        let res = SweepBuilder::new().executor(exec).loads(&loads).label("perf").load_sweep(
            &mut host,
            || ArraySpec::hdd_raid5(6).build(),
            &trace,
            mode,
        );
        black_box(&res);
        t0.elapsed().as_secs_f64()
    };
    let serial = run(1);
    let pooled = run(4);
    json_result(
        "perf_load_sweep",
        &serde_json::json!({
            "loads": loads.len() + 1,
            "serial_seconds": serial,
            "workers4_seconds": pooled,
            "speedup": serial / pooled.max(1e-9),
        }),
    );
}

/// Instrumentation overhead gate: the same request-store drain and a small
/// load sweep, timed with `tracer-obs` off and on, interleaved min-of-N so
/// scheduler noise hits both sides equally. The RESULT line carries the
/// on/off ratios; `check_regression` holds `max_ratio` under 1.03.
fn bench_obs_overhead(c: &mut Criterion) {
    let _ = c;
    // Many short rounds with the off/on order alternating each round: a load
    // spike or thermal ramp then lands on both sides equally, and min-of-N
    // keeps one clean measurement per side on a noisy runner.
    let rounds = samples_from_env().clamp(8, 12);
    let was = tracer_obs::enabled();

    let time_store = || {
        let mut sim = deep_queue_sim(10_000);
        let t0 = Instant::now();
        sim.run_to_idle();
        sim.obs_flush();
        black_box(sim.events_processed());
        t0.elapsed().as_secs_f64()
    };
    let trace = big_trace(5_000);
    let mode = WorkloadMode::peak(8192, 50, 100);
    let time_sweep = || {
        let mut host = EvaluationHost::new();
        let t0 = Instant::now();
        let res = SweepBuilder::new().loads(&[40]).label("obs-gate").load_sweep(
            &mut host,
            || ArraySpec::hdd_raid5(6).build(),
            &trace,
            mode,
        );
        black_box(&res);
        t0.elapsed().as_secs_f64()
    };

    let (mut store_off, mut store_on) = (f64::MAX, f64::MAX);
    let (mut sweep_off, mut sweep_on) = (f64::MAX, f64::MAX);
    let side = |on: bool, store: &mut f64, sweep: &mut f64| {
        if on {
            tracer_obs::enable();
        } else {
            tracer_obs::disable();
        }
        *store = store.min(time_store());
        *sweep = sweep.min(time_sweep());
    };
    for round in 0..rounds {
        if round % 2 == 0 {
            side(false, &mut store_off, &mut sweep_off);
            side(true, &mut store_on, &mut sweep_on);
        } else {
            side(true, &mut store_on, &mut sweep_on);
            side(false, &mut store_off, &mut sweep_off);
        }
    }
    if was {
        tracer_obs::enable();
    } else {
        tracer_obs::disable();
    }

    let store_ratio = store_on / store_off.max(1e-9);
    let sweep_ratio = sweep_on / sweep_off.max(1e-9);
    json_result(
        "perf_obs_overhead",
        &serde_json::json!({
            "rounds": rounds,
            "store_off_seconds": store_off,
            "store_on_seconds": store_on,
            "store_ratio": store_ratio,
            "sweep_off_seconds": sweep_off,
            "sweep_on_seconds": sweep_on,
            "sweep_ratio": sweep_ratio,
            "max_ratio": store_ratio.max(sweep_ratio),
        }),
    );
}

/// Peak resident-set size of this process in kilobytes (`VmHWM`); 0 where
/// `/proc` is unavailable. The high-water mark only ever grows, so measure
/// the cheap path before the expensive one.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|kb| kb.parse().ok()))
        })
        .unwrap_or(0)
}

/// Deterministic synthetic blkparse dump, sized in importable events.
fn synthetic_dump(events: usize) -> String {
    let mut out = String::with_capacity(events * 90);
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut t_ns: u64 = 0;
    for i in 0..events {
        t_ns += if rng() % 3 == 0 { rng() % 50_000 } else { 150_000 + rng() % 700_000 };
        let rwbs = if rng() % 2 == 0 { "R" } else { "W" };
        let sector = rng() % 40_000_000;
        let len = 8 + (rng() % 16) * 8;
        out.push_str(&format!(
            "  8,0    {}       {}     {}.{:09}  99  D   {rwbs} {sector} + {len} [bench]\n",
            i % 8,
            i + 1,
            t_ns / 1_000_000_000,
            t_ns % 1_000_000_000,
        ));
    }
    out
}

/// Serial versus chunked-parallel blkparse ingest (parse + bunching) over an
/// in-memory dump. The RESULT line records events/sec for both paths.
fn bench_trace_ingest(c: &mut Criterion) {
    let dump = synthetic_dump(50_000);
    let opts = BlkparseOptions::default();
    let mut g = c.benchmark_group("trace_ingest");
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("serial_parse_convert_50k", |b| {
        b.iter(|| {
            let events = parse_str(black_box(&dump), &opts).unwrap();
            black_box(convert(&events, "bench", &opts))
        })
    });
    g.bench_function("parallel4_parse_convert_50k", |b| {
        b.iter(|| {
            let events = parse_str_parallel(black_box(&dump), &opts, 4).unwrap();
            black_box(convert_parallel(&events, "bench", &opts, 4))
        })
    });
    g.finish();

    // One deterministic pass per path for the RESULT line, on a bigger dump
    // so thread spawn costs amortize the way real ingests see them.
    let dump = synthetic_dump(200_000);
    let t0 = Instant::now();
    let events = parse_str(&dump, &opts).unwrap();
    let serial_trace = convert(&events, "bench", &opts);
    let serial = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let events = parse_str_parallel(&dump, &opts, 4).unwrap();
    let parallel_trace = convert_parallel(&events, "bench", &opts, 4);
    let parallel = t0.elapsed().as_secs_f64();
    assert_eq!(serial_trace, parallel_trace, "parallel ingest must be bit-identical");
    json_result(
        "perf_trace_ingest",
        &serde_json::json!({
            "events": 200_000,
            "serial_seconds": serial,
            "parallel4_seconds": parallel,
            "serial_events_per_sec": 200_000.0 / serial.max(1e-9),
            "parallel_events_per_sec": 200_000.0 / parallel.max(1e-9),
            "speedup": serial / parallel.max(1e-9),
        }),
    );
}

/// Materializing replay pipeline (filter + scale clones, then replay) versus
/// the zero-copy `ReplayPlan` path. The RESULT line records ns/bunch for both
/// plus the process peak RSS, measured zero-copy-first so the materialized
/// path owns any high-water-mark growth.
fn bench_replay_plan(c: &mut Criterion) {
    let trace = big_trace(20_000);
    let load = LoadControl { proportion_pct: 40, intensity_pct: 200 };
    let cfg = ReplayConfig { load, ..Default::default() };
    let mut g = c.benchmark_group("replay_plan");
    g.throughput(Throughput::Elements(trace.bunch_count() as u64));
    g.bench_function("materialized_40pct_20k_bunches", |b| {
        b.iter_batched(
            || ArraySpec::hdd_raid5(6).build(),
            |mut sim| {
                let prepared = load.apply(&trace);
                black_box(replay_prepared(&mut sim, &prepared, AddressPolicy::Wrap))
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("zero_copy_40pct_20k_bunches", |b| {
        b.iter_batched(
            || ArraySpec::hdd_raid5(6).build(),
            |mut sim| black_box(replay(&mut sim, &trace, &cfg)),
            BatchSize::SmallInput,
        )
    });
    g.finish();

    let bunches = trace.bunch_count() as f64;
    let mut sim = ArraySpec::hdd_raid5(6).build();
    let t0 = Instant::now();
    let zc_report = replay(&mut sim, &trace, &cfg);
    let zc = t0.elapsed().as_secs_f64();
    let rss_after_zero_copy = peak_rss_kb();
    let mut sim = ArraySpec::hdd_raid5(6).build();
    let t0 = Instant::now();
    let prepared = load.apply(&trace);
    let mat_report = replay_prepared(&mut sim, &prepared, AddressPolicy::Wrap);
    let mat = t0.elapsed().as_secs_f64();
    let rss_after_materialized = peak_rss_kb();
    assert_eq!(zc_report.issued_ios, mat_report.issued_ios, "paths must agree");
    json_result(
        "perf_replay_plan",
        &serde_json::json!({
            "bunches": trace.bunch_count(),
            "materialized_ns_per_bunch": mat * 1e9 / bunches,
            "zero_copy_ns_per_bunch": zc * 1e9 / bunches,
            "speedup": mat / zc.max(1e-9),
            "peak_rss_kb_after_zero_copy": rss_after_zero_copy,
            "peak_rss_kb_after_materialized": rss_after_materialized,
        }),
    );
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.bench_function("closed_loop_1s_peak_4k_random", |b| {
        b.iter_batched(
            || ArraySpec::hdd_raid5(4).build(),
            |mut sim| {
                let cfg = IometerConfig {
                    duration: SimDuration::from_secs(1),
                    ..IometerConfig::two_minutes(WorkloadMode::peak(4096, 100, 100), 3)
                };
                black_box(run_peak_workload(&mut sim, &cfg))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(samples_from_env());
    targets = bench_filter, bench_serialization, bench_raid_planning, bench_engine,
        bench_request_store, bench_elevator_dispatch, bench_generator, bench_load_sweep,
        bench_obs_overhead, bench_trace_ingest, bench_replay_plan
}
criterion_main!(benches);
