//! Criterion micro-benchmarks of the framework's hot paths: the proportional
//! filter, trace (de)serialisation, RAID-5 planning, the DES engine, and the
//! closed-loop generator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use tracer_replay::{replay_prepared, AddressPolicy, ProportionalFilter};
use tracer_sim::SimDuration;
use tracer_sim::{presets, Geometry};
use tracer_trace::WorkloadMode;
use tracer_trace::{replay_format, Bunch, IoPackage, OpKind, Trace};
use tracer_workload::iometer::{run_peak_workload, IometerConfig};

fn big_trace(bunches: usize) -> Trace {
    Trace::from_bunches(
        "bench",
        (0..bunches as u64)
            .map(|i| {
                Bunch::new(
                    i * 1_000_000,
                    (0..4).map(|j| IoPackage::read((i * 4 + j) * 128 % 10_000_000, 8192)).collect(),
                )
            })
            .collect(),
    )
}

fn bench_filter(c: &mut Criterion) {
    let trace = big_trace(100_000);
    let filter = ProportionalFilter::default();
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Elements(trace.bunch_count() as u64));
    g.bench_function("proportional_30pct_100k_bunches", |b| {
        b.iter(|| black_box(filter.filter(black_box(&trace), 30)))
    });
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let trace = big_trace(50_000);
    let bytes = replay_format::to_bytes(&trace);
    let mut g = c.benchmark_group("replay_format");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_v1_50k_bunches", |b| {
        b.iter(|| black_box(replay_format::to_bytes(black_box(&trace))))
    });
    g.bench_function("decode_v1_50k_bunches", |b| {
        b.iter(|| black_box(replay_format::from_bytes(black_box(&bytes)).unwrap()))
    });
    g.finish();

    let v2 = tracer_trace::compact::to_bytes(&trace);
    let mut g = c.benchmark_group("compact_v2");
    g.throughput(Throughput::Bytes(v2.len() as u64));
    g.bench_function("encode_v2_50k_bunches", |b| {
        b.iter(|| black_box(tracer_trace::compact::to_bytes(black_box(&trace))))
    });
    g.bench_function("decode_v2_50k_bunches", |b| {
        b.iter(|| black_box(replay_format::from_bytes(black_box(&v2)).unwrap()))
    });
    g.finish();
}

fn bench_raid_planning(c: &mut Criterion) {
    let geom = Geometry::raid5(6);
    let mut g = c.benchmark_group("raid5");
    g.throughput(Throughput::Elements(1));
    g.bench_function("plan_small_write", |b| {
        let mut sector = 0u64;
        b.iter(|| {
            sector = (sector + 8_191) % 10_000_000;
            black_box(geom.plan(black_box(sector), 8, OpKind::Write))
        })
    });
    g.bench_function("plan_large_read", |b| {
        let mut sector = 0u64;
        b.iter(|| {
            sector = (sector + 131_071) % 10_000_000;
            black_box(geom.plan(black_box(sector), 4096, OpKind::Read))
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let trace = big_trace(2_000);
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(trace.io_count() as u64));
    g.bench_function("replay_8k_ios_raid5_hdd6", |b| {
        b.iter_batched(
            || presets::hdd_raid5(6),
            |mut sim| black_box(replay_prepared(&mut sim, &trace, AddressPolicy::Wrap)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.bench_function("closed_loop_1s_peak_4k_random", |b| {
        b.iter_batched(
            || presets::hdd_raid5(4),
            |mut sim| {
                let cfg = IometerConfig {
                    duration: SimDuration::from_secs(1),
                    ..IometerConfig::two_minutes(WorkloadMode::peak(4096, 100, 100), 3)
                };
                black_box(run_peak_workload(&mut sim, &cfg))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_filter, bench_serialization, bench_raid_planning, bench_engine, bench_generator
}
criterion_main!(benches);
