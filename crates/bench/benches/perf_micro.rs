//! Criterion micro-benchmarks of the framework's hot paths: the proportional
//! filter, trace (de)serialisation, RAID-5 planning, the DES engine (request
//! store and elevator dispatch), the closed-loop generator, and the
//! end-to-end load sweep (serial vs pooled).
//!
//! Each DES-engine benchmark also emits a machine-readable `RESULT` line
//! (events/sec, sweep seconds) so EXPERIMENTS.md can track the hot-path
//! numbers across commits. Set `TRACER_BENCH_SAMPLES` to shrink the sample
//! count (CI smoke runs use `TRACER_BENCH_SAMPLES=2`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;
use tracer_bench::json_result;
use tracer_core::{load_sweep_with, EvaluationHost, SweepExecutor};
use tracer_replay::{replay_prepared, AddressPolicy, ProportionalFilter};
use tracer_sim::{
    presets, ArrayRequest, ArraySim, Geometry, QueueDiscipline, SimDuration, SimTime,
};
use tracer_trace::WorkloadMode;
use tracer_trace::{replay_format, Bunch, IoPackage, OpKind, Trace};
use tracer_workload::iometer::{run_peak_workload, IometerConfig};

fn samples_from_env() -> usize {
    std::env::var("TRACER_BENCH_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(20).max(1)
}

fn big_trace(bunches: usize) -> Trace {
    Trace::from_bunches(
        "bench",
        (0..bunches as u64)
            .map(|i| {
                Bunch::new(
                    i * 1_000_000,
                    (0..4).map(|j| IoPackage::read((i * 4 + j) * 128 % 10_000_000, 8192)).collect(),
                )
            })
            .collect(),
    )
}

fn bench_filter(c: &mut Criterion) {
    let trace = big_trace(100_000);
    let filter = ProportionalFilter::default();
    let mut g = c.benchmark_group("filter");
    g.throughput(Throughput::Elements(trace.bunch_count() as u64));
    g.bench_function("proportional_30pct_100k_bunches", |b| {
        b.iter(|| black_box(filter.filter(black_box(&trace), 30)))
    });
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let trace = big_trace(50_000);
    let bytes = replay_format::to_bytes(&trace);
    let mut g = c.benchmark_group("replay_format");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_v1_50k_bunches", |b| {
        b.iter(|| black_box(replay_format::to_bytes(black_box(&trace))))
    });
    g.bench_function("decode_v1_50k_bunches", |b| {
        b.iter(|| black_box(replay_format::from_bytes(black_box(&bytes)).unwrap()))
    });
    g.finish();

    let v2 = tracer_trace::compact::to_bytes(&trace);
    let mut g = c.benchmark_group("compact_v2");
    g.throughput(Throughput::Bytes(v2.len() as u64));
    g.bench_function("encode_v2_50k_bunches", |b| {
        b.iter(|| black_box(tracer_trace::compact::to_bytes(black_box(&trace))))
    });
    g.bench_function("decode_v2_50k_bunches", |b| {
        b.iter(|| black_box(replay_format::from_bytes(black_box(&v2)).unwrap()))
    });
    g.finish();
}

fn bench_raid_planning(c: &mut Criterion) {
    let geom = Geometry::raid5(6);
    let mut g = c.benchmark_group("raid5");
    g.throughput(Throughput::Elements(1));
    g.bench_function("plan_small_write", |b| {
        let mut sector = 0u64;
        b.iter(|| {
            sector = (sector + 8_191) % 10_000_000;
            black_box(geom.plan(black_box(sector), 8, OpKind::Write))
        })
    });
    g.bench_function("plan_large_read", |b| {
        let mut sector = 0u64;
        b.iter(|| {
            sector = (sector + 131_071) % 10_000_000;
            black_box(geom.plan(black_box(sector), 4096, OpKind::Read))
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let trace = big_trace(2_000);
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(trace.io_count() as u64));
    g.bench_function("replay_8k_ios_raid5_hdd6", |b| {
        b.iter_batched(
            || presets::hdd_raid5(6),
            |mut sim| black_box(replay_prepared(&mut sim, &trace, AddressPolicy::Wrap)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// A simulator whose queues stay deep: requests arrive far faster than the
/// disks can serve them, so every DES event exercises the request store.
fn deep_queue_sim(total: u64) -> ArraySim {
    let mut sim = presets::hdd_raid5(6);
    for i in 0..total {
        let at = SimTime::from_micros(i * 20);
        let req = ArrayRequest::new((i * 48_271) % 400_000 * 256, 8192, OpKind::Read);
        sim.submit(at, req).expect("submit");
    }
    sim
}

fn bench_request_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("request_store");
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("deep_queue_5k_requests", |b| {
        b.iter_batched(
            || deep_queue_sim(5_000),
            |mut sim| {
                sim.run_to_idle();
                black_box(sim.events_processed())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();

    // One deterministic run for the RESULT line: raw DES event throughput.
    let mut sim = deep_queue_sim(20_000);
    let t0 = Instant::now();
    sim.run_to_idle();
    let secs = t0.elapsed().as_secs_f64();
    let events = sim.events_processed();
    json_result(
        "perf_request_store",
        &serde_json::json!({
            "requests": 20_000,
            "events": events,
            "seconds": secs,
            "events_per_sec": events as f64 / secs.max(1e-9),
        }),
    );
}

/// An elevator-disciplined array with `depth` scattered requests queued in
/// one burst, so every dispatch walks the per-disk sector index.
fn elevator_backlog(depth: u64) -> ArraySim {
    let (mut cfg, devices) = presets::hdd_raid5_parts(6);
    cfg.queue_discipline = QueueDiscipline::Elevator;
    let mut sim = ArraySim::new(cfg, devices);
    for i in 0..depth {
        let req = ArrayRequest::new((i * 48_271) % 400_000 * 256, 4096, OpKind::Read);
        sim.submit(SimTime::ZERO, req).expect("submit");
    }
    sim
}

fn bench_elevator_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("elevator");
    for &depth in &[8u64, 64, 512] {
        g.throughput(Throughput::Elements(depth));
        g.bench_function(&format!("dispatch_depth_{depth}"), |b| {
            b.iter_batched(
                || elevator_backlog(depth),
                |mut sim| {
                    sim.run_to_idle();
                    black_box(sim.events_processed())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();

    let mut sim = elevator_backlog(512);
    let t0 = Instant::now();
    sim.run_to_idle();
    let secs = t0.elapsed().as_secs_f64();
    let events = sim.events_processed();
    json_result(
        "perf_elevator",
        &serde_json::json!({
            "depth": 512,
            "events": events,
            "seconds": secs,
            "events_per_sec": events as f64 / secs.max(1e-9),
        }),
    );
}

/// End-to-end load sweep, serial versus a four-worker pool. On a single-core
/// host the two are expected to tie; the RESULT line records both so scaling
/// can be compared across runners.
fn bench_load_sweep(c: &mut Criterion) {
    let _ = c;
    let trace = big_trace(20_000);
    let mode = WorkloadMode::peak(8192, 50, 100);
    let loads = [20, 40, 60, 80, 100];
    let run = |workers: usize| {
        let mut host = EvaluationHost::new();
        let exec = SweepExecutor::new(workers);
        let t0 = Instant::now();
        let res = load_sweep_with(
            &mut host,
            &exec,
            || presets::hdd_raid5(6),
            &trace,
            mode,
            &loads,
            "perf",
        );
        black_box(&res);
        t0.elapsed().as_secs_f64()
    };
    let serial = run(1);
    let pooled = run(4);
    json_result(
        "perf_load_sweep",
        &serde_json::json!({
            "loads": loads.len() + 1,
            "serial_seconds": serial,
            "workers4_seconds": pooled,
            "speedup": serial / pooled.max(1e-9),
        }),
    );
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.bench_function("closed_loop_1s_peak_4k_random", |b| {
        b.iter_batched(
            || presets::hdd_raid5(4),
            |mut sim| {
                let cfg = IometerConfig {
                    duration: SimDuration::from_secs(1),
                    ..IometerConfig::two_minutes(WorkloadMode::peak(4096, 100, 100), 3)
                };
                black_box(run_peak_workload(&mut sim, &cfg))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(samples_from_env());
    targets = bench_filter, bench_serialization, bench_raid_planning, bench_engine,
        bench_request_store, bench_elevator_dispatch, bench_generator, bench_load_sweep
}
criterion_main!(benches);
