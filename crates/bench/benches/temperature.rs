//! Temperature as an evaluation metric — the paper's future work (§VII),
//! implemented.
//!
//! "We intend to bring in temperature as new metric of TRACER evaluation
//! framework, as temperature has obvious influences on energy, performance
//! and reliability of storage systems." This bench replays the 4 KiB random
//! workload at rising load proportions and reports the hottest member disk's
//! steady temperature under a first-order thermal model, plus the effect of
//! random ratio (seek power is heat).

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;
use tracer_power::ThermalModel;
use tracer_workload::iometer::run_peak_workload;

fn hottest_disk_c(sim: &tracer_sim::ArraySim, to: SimTime, model: &ThermalModel) -> f64 {
    sim.power_log().devices.iter().map(|tl| model.report(tl, to).peak_c).fold(f64::MIN, f64::max)
}

fn main() {
    banner("temperature", "future-work metric: member-disk temperature vs load and random ratio");
    let model = ThermalModel::default();
    println!(
        "thermal model: ambient {:.0} C, {:.1} C/W, tau {:.0}s (idle disk steady state {:.1} C)",
        model.ambient_c,
        model.c_per_watt,
        model.tau_s,
        model.steady_state_c(5.0)
    );

    // Temperature vs load proportion (4K, random 50%, read 50%).
    let mode = WorkloadMode::peak(4096, 50, 50);
    let trace = timed("collect", || {
        let mut sim = ArraySpec::hdd_raid5(6).build();
        run_peak_workload(
            &mut sim,
            &IometerConfig {
                duration: SimDuration::from_secs(1_200),
                ..IometerConfig::two_minutes(mode, 21)
            },
        )
        .trace
    });

    let mut temps = Vec::new();
    timed("load-sweep", || {
        row(&["load %".into(), "peak disk C".into(), "avg W".into()]);
        for load in [10u32, 40, 70, 100] {
            let mut sim = ArraySpec::hdd_raid5(6).build();
            let cfg = ReplayConfig { load: LoadControl::proportion(load), ..Default::default() };
            let report = replay(&mut sim, &trace, &cfg);
            let peak = hottest_disk_c(&sim, report.finished, &model);
            let watts = sim.power_log().avg_watts(report.started, report.finished);
            row(&[load.to_string(), f(peak), f(watts)]);
            temps.push(peak);
        }
    });

    // Temperature vs random ratio at full load: seeks are heat.
    let mut rnd_temps = Vec::new();
    timed("random-sweep", || {
        row(&["rand %".into(), "peak disk C".into()]);
        for rnd in [0u8, 50, 100] {
            let m = WorkloadMode::peak(4096, rnd, 50);
            let mut sim = ArraySpec::hdd_raid5(6).build();
            let t = run_peak_workload(
                &mut sim,
                &IometerConfig {
                    duration: SimDuration::from_secs(1_200),
                    ..IometerConfig::two_minutes(m, 22)
                },
            )
            .trace;
            let mut sim = ArraySpec::hdd_raid5(6).build();
            let report = replay(&mut sim, &t, &ReplayConfig::default());
            let peak = hottest_disk_c(&sim, report.finished, &model);
            row(&[rnd.to_string(), f(peak)]);
            rnd_temps.push(peak);
        }
    });

    let monotone_load = temps.windows(2).all(|w| w[1] >= w[0]);
    let seeks_heat = rnd_temps[2] > rnd_temps[0];
    println!("\ntemperature rises with load ..... {}", if monotone_load { "yes" } else { "NO" });
    println!("random I/O runs hotter .......... {}", if seeks_heat { "yes" } else { "NO" });
    json_result(
        "temperature",
        &serde_json::json!({
            "load_peak_c": temps,
            "random_peak_c": rnd_temps,
            "monotone_with_load": monotone_load,
            "random_hotter": seeks_heat,
        }),
    );
    assert!(monotone_load, "temperature must rise with load");
    assert!(seeks_heat, "seek power must show up as heat");
}
