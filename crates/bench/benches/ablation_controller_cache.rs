//! Ablation — the controller cache the paper disables.
//!
//! Table II: "Cache: 300M controller cache (disabled)". The paper disables it
//! "to assure direct access to disks"; this ablation runs the same hot
//! workload with the cache disabled, write-through, and write-back, showing
//! what the disabled-cache methodology hides (and why it is the right choice
//! for *device* energy measurements: the cache masks the disks).

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;
use tracer_sim::{ArraySim, CacheConfig, Device};

fn build(cache: Option<CacheConfig>) -> ArraySim {
    let (mut cfg, devices): (_, Vec<Device>) = tracer_sim::ArraySpec::hdd_raid5(6).parts();
    cfg.cache = cache;
    ArraySim::new(cfg, devices)
}

/// A hot-set workload: 90 % of requests re-reference a 64 MiB region.
fn hot_trace(n: u64) -> Trace {
    Trace::from_bunches(
        "hot",
        (0..n)
            .map(|i| {
                let hot = (i * 7_919) % 131_072; // 64 MiB / 512 B
                let cold = 1_000_000 + (i * 104_729) % 10_000_000;
                let sector = if i % 10 == 0 { cold } else { hot };
                let kind = if i % 5 == 0 { OpKind::Write } else { OpKind::Read };
                Bunch::new(i * 4_000_000, vec![IoPackage::new(sector, 16384, kind)])
            })
            .collect(),
    )
}

fn main() {
    banner("ablation", "controller cache: disabled (paper) vs write-through vs write-back");
    let trace = hot_trace(3_000);
    let configs: [(&str, Option<CacheConfig>); 3] = [
        ("disabled", None),
        ("write-through", Some(CacheConfig { write_back: false, ..CacheConfig::paper_300mb() })),
        ("write-back", Some(CacheConfig::paper_300mb())),
    ];
    let mut rows = Vec::new();
    timed("replays", || {
        row(&[
            "cache".into(),
            "avg ms".into(),
            "p95 ms".into(),
            "joules".into(),
            "hit %".into(),
            "disk ops".into(),
        ]);
        for (name, cache) in configs {
            let mut sim = build(cache);
            let report = replay(&mut sim, &trace, &ReplayConfig::default());
            let joules = sim.power_log().energy_joules(report.started, report.finished);
            let hit_pct = sim.cache().map_or(0.0, |c| c.hit_ratio() * 100.0);
            row(&[
                name.to_string(),
                f(report.summary.avg_response_ms),
                f(report.summary.p95_response_ms),
                f(joules),
                f(hit_pct),
                sim.stats().disk_ops.to_string(),
            ]);
            rows.push((
                name,
                report.summary.avg_response_ms,
                joules,
                hit_pct,
                sim.stats().disk_ops,
            ));
        }
    });

    let disabled = &rows[0];
    let write_back = &rows[2];
    let latency_masked = write_back.1 < disabled.1 * 0.6;
    let disks_bypassed = write_back.4 < disabled.4;
    println!(
        "\nwrite-back cuts mean latency {:.1}ms -> {:.1}ms and disk ops {} -> {}; the\n\
         cache *masks* the device behaviour the paper wants to measure, which is\n\
         why Table II disables it.",
        disabled.1, write_back.1, disabled.4, write_back.4
    );
    json_result(
        "ablation_controller_cache",
        &serde_json::json!({
            "rows": rows.iter().map(|r| serde_json::json!({
                "cache": r.0, "avg_ms": r.1, "joules": r.2, "hit_pct": r.3, "disk_ops": r.4
            })).collect::<Vec<_>>(),
            "latency_masked": latency_masked,
            "disk_ops_reduced": disks_bypassed,
        }),
    );
    assert!(latency_masked, "write-back cache must cut latency on a hot set");
    assert!(disks_bypassed, "cache hits must bypass the disks");
}
