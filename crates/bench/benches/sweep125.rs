//! The 125-trace × 10-load synthetic campaign (§V-C1 / §VI step 1).
//!
//! By default this bench runs a 27-mode × 5-load subsample (3 sizes × 3 read
//! ratios × 3 random ratios) so `cargo bench` stays fast; set
//! `TRACER_FULL_SWEEP=1` for the paper's full 125 × 10 = 1250 measurements
//! (roughly a few minutes of wall time). Results are written to
//! `target/sweep125_results.json` for offline analysis.
//!
//! The sweep fans out over a bounded worker pool (`TRACER_WORKERS`, default:
//! all cores). Results are bit-identical to the serial sweep regardless of
//! the worker count.

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;

fn workers_from_env() -> usize {
    std::env::var("TRACER_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn main() {
    let full = std::env::var("TRACER_FULL_SWEEP").is_ok_and(|v| v == "1");
    let exec = SweepExecutor::new(workers_from_env());
    let cfg = if full {
        SweepConfig::default()
    } else {
        let mut modes = Vec::new();
        for &size in &[4096u32, 65536, 1 << 20] {
            for &read in &[0u8, 50, 100] {
                for &random in &[0u8, 50, 100] {
                    modes.push(WorkloadMode::peak(size, random, read));
                }
            }
        }
        SweepConfig { modes, loads: vec![20, 40, 60, 80, 100] }
    };
    banner(
        "sweep125",
        &format!(
            "{} modes x {} loads = {} measurements{} on {} worker(s)",
            cfg.modes.len(),
            cfg.loads.len(),
            cfg.run_count(),
            if full { " (FULL)" } else { " (subsampled; TRACER_FULL_SWEEP=1 for all 1250)" },
            exec.workers(),
        ),
    );

    // Collect traces (5 s each) across the pool, then sweep.
    let dir = std::env::temp_dir().join("tracer_sweep125_repo");
    let repo = TraceRepository::open(&dir).expect("repository");
    timed("collect", || {
        exec.run_indexed(
            cfg.modes.len(),
            |i| {
                let mut collector = TraceCollector::new(&repo, || ArraySpec::hdd_raid5(6).build());
                collector.duration = SimDuration::from_secs(5);
                collector.collect(cfg.modes[i]).expect("collect");
            },
            |_| {},
        );
    });

    let mut host = EvaluationHost::new();
    let device = ArraySpec::hdd_raid5(6).build().config().name.clone();
    let sweep_t0 = std::time::Instant::now();
    let results = timed("sweep", || {
        SweepBuilder::new()
            .executor(exec)
            .on_progress(|done, total| {
                if done % 25 == 0 || done == total {
                    println!("  {done}/{total} modes");
                }
            })
            .sweep(
                &mut host,
                || ArraySpec::hdd_raid5(6).build(),
                |mode| repo.load(&device, mode).expect("collected"),
                &cfg,
            )
    });
    let sweep_seconds = sweep_t0.elapsed().as_secs_f64();

    // Summary: worst control error, and the monotone-efficiency property per
    // mode (Fig. 9 at campaign scale). Fully sequential modes (random 0 %)
    // are reported separately: dropping bunches turns a back-to-back
    // sequential stream into a strided one, so the replayed workload is
    // physically more expensive per request — a real limitation of bunch
    // filtering that the paper sidesteps by validating accuracy on mixed
    // workloads (Fig. 8 uses random 50 %).
    let mut worst_err = 0.0f64;
    let mut worst_mixed_err = 0.0f64;
    let mut monotone_modes = 0;
    row(&[
        "size".into(),
        "rnd%".into(),
        "rd%".into(),
        "IOPS@100".into(),
        "IOPS/W@100".into(),
        "maxErr%".into(),
    ]);
    for (mode, res) in cfg.modes.iter().zip(&results) {
        worst_err = worst_err.max(res.max_error());
        if mode.random_pct > 0 {
            worst_mixed_err = worst_mixed_err.max(res.max_error());
        }
        let effs: Vec<f64> = res
            .record_ids
            .iter()
            .map(|id| host.db.get(*id).expect("record").efficiency.iops_per_watt)
            .collect();
        if effs.windows(2).all(|w| w[1] > w[0] * 0.97) {
            monotone_modes += 1;
        }
        let last = host.db.get(*res.record_ids.last().unwrap()).unwrap();
        row(&[
            mode.request_bytes.to_string(),
            mode.random_pct.to_string(),
            mode.read_pct.to_string(),
            f(last.perf.iops),
            f(last.efficiency.iops_per_watt),
            f(res.max_error() * 100.0),
        ]);
    }
    println!(
        "\nworst control error {:.2} % ({:.2} % excluding fully sequential modes) over {} \
         measurements; efficiency monotone in load for {}/{} modes",
        worst_err * 100.0,
        worst_mixed_err * 100.0,
        cfg.run_count(),
        monotone_modes,
        cfg.modes.len()
    );

    let out = std::path::Path::new("target").join("sweep125_results.json");
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    host.db.save(&out).expect("save results");
    println!("records: {} -> {}", host.db.len(), out.display());
    json_result(
        "sweep125",
        &serde_json::json!({
            "runs": cfg.run_count(),
            "workers": exec.workers(),
            "sweep_seconds": sweep_seconds,
            "worst_error": worst_err,
            "worst_error_excl_pure_sequential": worst_mixed_err,
            "monotone_modes": monotone_modes,
            "total_modes": cfg.modes.len(),
        }),
    );
    assert!(worst_mixed_err < 0.06, "campaign-wide control error too large: {worst_mixed_err}");
    assert!(
        monotone_modes * 10 >= cfg.modes.len() * 9,
        "efficiency should grow with load for (nearly) every mode"
    );
}
