//! Energy-conservation technique comparison (the paper's §VII programme).
//!
//! Reproduces a Table-I-style evaluation with TRACER itself: MAID-style
//! spin-down, eRAID-style degraded parity, and power-aware caching, each
//! scored by energy saving versus response-time penalty on two contrasting
//! workloads — an archival (sparse) trace where spin-down shines, and a busy
//! web-server trace where it cannot help.

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;
use tracer_core::techniques::PolicyOutcome;

fn sparse_archival_trace() -> Trace {
    // One burst of reads every ~2 minutes over an hour: MAID's home turf.
    Trace::from_bunches(
        "archival",
        (0..30u64)
            .map(|i| {
                Bunch::new(
                    i * 120_000_000_000,
                    (0..4)
                        .map(|j| IoPackage::read((i * 64 + j) * 8192 % 50_000_000, 65536))
                        .collect(),
                )
            })
            .collect(),
    )
}

fn policies() -> Vec<ConservationPolicy> {
    vec![
        ConservationPolicy::SpinDown { idle_timeout: SimDuration::from_secs(15) },
        ConservationPolicy::DegradedParity { parked_disk: 0 },
        ConservationPolicy::WriteBackCache,
    ]
}

fn print_outcomes(outcomes: &[PolicyOutcome]) {
    row(&[
        "policy".into(),
        "joules".into(),
        "watts".into(),
        "avg ms".into(),
        "saving %".into(),
        "penalty %".into(),
    ]);
    for o in outcomes {
        row(&[
            o.policy.clone(),
            f(o.energy_joules),
            f(o.avg_watts),
            f(o.avg_response_ms),
            f(o.energy_saving_pct),
            f(o.response_penalty_pct),
        ]);
    }
}

fn main() {
    banner("techniques", "energy-conservation policies under TRACER (Table I programme)");
    let mut host = EvaluationHost::new();
    let mode = WorkloadMode::peak(22 * 1024, 50, 90);

    println!("\n[archival workload — long idle gaps]");
    let archival = timed("archival", || {
        compare_policies(
            &mut host,
            || tracer_sim::ArraySpec::hdd_raid5(6).parts(),
            &sparse_archival_trace(),
            WorkloadMode::peak(65536, 50, 100),
            &policies(),
            "policies-archival",
        )
    });
    print_outcomes(&archival);

    println!("\n[busy web-server workload]");
    let web =
        WebServerTraceBuilder { duration_s: 300.0, mean_iops: 200.0, ..Default::default() }.build();
    let busy = timed("web", || {
        compare_policies(
            &mut host,
            || tracer_sim::ArraySpec::hdd_raid5(6).parts(),
            &web,
            mode,
            &policies(),
            "policies-web",
        )
    });
    print_outcomes(&busy);

    // Shape checks: spin-down saves a lot on archival, (almost) nothing on
    // the busy trace; degraded parity saves on both but always costs latency.
    let by_name = |set: &[PolicyOutcome], name: &str| -> PolicyOutcome {
        set.iter()
            .find(|o| o.policy.starts_with(name))
            .unwrap_or_else(|| panic!("{name} missing"))
            .clone()
    };
    let spin_archival = by_name(&archival, "spin-down");
    let spin_busy = by_name(&busy, "spin-down");
    let degraded_busy = by_name(&busy, "degraded");
    println!(
        "\nspin-down saving: archival {:.1} % vs busy {:.1} % — conservation techniques \
         only pay off when idle time exists, which is exactly why TRACER's load control \
         matters for comparing them.",
        spin_archival.energy_saving_pct, spin_busy.energy_saving_pct
    );
    json_result(
        "ablation_energy_policies",
        &serde_json::json!({
            "archival": archival,
            "busy": busy,
        }),
    );
    assert!(spin_archival.energy_saving_pct > 25.0, "{}", spin_archival.energy_saving_pct);
    assert!(spin_busy.energy_saving_pct < 5.0, "{}", spin_busy.energy_saving_pct);
    assert!(spin_archival.response_penalty_pct > 0.0);
    assert!(degraded_busy.energy_saving_pct > 0.0);
    assert!(degraded_busy.response_penalty_pct > 0.0);
}
