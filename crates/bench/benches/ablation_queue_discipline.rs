//! Ablation — FIFO versus C-LOOK elevator scheduling at the member disks.
//!
//! The testbed's disks serve their queues in arrival order by default; an
//! elevator shortens seeks under backlog. This ablation measures the makespan,
//! mean latency, and energy of a scattered backlog under both disciplines —
//! seek time is also seek *power*, so the elevator saves energy too.

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;
use tracer_sim::{ArraySim, Device, QueueDiscipline};

fn build(discipline: QueueDiscipline) -> ArraySim {
    let (mut cfg, devices): (_, Vec<Device>) = tracer_sim::ArraySpec::hdd_raid5(4).parts();
    cfg.queue_discipline = discipline;
    ArraySim::new(cfg, devices)
}

fn scattered_backlog(n: u64) -> Trace {
    Trace::from_bunches(
        "backlog",
        (0..n)
            .map(|i| {
                // All requests arrive in one burst, scattered over the space.
                Bunch::new(i / 64, vec![IoPackage::read((i * 48_271) % 400_000 * 256, 4096)])
            })
            .collect(),
    )
}

fn main() {
    banner("ablation", "FIFO vs C-LOOK elevator under a scattered backlog");
    let trace = scattered_backlog(1_500);
    let mut rows = Vec::new();
    timed("replays", || {
        row(&[
            "discipline".into(),
            "makespan s".into(),
            "avg ms".into(),
            "p95 ms".into(),
            "joules".into(),
        ]);
        for (name, disc) in
            [("fifo", QueueDiscipline::Fifo), ("elevator", QueueDiscipline::Elevator)]
        {
            let mut sim = build(disc);
            let report = replay(&mut sim, &trace, &ReplayConfig::default());
            let joules = sim.power_log().energy_joules(report.started, report.finished);
            row(&[
                name.to_string(),
                f(report.span().as_secs_f64()),
                f(report.summary.avg_response_ms),
                f(report.summary.p95_response_ms),
                f(joules),
            ]);
            rows.push((name, report.span().as_secs_f64(), report.summary.avg_response_ms, joules));
        }
    });

    let (fifo, elevator) = (&rows[0], &rows[1]);
    let faster = elevator.1 < fifo.1;
    let cheaper = elevator.3 < fifo.3;
    println!(
        "\nelevator makespan {:.2}s vs fifo {:.2}s ({:.0}% faster); energy {:.0}J vs {:.0}J",
        elevator.1,
        fifo.1,
        (1.0 - elevator.1 / fifo.1) * 100.0,
        elevator.3,
        fifo.3
    );
    json_result(
        "ablation_queue_discipline",
        &serde_json::json!({
            "fifo": {"makespan_s": fifo.1, "avg_ms": fifo.2, "joules": fifo.3},
            "elevator": {"makespan_s": elevator.1, "avg_ms": elevator.2, "joules": elevator.3},
            "elevator_faster": faster,
            "elevator_cheaper": cheaper,
        }),
    );
    assert!(faster, "elevator must beat FIFO on a scattered backlog");
    assert!(cheaper, "shorter seeks must save energy");
}
