//! §VI-G — solid-state disks: energy efficiency of the SSD-based RAID-5.
//!
//! The paper builds a RAID-5 from four 32 GB SLC SSDs (idle ~3.5 W each) and
//! observes: the SSD array is more energy-efficient than the HDD array;
//! active-mode efficiency depends strongly on the random ratio (high random →
//! lower efficiency) and on the read ratio.

use tracer_bench::{banner, f, json_result, row, timed};
use tracer_core::prelude::*;
use tracer_workload::iometer::run_peak_workload;

fn measure(
    host: &mut EvaluationHost,
    build: fn() -> ArraySim,
    mode: WorkloadMode,
) -> EfficiencyMetrics {
    let mut sim = build();
    let trace = run_peak_workload(
        &mut sim,
        &IometerConfig {
            duration: SimDuration::from_secs(10),
            ..IometerConfig::two_minutes(mode, 12)
        },
    )
    .trace;
    let mut sim = build();
    let measured =
        EvaluationHost::measure_test(host.meter_cycle_ms, &mut sim, &trace, mode, 100, "ssd");
    host.commit(measured).metrics
}

fn main() {
    banner("§VI-G", "SSD RAID-5 energy efficiency");
    let mut host = EvaluationHost::new();

    let ssd_idle = ArraySpec::ssd_raid5(4).build().power_log().total_watts_at(SimTime::ZERO);
    let hdd_idle = ArraySpec::hdd_raid5(6).build().power_log().total_watts_at(SimTime::ZERO);
    println!(
        "idle: ssd array {ssd_idle:.1} W (4 x 3.5 W SSDs + chassis), hdd array {hdd_idle:.1} W"
    );

    banner("random-ratio sweep", "16K, 50% read — MBPS/Kilowatt");
    row(&["rand %".into(), "hdd".into(), "ssd".into(), "ssd/hdd".into()]);
    let mut ssd_random = Vec::new();
    timed("random-sweep", || {
        for rnd in [0u8, 25, 50, 75, 100] {
            let mode = WorkloadMode::peak(16 * 1024, rnd, 50);
            let hdd =
                measure(&mut host, || ArraySpec::hdd_raid5(6).build(), mode).mbps_per_kilowatt;
            let ssd =
                measure(&mut host, || ArraySpec::ssd_raid5(4).build(), mode).mbps_per_kilowatt;
            row(&[rnd.to_string(), f(hdd), f(ssd), f(ssd / hdd.max(1e-9))]);
            ssd_random.push((hdd, ssd));
        }
    });

    banner("read-ratio sweep", "16K, sequential — MBPS/Kilowatt");
    row(&["read %".into(), "hdd".into(), "ssd".into(), "ssd/hdd".into()]);
    let mut ssd_read = Vec::new();
    timed("read-sweep", || {
        for rd in [0u8, 25, 50, 75, 100] {
            let mode = WorkloadMode::peak(16 * 1024, 0, rd);
            let hdd =
                measure(&mut host, || ArraySpec::hdd_raid5(6).build(), mode).mbps_per_kilowatt;
            let ssd =
                measure(&mut host, || ArraySpec::ssd_raid5(4).build(), mode).mbps_per_kilowatt;
            row(&[rd.to_string(), f(hdd), f(ssd), f(ssd / hdd.max(1e-9))]);
            ssd_read.push((hdd, ssd));
        }
    });

    // Shape checks.
    let ssd_always_wins = ssd_random.iter().chain(&ssd_read).all(|&(hdd, ssd)| ssd > hdd);
    let ssd_random_hurts = ssd_random[0].1 > ssd_random[4].1;
    let read_spread = {
        let vals: Vec<f64> = ssd_read.iter().map(|&(_, s)| s).collect();
        let max = vals.iter().cloned().fold(0.0f64, f64::max);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        (max - min) / max
    };
    let read_sensitive = read_spread > 0.3;
    println!("\nssd beats hdd everywhere ........ {}", if ssd_always_wins { "yes" } else { "NO" });
    println!("high random lowers ssd eff ...... {}", if ssd_random_hurts { "yes" } else { "NO" });
    println!(
        "ssd strongly read-ratio-sensitive {} (spread {:.0} %)",
        if read_sensitive { "yes" } else { "NO" },
        read_spread * 100.0
    );
    println!(
        "note: the paper additionally reports *low* read ratios as relatively\n\
         efficient on its SSD array; with the controller cache disabled our\n\
         explicit RAID-5 read-modify-write makes small writes pay full parity\n\
         cost, so the write end sits lower here (documented in EXPERIMENTS.md)."
    );
    json_result(
        "ssd_raid",
        &serde_json::json!({
            "ssd_idle_watts": ssd_idle,
            "hdd_idle_watts": hdd_idle,
            "random_sweep_hdd_ssd": ssd_random,
            "read_sweep_hdd_ssd": ssd_read,
            "ssd_always_wins": ssd_always_wins,
            "ssd_random_hurts": ssd_random_hurts,
            "read_spread": read_spread,
        }),
    );
    assert!(ssd_always_wins, "SSD array must be the more efficient one");
    assert!(ssd_random_hurts, "high random ratio must lower SSD efficiency");
    assert!(read_sensitive, "SSD efficiency must depend on read ratio");
}
