//! Shared helpers for the TRACER benchmark harness.
//!
//! Every bench target regenerates one table or figure from the paper's
//! evaluation section (see DESIGN.md's experiment index). These helpers keep
//! the output format consistent: a header naming the paper artefact, aligned
//! columns, and a machine-readable JSON line so EXPERIMENTS.md can be kept in
//! sync by scripts.

use std::time::Instant;
use tracer_core::scenario::{run_scenario, ScenarioOutcome, ScenarioSpec};

/// Load a checked-in scenario file from `examples/scenarios/` at the
/// workspace root. Panics with the parser's line-numbered message on error,
/// which is exactly what a bench target wants.
pub fn scenario(file: &str) -> ScenarioSpec {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios")
        .join(file);
    ScenarioSpec::from_file(&path).unwrap_or_else(|e| panic!("{e}"))
}

/// Run a scenario twice — serial and on a four-worker pool — and assert the
/// rendered reports are byte-identical before handing back the outcome. The
/// figure benches funnel through this so every regeneration doubles as a
/// determinism check on the sweep executor.
pub fn run_scenario_differential(spec: &ScenarioSpec) -> ScenarioOutcome {
    let mut serial = spec.clone();
    serial.workers = 1;
    let mut pooled = spec.clone();
    pooled.workers = 4;
    let baseline = run_scenario(&serial).unwrap_or_else(|e| panic!("{e}"));
    let outcome = run_scenario(&pooled).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        baseline.report, outcome.report,
        "scenario {} must render byte-identical reports at 1 and 4 workers",
        spec.name
    );
    outcome
}

/// Extract one metric from a scenario outcome as series of `chunk` points,
/// in grid order (cells are mode-major, load-minor). The figure benches pick
/// the chunk that matches their inner axis: loads per mode for the load
/// sweeps, the inner workload-grid dimension for the single-load grids.
pub fn metric_series(
    outcome: &ScenarioOutcome,
    chunk: usize,
    metric: impl Fn(&tracer_core::EfficiencyMetrics) -> f64,
) -> Vec<Vec<f64>> {
    assert_eq!(outcome.cells.len() % chunk, 0, "cell count must tile into series");
    outcome
        .cells
        .chunks(chunk)
        .map(|series| series.iter().map(|cell| metric(&cell.metrics)).collect())
        .collect()
}

/// Print the banner for one experiment.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Print an aligned row of cells.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Format a float cell.
pub fn f(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// Emit the machine-readable result line.
pub fn json_result(id: &str, value: &serde_json::Value) {
    println!("RESULT {id} {value}");
}

/// Human-readable byte size for labels (512B, 4K, 1M…).
pub fn size_label(bytes: u32) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Unicode sparkline of a series (8 block levels), for at-a-glance trends in
/// bench output.
pub fn spark(series: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let max = series.iter().cloned().fold(f64::MIN, f64::max);
    let min = series.iter().cloned().fold(f64::MAX, f64::min);
    let range = (max - min).max(f64::MIN_POSITIVE);
    series
        .iter()
        .map(|v| {
            let scaled = ((v - min) / range) * 7.0;
            // NaN inputs produce a NaN scale; `as usize` would pin them to 0
            // silently, so render them at the floor on purpose.
            let idx = if scaled.is_nan() { 0 } else { scaled.round() as usize };
            BLOCKS[idx.min(7)]
        })
        .collect()
}

/// Run a closure, printing its wall-clock time (bench targets report how long
/// each experiment regeneration takes).
pub fn timed<T>(label: &str, body: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = body();
    println!("[{label}: {:.2}s]", t0.elapsed().as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_loads_and_runs_identically() {
        // The checked-in smoke scenario must parse and render the same
        // report serially and on the pool — the same differential every
        // figure bench asserts, kept here so plain `cargo test` covers it.
        let spec = scenario("smoke.toml");
        assert_eq!(spec.cells(), 3, "two configured loads plus the implied baseline");
        let outcome = run_scenario_differential(&spec);
        assert_eq!(outcome.cells.len(), 3);
        assert!(outcome.report.starts_with("scenario name=smoke "));
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(512), "512B");
        assert_eq!(size_label(4096), "4K");
        assert_eq!(size_label(65536), "64K");
        assert_eq!(size_label(1 << 20), "1M");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.99266), "0.9927");
        assert_eq!(f(12345.6), "12345.6");
    }

    #[test]
    fn timed_passes_value_through() {
        assert_eq!(timed("t", || 42), 42);
    }

    #[test]
    fn sparklines() {
        assert_eq!(spark(&[]), "");
        assert_eq!(spark(&[1.0]), "▁");
        let s = spark(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        // Flat series stays at the floor.
        assert_eq!(spark(&[5.0, 5.0, 5.0]), "▁▁▁");
        // NaN elements render at the floor instead of panicking or skewing.
        let s = spark(&[0.0, f64::NAN, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().nth(1), Some('▁'));
        // An all-NaN series must not index out of bounds either.
        assert_eq!(spark(&[f64::NAN, f64::NAN]).chars().count(), 2);
    }

    #[test]
    fn obs_histogram_sparklines_survive_degenerate_shapes() {
        // Guard next to the bench spark tests: obs histograms render with
        // their own sparkline, and the degenerate shapes a histogram actually
        // produces (no samples, one occupied bucket) must not panic or skew.
        assert_eq!(tracer_obs::spark(&[]), "");
        assert_eq!(tracer_obs::spark(&[7.0]), "█", "one bucket is one full block");
        assert_eq!(tracer_obs::spark(&[0.0, 0.0]), "▁▁", "all-zero stays at the floor");
        assert_eq!(tracer_obs::spark(&[f64::NAN, 1.0]).chars().count(), 2);

        let h = tracer_obs::histogram("bench.spark_guard");
        assert_eq!(h.snapshot().spark(), "", "empty histogram renders empty");
        h.record(9);
        assert_eq!(h.snapshot().spark(), "█", "single-bucket histogram is one block");
    }
}
