//! `check_regression` — gate CI on `RESULT` lines from the perf benchmarks.
//!
//! Reads bench output from stdin, extracts every `RESULT <id> <json>` line,
//! and compares the metrics named in a baseline file against their recorded
//! floors/ceilings. A higher-is-better metric regresses when it drops below
//! `baseline / factor`; a lower-is-better metric regresses when it exceeds
//! `baseline * factor` (factor defaults to 2, i.e. a >2× regression fails).
//!
//! Baseline format (JSON, one entry per RESULT id):
//!
//! ```json
//! {
//!   "perf_trace_ingest": {
//!     "metric": "serial_events_per_sec",
//!     "direction": "higher",
//!     "baseline": 100000.0
//!   }
//! }
//! ```
//!
//! Entries may also carry informational fields (ignored here) such as the
//! measured value the baseline was derived from. Missing RESULT ids warn but
//! do not fail, so partial bench runs stay usable; malformed input fails.
//!
//! Usage: `cargo bench ... | cargo run -p tracer-bench --bin check_regression -- BENCH.json`

use std::collections::HashMap;
use std::io::Read;
use std::process::ExitCode;

struct Check {
    metric: String,
    direction: Direction,
    baseline: f64,
    factor: f64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Higher,
    Lower,
}

fn as_str(value: Option<&serde_json::Value>) -> Option<&str> {
    match value {
        Some(serde_json::Value::Str(s)) => Some(s),
        _ => None,
    }
}

fn parse_baselines(raw: &str) -> Result<HashMap<String, Check>, String> {
    let doc: serde_json::Value =
        serde_json::from_str(raw).map_err(|e| format!("baseline file is not JSON: {e}"))?;
    let serde_json::Value::Map(entries) = doc else {
        return Err("baseline file must be a JSON object".to_string());
    };
    let mut checks = HashMap::new();
    for (id, spec) in &entries {
        let metric =
            as_str(spec.get("metric")).ok_or_else(|| format!("{id}: missing \"metric\""))?;
        let direction = match as_str(spec.get("direction")) {
            Some("higher") => Direction::Higher,
            Some("lower") => Direction::Lower,
            other => return Err(format!("{id}: direction must be higher/lower, got {other:?}")),
        };
        let baseline = spec
            .get("baseline")
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("{id}: missing numeric \"baseline\""))?;
        let factor = spec.get("factor").and_then(serde_json::Value::as_f64).unwrap_or(2.0);
        // NaN must be rejected too, hence the explicit is_nan checks.
        if baseline.is_nan() || baseline <= 0.0 || factor.is_nan() || factor < 1.0 {
            return Err(format!("{id}: baseline must be > 0 and factor >= 1"));
        }
        checks
            .insert(id.clone(), Check { metric: metric.to_string(), direction, baseline, factor });
    }
    Ok(checks)
}

fn results_from(input: &str) -> HashMap<String, serde_json::Value> {
    let mut results = HashMap::new();
    for line in input.lines() {
        let Some(rest) = line.trim().strip_prefix("RESULT ") else { continue };
        let Some((id, json)) = rest.split_once(' ') else { continue };
        if let Ok(value) = serde_json::from_str::<serde_json::Value>(json) {
            // Later lines win: reruns within one bench invocation supersede.
            results.insert(id.to_string(), value);
        }
    }
    results
}

fn main() -> ExitCode {
    let Some(baseline_path) = std::env::args().nth(1) else {
        eprintln!("usage: check_regression <baseline.json>  (bench output on stdin)");
        return ExitCode::FAILURE;
    };
    let raw = match std::fs::read_to_string(&baseline_path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("check_regression: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let checks = match parse_baselines(&raw) {
        Ok(checks) => checks,
        Err(e) => {
            eprintln!("check_regression: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut input = String::new();
    if std::io::stdin().read_to_string(&mut input).is_err() {
        eprintln!("check_regression: failed to read stdin");
        return ExitCode::FAILURE;
    }
    let results = results_from(&input);

    let mut failed = false;
    let mut ids: Vec<&String> = checks.keys().collect();
    ids.sort();
    for id in ids {
        let check = &checks[id];
        let Some(value) =
            results.get(id).and_then(|r| r.get(&check.metric)).and_then(serde_json::Value::as_f64)
        else {
            println!("WARN  {id}: no RESULT line carrying {:?}; skipped", check.metric);
            continue;
        };
        let (ok, bound) = match check.direction {
            Direction::Higher => {
                (value >= check.baseline / check.factor, check.baseline / check.factor)
            }
            Direction::Lower => {
                (value <= check.baseline * check.factor, check.baseline * check.factor)
            }
        };
        if ok {
            println!("OK    {id}: {} = {value:.3} (bound {bound:.3})", check.metric);
        } else {
            println!(
                "FAIL  {id}: {} = {value:.3} regressed past {bound:.3} \
                 (baseline {:.3}, factor {})",
                check.metric, check.baseline, check.factor
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
