//! Power-analyzer emulation for the TRACER framework.
//!
//! The paper instruments its disk array with a Kingsin KS706 multifunction
//! power meter: a Hall-effect current loop around the 220 V AC supply plus
//! voltage probes, sampled on a configurable cycle (default one second) and
//! streamed to the evaluation host (§III-A3, §V-A). This crate reproduces that
//! measurement pipeline on top of the simulator's exact power timelines:
//!
//! * [`meter::PowerMeter`] — converts a [`tracer_sim::ArrayPowerLog`] into
//!   periodic [`meter::PowerSample`]s (volts, amps, watts), optionally with
//!   Hall-sensor gaussian noise;
//! * [`analyzer::PowerAnalyzer`] — the multi-channel instrument: one channel
//!   per storage system under test, AC or DC, with start/stop measurement
//!   control and per-channel [`analyzer::EnergyReport`]s;
//! * energy ground truth stays exact: reports carry both the sampled view and
//!   the exact integral, so sampling error itself can be studied;
//! * [`thermal::ThermalModel`] — the paper's future-work temperature metric:
//!   a first-order RC model evaluated exactly over the power signal.
//!
//! # Example
//!
//! ```
//! use tracer_power::PowerAnalyzer;
//! use tracer_sim::{ArrayPowerLog, SimTime};
//!
//! // A 16 W chassis with two 5 W idle disks, measured for 10 s.
//! let log = ArrayPowerLog::new(16.0, &[5.0, 5.0]);
//! let report = PowerAnalyzer::measure_window(&log, SimTime::ZERO, SimTime::from_secs(10));
//! assert_eq!(report.samples.len(), 10);          // 1 s sampling cycle
//! assert!((report.avg_watts - 26.0).abs() < 1e-9);
//! assert!((report.exact_joules - 260.0).abs() < 1e-9);
//! ```

pub mod analyzer;
pub mod meter;
pub mod thermal;

pub use analyzer::{Channel, ChannelKind, EnergyReport, PowerAnalyzer};
pub use meter::{NoiseModel, PowerMeter, PowerSample};
pub use thermal::{TempSample, ThermalModel, ThermalReport};
