//! Multi-channel power analyzer.
//!
//! The paper's instrument "has multiple channels that allow the energy
//! efficiency of multiple storage systems to be tested simultaneously" and
//! "different power testing channels for both DC and AC power supplies"
//! (§III-A3). A [`PowerAnalyzer`] owns a set of named channels; a measurement
//! is started, the workload runs, and finalizing yields an [`EnergyReport`]
//! per channel carrying the sampled records plus the exact integral.

use crate::meter::{PowerMeter, PowerSample};
use serde::{Deserialize, Serialize};
use tracer_sim::{ArrayPowerLog, SimDuration, SimTime};

/// Supply type of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Mains AC channel (Hall-loop + probe pair), given supply voltage.
    Ac {
        /// Supply voltage, volts.
        volts: f64,
    },
    /// DC channel, given rail voltage.
    Dc {
        /// Rail voltage, volts.
        volts: f64,
    },
}

impl ChannelKind {
    /// The channel's measurement voltage.
    pub fn volts(&self) -> f64 {
        match *self {
            ChannelKind::Ac { volts } | ChannelKind::Dc { volts } => volts,
        }
    }
}

/// One analyzer channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Channel label (e.g. the array under test).
    pub name: String,
    /// AC or DC measurement.
    pub kind: ChannelKind,
    /// The sampling meter used on this channel.
    pub meter: PowerMeter,
}

impl Channel {
    /// A 220 V AC channel with the default 1 s meter (the paper's setup).
    pub fn ac_220v(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: ChannelKind::Ac { volts: 220.0 },
            meter: PowerMeter::default(),
        }
    }

    /// A DC channel at `volts` with the default meter.
    pub fn dc(name: impl Into<String>, volts: f64) -> Self {
        let meter = PowerMeter { volts, ..Default::default() };
        Self { name: name.into(), kind: ChannelKind::Dc { volts }, meter }
    }
}

/// Result of one measurement on one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Channel label.
    pub channel: String,
    /// Measurement window start.
    pub from: SimTime,
    /// Measurement window end.
    pub to: SimTime,
    /// Per-cycle meter records.
    pub samples: Vec<PowerSample>,
    /// Energy from the sampled records, joules.
    pub sampled_joules: f64,
    /// Exact integrated energy, joules (simulation ground truth).
    pub exact_joules: f64,
    /// Mean power over the window from the exact integral, watts.
    pub avg_watts: f64,
}

impl EnergyReport {
    /// Measurement window length.
    pub fn span(&self) -> SimDuration {
        self.to - self.from
    }

    /// Relative sampling/noise error versus the exact integral.
    pub fn sampling_error(&self) -> f64 {
        if self.exact_joules > 0.0 {
            (self.sampled_joules - self.exact_joules).abs() / self.exact_joules
        } else {
            0.0
        }
    }
}

/// The multi-channel instrument.
#[derive(Debug, Clone, Default)]
pub struct PowerAnalyzer {
    channels: Vec<Channel>,
    armed_at: Option<SimTime>,
}

impl PowerAnalyzer {
    /// Empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a channel; returns its index.
    pub fn add_channel(&mut self, channel: Channel) -> usize {
        self.channels.push(channel);
        self.channels.len() - 1
    }

    /// Configured channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Arm the measurement at `at` (the evaluation host's "initialize the
    /// power analyzer" command).
    pub fn start(&mut self, at: SimTime) {
        self.armed_at = Some(at);
    }

    /// Whether a measurement is in progress.
    pub fn is_running(&self) -> bool {
        self.armed_at.is_some()
    }

    /// Finalize the measurement at `to`, producing one report per channel.
    /// `logs` supplies, per channel index, the power log it observes.
    ///
    /// # Panics
    /// Panics if the analyzer was never started, if `to` precedes the start,
    /// or if `logs` does not match the channel count.
    pub fn finalize(&mut self, to: SimTime, logs: &[&ArrayPowerLog]) -> Vec<EnergyReport> {
        let from = self.armed_at.take().expect("finalize without start");
        assert!(to >= from, "measurement end precedes start");
        assert_eq!(logs.len(), self.channels.len(), "one log per channel required");
        self.channels
            .iter()
            .zip(logs)
            .map(|(ch, log)| {
                let samples = ch.meter.sample(log, from, to);
                let sampled_joules = PowerMeter::sampled_energy(&samples);
                let exact_joules = log.energy_joules(from, to);
                let span = (to - from).as_secs_f64();
                EnergyReport {
                    channel: ch.name.clone(),
                    from,
                    to,
                    samples,
                    sampled_joules,
                    exact_joules,
                    avg_watts: if span > 0.0 { exact_joules / span } else { 0.0 },
                }
            })
            .collect()
    }

    /// One-shot convenience: measure a single log over a window with a fresh
    /// 220 V AC channel.
    pub fn measure_window(log: &ArrayPowerLog, from: SimTime, to: SimTime) -> EnergyReport {
        let mut analyzer = PowerAnalyzer::new();
        analyzer.add_channel(Channel::ac_220v("array"));
        analyzer.start(from);
        analyzer.finalize(to, &[log]).pop().expect("one channel")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(chassis: f64) -> ArrayPowerLog {
        ArrayPowerLog::new(chassis, &[5.0])
    }

    #[test]
    fn single_channel_measurement() {
        let l = log(20.0);
        let report = PowerAnalyzer::measure_window(&l, SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(report.samples.len(), 10);
        assert!((report.exact_joules - 250.0).abs() < 1e-9);
        assert!((report.sampled_joules - 250.0).abs() < 1e-6);
        assert!((report.avg_watts - 25.0).abs() < 1e-9);
        assert!(report.sampling_error() < 1e-9);
        assert_eq!(report.span(), SimDuration::from_secs(10));
    }

    #[test]
    fn multi_channel_parallel_measurement() {
        // The paper's distributed setup: several arrays measured in parallel.
        let l1 = log(10.0);
        let l2 = log(30.0);
        let mut analyzer = PowerAnalyzer::new();
        analyzer.add_channel(Channel::ac_220v("raid5-hdd"));
        analyzer.add_channel(Channel::ac_220v("raid5-ssd"));
        assert!(!analyzer.is_running());
        analyzer.start(SimTime::from_secs(1));
        assert!(analyzer.is_running());
        let reports = analyzer.finalize(SimTime::from_secs(3), &[&l1, &l2]);
        assert!(!analyzer.is_running());
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].channel, "raid5-hdd");
        assert!((reports[0].avg_watts - 15.0).abs() < 1e-9);
        assert!((reports[1].avg_watts - 35.0).abs() < 1e-9);
    }

    #[test]
    fn dc_channel_voltage() {
        let ch = Channel::dc("ssd-rail", 12.0);
        assert_eq!(ch.kind.volts(), 12.0);
        assert_eq!(ch.meter.volts, 12.0);
        let ch = Channel::ac_220v("x");
        assert_eq!(ch.kind.volts(), 220.0);
    }

    #[test]
    #[should_panic(expected = "finalize without start")]
    fn finalize_requires_start() {
        let l = log(1.0);
        PowerAnalyzer::new().finalize(SimTime::from_secs(1), &[&l]);
    }

    #[test]
    #[should_panic(expected = "one log per channel")]
    fn finalize_checks_log_count() {
        let mut analyzer = PowerAnalyzer::new();
        analyzer.add_channel(Channel::ac_220v("a"));
        analyzer.start(SimTime::ZERO);
        analyzer.finalize(SimTime::from_secs(1), &[]);
    }

    #[test]
    fn zero_length_window() {
        let l = log(10.0);
        let report =
            PowerAnalyzer::measure_window(&l, SimTime::from_secs(2), SimTime::from_secs(2));
        assert!(report.samples.is_empty());
        assert_eq!(report.exact_joules, 0.0);
        assert_eq!(report.avg_watts, 0.0);
        assert_eq!(report.sampling_error(), 0.0);
    }
}
