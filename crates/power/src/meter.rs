//! Sampled power meter: the Hall-effect sensor + sampling-cycle emulation.
//!
//! A real meter integrates the instantaneous power over each sampling cycle
//! and reports one record per cycle. [`PowerMeter`] does the same against the
//! simulator's exact [`ArrayPowerLog`]: each sample's wattage is the true mean
//! over the cycle, optionally perturbed by a gaussian sensor-noise model. The
//! current reading is derived from the supply voltage (`amps = watts / volts`)
//! exactly as the paper's record schema stores it (average current, voltage,
//! and power per record, §III-A1).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use tracer_sim::{ArrayPowerLog, SimDuration, SimTime};

/// One meter record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Start of the sampling cycle.
    pub at: SimTime,
    /// Cycle length.
    pub cycle: SimDuration,
    /// Supply voltage, volts.
    pub volts: f64,
    /// Mean current over the cycle, amperes.
    pub amps: f64,
    /// Mean power over the cycle, watts.
    pub watts: f64,
}

impl PowerSample {
    /// Energy represented by this sample, joules.
    pub fn joules(&self) -> f64 {
        self.watts * self.cycle.as_secs_f64()
    }
}

/// Gaussian multiplicative sensor noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Relative standard deviation (e.g. 0.01 = 1 % of reading).
    pub relative_sigma: f64,
    /// RNG seed; a fixed seed keeps runs reproducible.
    pub seed: u64,
}

/// The sampling meter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMeter {
    /// Sampling cycle; the paper's default is one second, configurable.
    pub cycle: SimDuration,
    /// Supply voltage, volts (the paper's array runs on 220 V AC).
    pub volts: f64,
    /// Optional sensor noise.
    pub noise: Option<NoiseModel>,
    /// Display resolution in watts (0 = continuous). Bench power meters
    /// quantize their readout; the KS706 class reads to 0.1 W.
    pub resolution_w: f64,
}

impl Default for PowerMeter {
    fn default() -> Self {
        Self { cycle: SimDuration::from_secs(1), volts: 220.0, noise: None, resolution_w: 0.0 }
    }
}

impl PowerMeter {
    /// Meter with a custom sampling cycle and the default 220 V supply.
    pub fn with_cycle(cycle: SimDuration) -> Self {
        Self { cycle, ..Default::default() }
    }

    /// Sample `log` over `[from, to)`. The final partial cycle (if any) is
    /// reported with its true, shorter length so that summed sample energy
    /// equals integrated energy when noise is disabled.
    pub fn sample(&self, log: &ArrayPowerLog, from: SimTime, to: SimTime) -> Vec<PowerSample> {
        assert!(!self.cycle.is_zero(), "sampling cycle must be positive");
        let mut rng = self.noise.map(|n| StdRng::seed_from_u64(n.seed));
        let mut out = Vec::new();
        let mut cursor = from;
        while cursor < to {
            let end = (cursor + self.cycle).min(to);
            let cycle = end - cursor;
            let mut watts = log.avg_watts(cursor, end);
            if let (Some(rng), Some(noise)) = (rng.as_mut(), self.noise.as_ref()) {
                watts *= 1.0 + gaussian(rng) * noise.relative_sigma;
                watts = watts.max(0.0);
            }
            if self.resolution_w > 0.0 {
                watts = (watts / self.resolution_w).round() * self.resolution_w;
            }
            out.push(PowerSample {
                at: cursor,
                cycle,
                volts: self.volts,
                amps: watts / self.volts,
                watts,
            });
            cursor = end;
        }
        out
    }

    /// Total energy of a sample series, joules.
    pub fn sampled_energy(samples: &[PowerSample]) -> f64 {
        samples.iter().map(PowerSample::joules).sum()
    }

    /// Mean power of a sample series, watts (cycle-weighted).
    pub fn sampled_avg_watts(samples: &[PowerSample]) -> f64 {
        let span: f64 = samples.iter().map(|s| s.cycle.as_secs_f64()).sum();
        if span > 0.0 {
            Self::sampled_energy(samples) / span
        } else {
            0.0
        }
    }
}

/// Standard-normal deviate via Box–Muller (rand provides no distributions in
/// the allowed dependency set).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn step_log() -> ArrayPowerLog {
        let mut log = ArrayPowerLog::new(10.0, &[5.0]);
        log.devices[0].set(SimTime::from_secs(2), 15.0);
        log.devices[0].set(SimTime::from_secs(4), 5.0);
        log
    }

    #[test]
    fn samples_cover_window_exactly() {
        let meter = PowerMeter::default();
        let samples = meter.sample(&step_log(), SimTime::ZERO, SimTime::from_secs(5));
        assert_eq!(samples.len(), 5);
        assert!(samples.iter().all(|s| s.cycle == SimDuration::from_secs(1)));
        // [0,2): 15W, [2,4): 25W, [4,5): 15W
        assert!((samples[0].watts - 15.0).abs() < 1e-9);
        assert!((samples[2].watts - 25.0).abs() < 1e-9);
        assert!((samples[4].watts - 15.0).abs() < 1e-9);
    }

    #[test]
    fn partial_final_cycle() {
        let meter = PowerMeter::with_cycle(SimDuration::from_secs(2));
        let samples = meter.sample(&step_log(), SimTime::ZERO, SimTime::from_secs(5));
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[2].cycle, SimDuration::from_secs(1));
    }

    #[test]
    fn sampled_energy_matches_exact_integral_without_noise() {
        let log = step_log();
        let meter = PowerMeter::with_cycle(SimDuration::from_millis(700));
        let samples = meter.sample(&log, SimTime::ZERO, SimTime::from_secs(6));
        let sampled = PowerMeter::sampled_energy(&samples);
        let exact = log.energy_joules(SimTime::ZERO, SimTime::from_secs(6));
        assert!((sampled - exact).abs() < 1e-6, "{sampled} vs {exact}");
        let avg = PowerMeter::sampled_avg_watts(&samples);
        assert!((avg - exact / 6.0).abs() < 1e-9);
    }

    #[test]
    fn current_is_power_over_voltage() {
        let meter = PowerMeter::default();
        let samples = meter.sample(&step_log(), SimTime::ZERO, SimTime::from_secs(1));
        let s = samples[0];
        assert!((s.amps - s.watts / 220.0).abs() < 1e-12);
        assert!((s.joules() - s.watts).abs() < 1e-12, "1s cycle: joules == watts");
    }

    #[test]
    fn noise_is_reproducible_and_bounded() {
        let log = step_log();
        let noisy = PowerMeter {
            noise: Some(NoiseModel { relative_sigma: 0.01, seed: 42 }),
            ..Default::default()
        };
        let a = noisy.sample(&log, SimTime::ZERO, SimTime::from_secs(5));
        let b = noisy.sample(&log, SimTime::ZERO, SimTime::from_secs(5));
        assert_eq!(a, b, "same seed, same samples");
        let clean = PowerMeter::default().sample(&log, SimTime::ZERO, SimTime::from_secs(5));
        let mut differs = false;
        for (n, c) in a.iter().zip(&clean) {
            assert!((n.watts - c.watts).abs() / c.watts < 0.10, "noise within 10 sigma");
            differs |= (n.watts - c.watts).abs() > 1e-12;
        }
        assert!(differs, "noise must actually perturb readings");
    }

    #[test]
    fn quantization_rounds_to_the_display_resolution() {
        let mut log = ArrayPowerLog::new(10.0, &[5.0]);
        log.devices[0].set(SimTime::from_millis(300), 5.07);
        let meter = PowerMeter { resolution_w: 0.1, ..Default::default() };
        let samples = meter.sample(&log, SimTime::ZERO, SimTime::from_secs(2));
        for s in &samples {
            let steps = s.watts / 0.1;
            assert!((steps - steps.round()).abs() < 1e-9, "not quantized: {}", s.watts);
        }
        // Quantization error is bounded by half a step per sample.
        let exact = log.energy_joules(SimTime::ZERO, SimTime::from_secs(2));
        let sampled = PowerMeter::sampled_energy(&samples);
        assert!((sampled - exact).abs() <= 0.05 * samples.len() as f64 + 1e-9);
    }

    #[test]
    fn empty_window_yields_no_samples() {
        let meter = PowerMeter::default();
        assert!(meter.sample(&step_log(), SimTime::from_secs(3), SimTime::from_secs(3)).is_empty());
        assert_eq!(PowerMeter::sampled_avg_watts(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_sampling_conserves_energy(
            cycle_ms in 1u64..5_000,
            window_ms in 1u64..20_000,
            chassis in 0.0f64..100.0,
        ) {
            let log = ArrayPowerLog::new(chassis, &[5.0, 3.5]);
            let meter = PowerMeter::with_cycle(SimDuration::from_millis(cycle_ms));
            let to = SimTime::from_millis(window_ms);
            let samples = meter.sample(&log, SimTime::ZERO, to);
            let sampled = PowerMeter::sampled_energy(&samples);
            let exact = log.energy_joules(SimTime::ZERO, to);
            prop_assert!((sampled - exact).abs() < 1e-6);
        }

        #[test]
        fn prop_gaussian_mean_is_near_zero(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 4000;
            let mean: f64 = (0..n).map(|_| gaussian(&mut rng)).sum::<f64>() / n as f64;
            prop_assert!(mean.abs() < 0.1, "mean {mean}");
        }
    }
}
