//! Temperature as an evaluation metric — the paper's stated future work.
//!
//! §VII: "We intend to bring in temperature as new metric of TRACER
//! evaluation framework, as temperature has obvious influences on energy,
//! performance and reliability of storage systems." This module implements
//! that extension with a first-order thermal RC model per device: dissipated
//! power heats a thermal mass through a thermal resistance,
//!
//! ```text
//! T(t+dt) = T_amb + P·R + (T(t) − T_amb − P·R) · e^(−dt/τ)
//! ```
//!
//! Because the simulator's power signal is piecewise constant, the solution
//! is evaluated exactly per segment — no numerical integration error.

use serde::{Deserialize, Serialize};
use tracer_sim::{PowerTimeline, SimDuration, SimTime};

/// First-order thermal parameters of a device in its enclosure slot.
///
/// ```
/// use tracer_power::ThermalModel;
/// use tracer_sim::{PowerTimeline, SimTime};
///
/// let model = ThermalModel::default();
/// let signal = PowerTimeline::new(8.0); // constant 8 W
/// // After many time constants the device sits at ambient + P·R.
/// let t = model.temperature_at(&signal, SimTime::from_secs(10_000));
/// assert!((t - model.steady_state_c(8.0)).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Ambient (inlet) temperature, °C.
    pub ambient_c: f64,
    /// Thermal resistance junction→ambient, °C per watt. Steady-state
    /// temperature is `ambient + P·R`.
    pub c_per_watt: f64,
    /// Thermal time constant, seconds (drive + airflow; tens of minutes for
    /// a 3.5" drive in a fanned enclosure).
    pub tau_s: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        // A 3.5" drive in a fan-cooled enclosure: ~25 °C inlet, ~2.2 °C/W,
        // ~8-minute time constant.
        Self { ambient_c: 25.0, c_per_watt: 2.2, tau_s: 480.0 }
    }
}

/// One temperature sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TempSample {
    /// Sample instant.
    pub at: SimTime,
    /// Device temperature, °C.
    pub celsius: f64,
}

/// Summary of a thermal trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalReport {
    /// Temperature at the end of the window, °C.
    pub final_c: f64,
    /// Peak temperature over the window, °C.
    pub peak_c: f64,
    /// Time-weighted mean temperature, °C.
    pub avg_c: f64,
}

impl ThermalModel {
    /// Steady-state temperature under constant `watts`.
    pub fn steady_state_c(&self, watts: f64) -> f64 {
        self.ambient_c + watts * self.c_per_watt
    }

    /// Evaluate the device temperature at `t`, starting from ambient at
    /// time 0 and following the power signal exactly.
    pub fn temperature_at(&self, power: &PowerTimeline, t: SimTime) -> f64 {
        self.trace(power, t, SimDuration::from_nanos(t.as_nanos().max(1)))
            .last()
            .map_or(self.ambient_c, |s| s.celsius)
    }

    /// Temperature samples over `[0, to]` at the given cadence (the final
    /// sample lands exactly on `to`). Segment boundaries of the power signal
    /// are handled exactly; samples interpolate the closed-form solution.
    pub fn trace(
        &self,
        power: &PowerTimeline,
        to: SimTime,
        cadence: SimDuration,
    ) -> Vec<TempSample> {
        assert!(!cadence.is_zero(), "cadence must be positive");
        let mut samples = Vec::new();
        let mut temp = self.ambient_c;
        let mut cursor = SimTime::ZERO;
        let mut next_sample = SimTime::ZERO;
        let points = power.points();
        let mut seg = 0usize;
        while cursor <= to {
            let seg_end = points.get(seg + 1).map_or(to, |p| p.0.min(to));
            let watts = points[seg].1;
            let target = self.steady_state_c(watts);
            // Emit samples inside this segment.
            while next_sample <= seg_end && next_sample <= to {
                let dt = (next_sample - cursor).as_secs_f64();
                let value = target + (temp - target) * (-dt / self.tau_s).exp();
                samples.push(TempSample { at: next_sample, celsius: value });
                next_sample += cadence;
            }
            // Advance the state to the segment end.
            let dt = (seg_end - cursor).as_secs_f64();
            temp = target + (temp - target) * (-dt / self.tau_s).exp();
            if seg_end >= to {
                break;
            }
            cursor = seg_end;
            seg += 1;
        }
        // Guarantee a final sample exactly at `to`.
        if samples.last().map(|s| s.at) != Some(to) {
            samples.push(TempSample { at: to, celsius: temp });
        }
        samples
    }

    /// Summarise the thermal behaviour over `[0, to]`.
    pub fn report(&self, power: &PowerTimeline, to: SimTime) -> ThermalReport {
        let cadence = SimDuration::from_nanos((to.as_nanos() / 512).max(1_000_000));
        let samples = self.trace(power, to, cadence);
        let peak_c = samples.iter().map(|s| s.celsius).fold(f64::MIN, f64::max);
        let avg_c = samples.iter().map(|s| s.celsius).sum::<f64>() / samples.len() as f64;
        ThermalReport { final_c: samples.last().expect("non-empty").celsius, peak_c, avg_c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> ThermalModel {
        ThermalModel { ambient_c: 25.0, c_per_watt: 2.0, tau_s: 100.0 }
    }

    #[test]
    fn starts_at_ambient_and_converges_to_steady_state() {
        let m = model();
        let power = PowerTimeline::new(10.0); // steady 10 W -> 45 °C
        assert!((m.temperature_at(&power, SimTime::from_nanos(1)) - 25.0).abs() < 0.01);
        let t = m.temperature_at(&power, SimTime::from_secs(2_000)); // 20 τ
        assert!((t - 45.0).abs() < 0.01, "converged to {t}");
        assert!((m.steady_state_c(10.0) - 45.0).abs() < 1e-12);
    }

    #[test]
    fn one_time_constant_covers_63_percent() {
        let m = model();
        let power = PowerTimeline::new(10.0);
        let t = m.temperature_at(&power, SimTime::from_secs(100));
        let expect = 25.0 + 20.0 * (1.0 - (-1.0f64).exp());
        assert!((t - expect).abs() < 0.01, "{t} vs {expect}");
    }

    #[test]
    fn cooling_after_load_drop() {
        let m = model();
        let mut power = PowerTimeline::new(20.0);
        power.set(SimTime::from_secs(1_000), 0.0);
        // Hot by 1000 s (steady 65 °C), then cooling toward 25 °C.
        let hot = m.temperature_at(&power, SimTime::from_secs(1_000));
        assert!((hot - 65.0).abs() < 0.1);
        let later = m.temperature_at(&power, SimTime::from_secs(1_100));
        let cold = m.temperature_at(&power, SimTime::from_secs(3_000));
        assert!(later < hot && cold < later);
        assert!((cold - 25.0).abs() < 0.1, "cooled to {cold}");
    }

    #[test]
    fn report_tracks_peak_and_average() {
        let m = model();
        let mut power = PowerTimeline::new(20.0);
        power.set(SimTime::from_secs(2_000), 0.0);
        let report = m.report(&power, SimTime::from_secs(4_000));
        assert!((report.peak_c - 65.0).abs() < 0.5);
        assert!(report.final_c < 30.0);
        assert!(report.avg_c > report.final_c && report.avg_c < report.peak_c);
    }

    #[test]
    fn trace_samples_are_ordered_and_end_at_to() {
        let m = model();
        let power = PowerTimeline::new(5.0);
        let to = SimTime::from_secs(10);
        let samples = m.trace(&power, to, SimDuration::from_secs(3));
        assert!(samples.windows(2).all(|w| w[0].at < w[1].at));
        assert_eq!(samples.last().unwrap().at, to);
    }

    proptest! {
        #[test]
        fn prop_temperature_bounded_by_extremes(
            levels in proptest::collection::vec(0.0f64..30.0, 1..10),
            secs in 1u64..5_000,
        ) {
            let m = model();
            let mut power = PowerTimeline::new(levels[0]);
            for (i, &w) in levels.iter().enumerate().skip(1) {
                power.set(SimTime::from_secs(i as u64 * 200), w);
            }
            let max_w = levels.iter().cloned().fold(0.0, f64::max);
            let t = m.temperature_at(&power, SimTime::from_secs(secs));
            prop_assert!(t >= m.ambient_c - 1e-9);
            prop_assert!(t <= m.steady_state_c(max_w) + 1e-9);
        }

        #[test]
        fn prop_hotter_power_hotter_device(w1 in 1.0f64..20.0, extra in 0.5f64..20.0) {
            let m = model();
            let cool = PowerTimeline::new(w1);
            let hot = PowerTimeline::new(w1 + extra);
            let at = SimTime::from_secs(500);
            prop_assert!(m.temperature_at(&hot, at) > m.temperature_at(&cool, at));
        }
    }
}
