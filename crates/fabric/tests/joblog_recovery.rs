//! Crash-recovery guarantees of the durable job log.
//!
//! Two layers are exercised: the *log* itself (property tests: any
//! truncation or bit corruption of the file keeps every fully-committed
//! frame and never panics) and the *service* on top of it
//! (`EvalService::start_recovered` restores finished jobs without re-running
//! them and re-runs interrupted ones exactly once).

use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tracer_core::db::{Database, TestRecord};
use tracer_core::distributed::EvaluationJob;
use tracer_fabric::joblog::{JobLog, JobSpec, LogRecord, RecoveredState};
use tracer_serve::{EvalService, JobState, ServiceConfig};
use tracer_sim::ArraySpec;
use tracer_trace::{Bunch, IoPackage, Trace, WorkloadMode};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tracer_joblog_rec_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}_{}.log", CASE.fetch_add(1, Ordering::Relaxed)))
}

fn spec(id: u64, device: &str) -> JobSpec {
    JobSpec {
        device: device.into(),
        mode: WorkloadMode::peak(8192, 50, 100).at_load(40),
        intensity_pct: 100,
        name: format!("cell-{id}"),
        priority: 0,
        deadline_ms: None,
    }
}

fn committed_record(id: u64) -> TestRecord {
    TestRecord {
        id,
        label: format!("cell-{id}"),
        device: "recdev".into(),
        mode: WorkloadMode::peak(8192, 50, 100),
        power: tracer_core::db::PowerData {
            volts: 220.0,
            avg_amps: 0.5,
            avg_watts: 110.0,
            energy_joules: 42.5,
        },
        perf: Default::default(),
        efficiency: Default::default(),
    }
}

/// Frame boundaries of the log file, from the on-disk length prefixes.
fn frame_ends(data: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut offset = 0usize;
    while data.len() - offset >= 8 {
        let len = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap()) as usize;
        if data.len() - offset - 8 < len {
            break;
        }
        offset += 8 + len;
        ends.push(offset);
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Chop the log at *any* byte offset: every frame wholly before the cut
    /// survives, everything after is truncated away, and the log stays
    /// appendable.
    #[test]
    fn any_truncation_keeps_every_fully_committed_frame(
        jobs in 1u64..24,
        cut_back in 0usize..4096,
    ) {
        let path = tmp("trunc");
        {
            let (log, _) = JobLog::open(&path).unwrap();
            for id in 1..=jobs {
                log.append(&LogRecord::Submitted { id, spec: spec(id, "recdev") }).unwrap();
            }
        }
        let full = fs::read(&path).unwrap();
        let ends = frame_ends(&full);
        prop_assert_eq!(ends.len() as u64, jobs);
        let cut = full.len().saturating_sub(cut_back % (full.len() + 1));
        fs::write(&path, &full[..cut]).unwrap();

        let (log, recovery) = JobLog::open(&path).unwrap();
        let intact = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(recovery.jobs.len(), intact, "cut={} ends={:?}", cut, ends);
        // Submission order and ids survive.
        for (i, job) in recovery.jobs.iter().enumerate() {
            prop_assert_eq!(job.id, i as u64 + 1);
            prop_assert!(matches!(job.state, RecoveredState::Queued));
        }
        let torn = usize::from(!ends.contains(&cut) && cut != 0);
        prop_assert_eq!(recovery.torn_frames, torn);
        // The truncated log accepts appends on a clean boundary.
        log.append(&LogRecord::Submitted { id: 999, spec: spec(999, "recdev") }).unwrap();
        drop(log);
        let (_log, recovery) = JobLog::open(&path).unwrap();
        prop_assert_eq!(recovery.jobs.len(), intact + 1);
        prop_assert_eq!(recovery.torn_frames, 0);
        fs::remove_file(&path).unwrap();
    }

    /// Flip one bit anywhere: replay never panics, the checksum stops replay
    /// at (or before) the damaged frame, and every earlier frame survives.
    #[test]
    fn any_single_bit_flip_is_detected_and_never_loses_earlier_frames(
        jobs in 1u64..16,
        pos_seed in 0usize..65536,
        bit in 0u8..8,
    ) {
        let path = tmp("flip");
        {
            let (log, _) = JobLog::open(&path).unwrap();
            for id in 1..=jobs {
                log.append(&LogRecord::Submitted { id, spec: spec(id, "recdev") }).unwrap();
            }
        }
        let mut data = fs::read(&path).unwrap();
        let ends = frame_ends(&data);
        let pos = pos_seed % data.len();
        data[pos] ^= 1 << bit;
        fs::write(&path, &data).unwrap();

        let (_log, recovery) = JobLog::open(&path).unwrap();
        // Every frame that ends at or before the damaged byte is untouched
        // and must survive; the flip corrupts exactly one frame, so at most
        // one otherwise-intact frame may be lost beyond that point (a flip
        // inside a length prefix can desynchronise the rest of the tail —
        // replay must still keep the clean prefix and not panic).
        let clean_prefix = ends.iter().filter(|&&e| e <= pos).count();
        prop_assert!(recovery.jobs.len() >= clean_prefix,
            "recovered {} < clean prefix {} (pos={}, ends={:?})",
            recovery.jobs.len(), clean_prefix, pos, ends);
        prop_assert!(recovery.jobs.len() < jobs as usize + 1);
        for (i, job) in recovery.jobs.iter().enumerate().take(clean_prefix) {
            prop_assert_eq!(job.id, i as u64 + 1);
        }
        fs::remove_file(&path).unwrap();
    }
}

fn rec_trace() -> Arc<Trace> {
    Arc::new(Trace::from_bunches(
        "rec",
        (0..40)
            .map(|i| Bunch::new(i * 4_000_000, vec![IoPackage::read((i * 997) % 90_000, 8192)]))
            .collect(),
    ))
}

/// The acceptance property: after a crash, finished jobs are *restored*
/// (never re-run) and interrupted jobs are re-run exactly once — no lost
/// jobs, no duplicated results.
#[test]
fn recovery_restores_done_jobs_and_reruns_pending_ones_exactly_once() {
    let path = tmp("exactly_once");
    // Journal a crashed session: 4 accepted jobs; #1 was in flight, #2 fully
    // committed, #3 and #4 still queued.
    {
        let (log, _) = JobLog::open(&path).unwrap();
        for id in 1..=4 {
            log.append(&LogRecord::Submitted { id, spec: spec(id, "recdev") }).unwrap();
        }
        log.append(&LogRecord::Started { id: 1 }).unwrap();
        log.append(&LogRecord::Started { id: 2 }).unwrap();
        log.append(&LogRecord::Done {
            id: 2,
            record: committed_record(2),
            queue_ms: 3,
            run_ms: 41,
        })
        .unwrap();
    }

    let resolved = Arc::new(Mutex::new(Vec::<String>::new()));
    let resolver_log = Arc::clone(&resolved);
    let (service, report) = EvalService::start_recovered(
        ServiceConfig { workers: 2, queue_capacity: 8 },
        &path,
        move |spec: &JobSpec| {
            resolver_log.lock().unwrap().push(spec.name.clone());
            (spec.device == "recdev").then(|| EvaluationJob {
                name: spec.name.clone(),
                build: Box::new(|| ArraySpec::hdd_raid5(4).build()),
                trace: rec_trace().into(),
                mode: spec.mode,
                intensity_pct: spec.intensity_pct,
            })
        },
    )
    .expect("recovery");

    assert_eq!(report.restored_done, 1);
    assert_eq!(report.requeued, 3);
    assert_eq!(report.unresolved, 0);
    assert_eq!(report.torn_frames, 0);
    // The resolver ran only for the pending jobs — never for the done one.
    let mut names = resolved.lock().unwrap().clone();
    names.sort();
    assert_eq!(names, vec!["cell-1", "cell-3", "cell-4"]);

    // The committed job is done *immediately*, with its journalled record in
    // the shared database — no re-run.
    let done = service.status(2).expect("job 2 restored");
    assert_eq!(done.state, JobState::Done);
    assert!(done.metrics.is_some());
    let rid = done.record_id.expect("restored record id");
    assert!(service.with_db(|db| db.get(rid).map(|r| r.label.clone())) == Some("cell-2".into()));

    // Fresh submissions continue after the journalled id space.
    let fresh = service
        .submit(EvaluationJob {
            name: "fresh".into(),
            build: Box::new(|| ArraySpec::hdd_raid5(4).build()),
            trace: rec_trace().into(),
            mode: WorkloadMode::peak(8192, 50, 100).at_load(40),
            intensity_pct: 100,
        })
        .unwrap();
    assert_eq!(fresh, 5, "ids continue past the journalled ones");

    service.shutdown();
    for id in [1u64, 3, 4] {
        assert_eq!(service.status(id).unwrap().state, JobState::Done, "re-run job {id}");
    }
    // 1 restored + 3 re-run + 1 fresh — exactly once each.
    assert_eq!(service.with_db(Database::len), 5);
    drop(service);

    // The journal now reflects the completed session: all 4 jobs terminal,
    // nothing pending for a third incarnation to redo.
    let (_log, recovery) = JobLog::open(&path).unwrap();
    assert_eq!(recovery.jobs.len(), 4);
    assert_eq!(recovery.pending().count(), 0);
    assert!(recovery.jobs.iter().all(|j| matches!(j.state, RecoveredState::Done { .. })));
    assert_eq!(recovery.next_id, 5);
    fs::remove_file(&path).unwrap();
}

/// A journalled job whose spec no longer resolves (device renamed, trace
/// deleted) is surfaced as failed — not silently dropped, not retried
/// forever.
#[test]
fn unresolvable_recovered_jobs_are_marked_failed() {
    let path = tmp("unresolved");
    {
        let (log, _) = JobLog::open(&path).unwrap();
        log.append(&LogRecord::Submitted { id: 9, spec: spec(9, "gone-device") }).unwrap();
    }
    let (service, report) = EvalService::start_recovered(
        ServiceConfig { workers: 1, queue_capacity: 4 },
        &path,
        |_spec: &JobSpec| None,
    )
    .expect("recovery");
    assert_eq!(report.requeued, 0);
    assert_eq!(report.unresolved, 1);
    let snap = service.status(9).expect("job known after recovery");
    assert_eq!(snap.state, JobState::Failed);
    assert!(snap.error.unwrap().contains("no longer resolves"));
    service.shutdown();
    drop(service);
    // The failure is journalled too, so the next incarnation agrees.
    let (_log, recovery) = JobLog::open(&path).unwrap();
    assert!(matches!(&recovery.jobs[0].state, RecoveredState::Failed(r) if r.contains("resolves")));
    fs::remove_file(&path).unwrap();
}

/// Wire-submitted jobs journal through the server path: spin a `JobServer`
/// with a log, submit over TCP, kill it, and replay the log in-process.
#[test]
fn wire_submissions_are_journalled_and_replayable() {
    use tracer_core::net::HostClient;
    use tracer_serve::server::{BuildArray, JobServer, LoadTrace};

    let path = tmp("wire");
    let build: BuildArray =
        Arc::new(|req: &str| (req == "recdev").then(|| ArraySpec::hdd_raid5(4).build()));
    let load: LoadTrace = {
        let t = rec_trace();
        Arc::new(move |dev: &str, _mode| (dev == "recdev").then(|| Arc::clone(&t).into()))
    };
    let (server, report) = JobServer::spawn_with(
        ServiceConfig { workers: 1, queue_capacity: 8 },
        Arc::clone(&build),
        Arc::clone(&load),
        0,
        Some(&path),
    )
    .expect("spawn with log");
    assert_eq!(report.requeued + report.restored_done, 0, "fresh log");

    let mut client = HostClient::connect(server.addr()).unwrap();
    let mode = WorkloadMode::peak(8192, 50, 100).at_load(40);
    let first = client
        .submit_job_opts("recdev", mode, 100, Some("wire-a"), 0, None)
        .unwrap()
        .expect("accepted");
    // Wait until it finishes so the log holds a committed record.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        match client.job_status(first) {
            Ok(Ok(state)) if state == "done" => break,
            _ => {}
        }
        assert!(std::time::Instant::now() < deadline, "wire job never finished");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.shutdown().unwrap();

    // The log round-trips: one job, done, with the committed record inline.
    let (_log, recovery) = JobLog::open(&path).unwrap();
    assert_eq!(recovery.jobs.len(), 1);
    assert_eq!(recovery.jobs[0].spec.name, "wire-a");
    assert!(
        matches!(&recovery.jobs[0].state, RecoveredState::Done { record, .. } if record.label == "wire-a")
    );
    fs::remove_file(&path).unwrap();
}
