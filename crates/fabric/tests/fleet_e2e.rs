//! Fleet end-to-end: real `JobServer` nodes on localhost TCP, driven by the
//! coordinator. The load-bearing property is *determinism*: the same
//! campaign must render a byte-identical report serially, on 1 node, on 4
//! nodes, with work stealing, and across a node death mid-sweep.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tracer_core::net::HostClient;
use tracer_fabric::coordinator::{
    fleet_stats, run_campaign, serial_report, CampaignSpec, FleetConfig,
};
use tracer_serve::server::{BuildArray, JobServer, LoadTrace};
use tracer_serve::ServiceConfig;
use tracer_sim::ArraySpec;
use tracer_trace::{Bunch, IoPackage, Trace, WorkloadMode};

const DEVICE: &str = "fleetdev";

/// Deterministic synthetic trace; every call yields identical content, so
/// every node (and the serial baseline) replays the same workload.
fn fleet_trace(bunches: u64) -> Arc<Trace> {
    Arc::new(Trace::from_bunches(
        "fleet",
        (0..bunches)
            .map(|i| {
                let pkg = if i % 3 == 0 {
                    IoPackage::write((i * 2_053) % 180_000, 8192)
                } else {
                    IoPackage::read((i * 997) % 200_000, 8192)
                };
                Bunch::new(i * 3_000_000, vec![pkg])
            })
            .collect(),
    ))
}

fn spawn_node(workers: usize, bunches: u64) -> JobServer {
    let build: BuildArray =
        Arc::new(|req: &str| (req == DEVICE).then(|| ArraySpec::hdd_raid5(4).build()));
    let trace = fleet_trace(bunches);
    let load: LoadTrace =
        Arc::new(move |dev: &str, _mode| (dev == DEVICE).then(|| Arc::clone(&trace).into()));
    JobServer::spawn(ServiceConfig { workers, queue_capacity: 4 }, build, load).expect("spawn node")
}

fn campaign(loads: &[u32]) -> CampaignSpec {
    CampaignSpec {
        device: DEVICE.into(),
        mode: WorkloadMode::peak(8192, 50, 70),
        loads: loads.to_vec(),
        intensity_pct: 100,
    }
}

fn baseline(spec: &CampaignSpec, bunches: u64) -> String {
    serial_report(
        spec,
        || ArraySpec::hdd_raid5(4).build(),
        |dev, _mode| (dev == DEVICE).then(|| fleet_trace(bunches).into()),
    )
    .expect("serial baseline")
}

fn config() -> FleetConfig {
    FleetConfig { poll_interval: Duration::from_millis(5), ..Default::default() }
}

#[test]
fn one_node_and_four_nodes_render_the_byte_identical_serial_report() {
    let spec = campaign(&[20, 50, 80, 100]);
    let serial = baseline(&spec, 400);

    let single = spawn_node(2, 400);
    let outcome =
        run_campaign(&[single.addr().to_string()], &spec, &config()).expect("1-node campaign");
    assert_eq!(outcome.report, serial, "1-node report must be byte-identical to serial");
    assert_eq!(outcome.stats.nodes_dead, 0);
    single.shutdown().unwrap();

    let fleet: Vec<JobServer> = (0..4).map(|_| spawn_node(2, 400)).collect();
    let addrs: Vec<String> = fleet.iter().map(|n| n.addr().to_string()).collect();
    let outcome = run_campaign(&addrs, &spec, &config()).expect("4-node campaign");
    assert_eq!(outcome.report, serial, "4-node report must be byte-identical to serial");
    assert_eq!(
        outcome.stats.completed_per_node.iter().sum::<u64>(),
        spec.loads.len() as u64,
        "every cell completed exactly once"
    );

    // Fleet-wide stats aggregation sees every node and every finished cell.
    let agg = fleet_stats(&addrs, Duration::from_secs(5));
    assert_eq!(agg.nodes, 4);
    assert_eq!(agg.workers, 8);
    assert!(agg.done >= spec.loads.len() as u64, "{agg:?}");
    assert_eq!(agg.queued + agg.running, 0, "{agg:?}");

    for node in fleet {
        node.shutdown().unwrap();
    }
}

/// Occupy one worker of `node` with a long evaluation submitted in-process,
/// so wire-submitted campaign cells queue up behind it deterministically.
fn submit_blocker(node: &JobServer, bunches: u64) -> u64 {
    node.service()
        .submit(tracer_core::distributed::EvaluationJob::new(
            "blocker",
            || ArraySpec::hdd_raid5(4).build(),
            fleet_trace(bunches),
            WorkloadMode::peak(8192, 50, 70).at_load(100),
        ))
        .expect("blocker admitted")
}

#[test]
fn killing_a_node_mid_sweep_redispatches_its_cells_and_keeps_the_report_identical() {
    let spec = campaign(&[10, 20, 30, 40, 50, 60, 80, 100]);
    let serial = baseline(&spec, 400);

    let survivor = spawn_node(2, 400);
    // Single worker, occupied by a long blocker: the victim's campaign cells
    // can only ever *queue* there, so the sweep cannot finish before the
    // kill. Stealing is off — re-dispatch after death must do the rescue.
    let victim = spawn_node(1, 400);
    submit_blocker(&victim, 150_000);
    let addrs = vec![survivor.addr().to_string(), victim.addr().to_string()];

    let cfg = FleetConfig { node_timeout: Duration::from_secs(2), steal: false, ..config() };
    let campaign_thread = {
        let addrs = addrs.clone();
        let spec = spec.clone();
        std::thread::spawn(move || run_campaign(&addrs, &spec, &cfg))
    };

    // Kill the victim as soon as the coordinator has queued cells on it
    // (`running >= 1` is the blocker holding the only worker, so anything
    // queued is a campaign cell): abrupt stop, no drain — those cells must
    // complete via re-dispatch.
    let victim_service = victim.service();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = victim_service.stats();
        if (stats.running >= 1 && stats.queued >= 1) || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    victim.kill();

    let outcome = campaign_thread.join().unwrap().expect("campaign survives a dead node");
    assert_eq!(outcome.report, serial, "report must be byte-identical despite the death");
    assert!(outcome.stats.nodes_dead >= 1, "{:?}", outcome.stats);
    assert!(outcome.stats.cells_redispatched >= 1, "{:?}", outcome.stats);
    assert_eq!(
        outcome.stats.completed_per_node.iter().sum::<u64>(),
        spec.loads.len() as u64,
        "every cell completed exactly once: {:?}",
        outcome.stats
    );

    survivor.shutdown().unwrap();
    drop(victim); // drains whatever the killed node still had queued
}

#[test]
fn an_idle_fast_node_steals_queued_cells_from_a_loaded_one() {
    // Node order matters: the single-worker node is first, so pipelined
    // dispatch loads it up; its worker is parked on a long blocker, so its
    // cells stay *queued* — exactly what the fast idle node may steal.
    let spec = campaign(&[10, 20, 30, 40, 60, 80, 90, 100]);
    let serial = baseline(&spec, 400);

    let slow = spawn_node(1, 400);
    submit_blocker(&slow, 150_000);
    let fast = spawn_node(4, 400);
    let addrs = vec![slow.addr().to_string(), fast.addr().to_string()];
    let cfg = FleetConfig { max_inflight_per_node: 4, ..config() };
    let outcome = run_campaign(&addrs, &spec, &cfg).expect("steal campaign");
    assert_eq!(outcome.report, serial, "stealing must not change a single byte");
    assert!(
        outcome.stats.cells_stolen >= 1,
        "the idle fast node should have stolen at least one queued cell: {:?}",
        outcome.stats
    );
    slow.shutdown().unwrap();
    fast.shutdown().unwrap();
}

#[test]
fn a_node_serves_coordinator_and_interactive_clients_concurrently() {
    let spec = campaign(&[20, 40, 60, 80, 100]);
    let serial = baseline(&spec, 600);
    let node = spawn_node(2, 600);
    let addr = node.addr();

    let campaign_thread = {
        let addrs = vec![addr.to_string()];
        std::thread::spawn(move || run_campaign(&addrs, &spec, &config()))
    };

    // While the coordinator hammers the node, a human client on a second
    // connection keeps getting served — no `err busy` at the accept loop,
    // and deferred admission parks an interactive priority job.
    let mut client = HostClient::connect(addr).expect("second connection while campaign runs");
    let mut pinged = 0;
    let mut interactive: Option<u64> = None;
    while !campaign_thread.is_finished() {
        assert!(client.ping().expect("ping mid-campaign"), "node must answer pong");
        pinged += 1;
        if interactive.is_none() {
            let accepted = client
                .submit_job_opts(
                    DEVICE,
                    WorkloadMode::peak(8192, 50, 70),
                    100,
                    Some("human"),
                    5,
                    None,
                )
                .expect("submit io");
            match accepted {
                Ok(id) => interactive = Some(id),
                Err(reply) => panic!("interactive submit must park, got {reply:?}"),
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let outcome = campaign_thread.join().unwrap().expect("campaign");
    assert_eq!(outcome.report, serial, "client traffic must not perturb the report");
    assert!(pinged >= 1);

    // The interactive job eventually completes too.
    let id = interactive.expect("campaign ran long enough to submit");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match client.job_status(id) {
            Ok(Ok(state)) if state == "done" => break,
            Ok(_) => {}
            Err(e) => panic!("status: {e}"),
        }
        assert!(Instant::now() < deadline, "interactive job never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    node.shutdown().unwrap();
}
