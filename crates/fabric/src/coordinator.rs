//! The fleet coordinator: shards a sweep campaign across serve nodes.
//!
//! The coordinator is the fleet-scale analogue of
//! `tracer_core::executor::SweepExecutor`: a campaign is cut into cells (one
//! per load level), the cells are dispatched to registered nodes over the
//! job protocol of [`tracer_core::messages`], and the results are merged in
//! cell order. Three mechanisms keep a heterogeneous fleet busy and a flaky
//! one correct:
//!
//! * **Pipelined dispatch** — up to `max_inflight_per_node` cells queue on
//!   each node, so node-side workers never starve between polls.
//! * **Work stealing** — when the unassigned pool is dry and a node idles
//!   while another still has cells *queued* (not running), the coordinator
//!   cancels one queued cell on the loaded node and hands it to the idle
//!   one.
//! * **Re-dispatch on death** — every reply wait is bounded by
//!   `node_timeout`; an I/O error or timeout marks the node dead and
//!   returns its in-flight cells to the pool. Idle nodes are additionally
//!   probed with `ping` each round, so a dead-but-unloaded node is noticed
//!   too.
//!
//! **Determinism.** A cell's metrics depend only on (trace, mode,
//! intensity) — the measure/commit split guarantees that on every node —
//! and the `result` line renders each `f64` in its shortest exact
//! round-trip form, which `str::parse::<f64>` recovers bit-identically.
//! The report renders those values back with the same `{}` formatting, in
//! cell order, with no node names, counts, or timings in it. A report is
//! therefore byte-identical whether the campaign ran on 1 node, on 4, or
//! serially in-process ([`serial_report`]).

use crate::joblog::JobSpec;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use tracer_core::error::TracerError;
use tracer_core::host::EvaluationHost;
use tracer_core::messages::{parse_job_command, JobCommand, Reply};
use tracer_core::metrics::EfficiencyMetrics;
use tracer_core::net::HostClient;
use tracer_sim::ArraySim;
use tracer_trace::{TraceHandle, WorkloadMode};

/// One sweep campaign: a device, a base workload mode, and the load levels
/// to visit. Cells are the load levels in order.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Device every node drives.
    pub device: String,
    /// Base workload mode; each cell applies its own load level.
    pub mode: WorkloadMode,
    /// Load levels, one cell each.
    pub loads: Vec<u32>,
    /// Inter-arrival intensity, percent.
    pub intensity_pct: u32,
}

impl CampaignSpec {
    /// The cells in dispatch (and report) order.
    pub fn cells(&self) -> Vec<JobSpec> {
        self.loads
            .iter()
            .map(|&load| JobSpec {
                device: self.device.clone(),
                mode: self.mode.at_load(load),
                intensity_pct: self.intensity_pct,
                name: format!("fleet-{}-load{load}", self.device),
                priority: 1, // deferred admission: park, never `err busy`
                deadline_ms: None,
            })
            .collect()
    }
}

/// Metrics of one finished cell, exactly as they crossed the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// I/O operations per second.
    pub iops: f64,
    /// Throughput, MB/s.
    pub mbps: f64,
    /// Mean response time, ms.
    pub avg_response_ms: f64,
    /// Mean power, watts.
    pub watts: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Energy efficiency, IOPS per watt.
    pub iops_per_watt: f64,
    /// Energy efficiency, MB/s per kilowatt.
    pub mbps_per_kilowatt: f64,
}

impl CellResult {
    /// Build from committed metrics (the serial path).
    pub fn from_metrics(m: &EfficiencyMetrics) -> Self {
        Self {
            iops: m.iops,
            mbps: m.mbps,
            avg_response_ms: m.avg_response_ms,
            watts: m.avg_watts,
            energy_j: m.energy_joules,
            iops_per_watt: m.iops_per_watt,
            mbps_per_kilowatt: m.mbps_per_kilowatt,
        }
    }

    /// Parse from a `result` reply (the wire path). `None` if a metric field
    /// is missing or unparsable.
    pub fn from_reply(reply: &Reply) -> Option<Self> {
        Some(Self {
            iops: reply.num("iops")?,
            mbps: reply.num("mbps")?,
            avg_response_ms: reply.num("avg_response_ms")?,
            watts: reply.num("watts")?,
            energy_j: reply.num("energy_j")?,
            iops_per_watt: reply.num("iops_per_watt")?,
            mbps_per_kilowatt: reply.num("mbps_per_kilowatt")?,
        })
    }
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Cells queued per node at once (pipelining depth).
    pub max_inflight_per_node: usize,
    /// Pause between poll rounds.
    pub poll_interval: Duration,
    /// Reply-wait bound; exceeding it marks the node dead.
    pub node_timeout: Duration,
    /// Enable work stealing from slow nodes.
    pub steal: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            max_inflight_per_node: 2,
            poll_interval: Duration::from_millis(20),
            node_timeout: Duration::from_secs(5),
            steal: true,
        }
    }
}

/// What happened while running a campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Cells handed to a node (re-dispatches count again).
    pub cells_dispatched: u64,
    /// Cells moved from a loaded node's queue to an idle node.
    pub cells_stolen: u64,
    /// Cells returned to the pool because their node died.
    pub cells_redispatched: u64,
    /// Nodes declared dead.
    pub nodes_dead: u64,
    /// Cells completed per node, in node-list order.
    pub completed_per_node: Vec<u64>,
}

/// A finished campaign: the deterministic report plus the run's statistics.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Byte-stable sweep report (identical for any node count).
    pub report: String,
    /// Dispatch/steal/death accounting for this run.
    pub stats: FleetStats,
}

struct Node {
    addr: String,
    client: Option<HostClient>,
    /// `(cell index, remote job id)` for every cell queued or running here.
    inflight: Vec<(usize, u64)>,
    completed: u64,
}

impl Node {
    fn alive(&self) -> bool {
        self.client.is_some()
    }
}

/// Ensure every fabric metric exists in the obs registry even when its count
/// stays zero for a run, so the exported schema is stable.
fn touch_metrics() {
    if !tracer_obs::enabled() {
        return;
    }
    for name in [
        "fabric.cells_dispatched",
        "fabric.cells_stolen",
        "fabric.cells_redispatched",
        "fabric.nodes_dead",
    ] {
        tracer_obs::counter(name).add(0);
    }
    tracer_obs::histogram("fabric.node_queue_depth").record_n(0, 0);
}

fn bump(name: &str, stat: &mut u64) {
    *stat += 1;
    if tracer_obs::enabled() {
        tracer_obs::counter(name).incr();
    }
}

/// Run `spec` across `nodes` (addresses as `host:port`) and merge the
/// results into a deterministic report. Fails only when every node is dead
/// while cells remain, or when a cell fails identically wherever it runs.
pub fn run_campaign(
    nodes: &[String],
    spec: &CampaignSpec,
    cfg: &FleetConfig,
) -> Result<FleetOutcome, TracerError> {
    if nodes.is_empty() {
        return Err(TracerError::Config("no nodes".to_string()));
    }
    touch_metrics();
    let cells = spec.cells();
    let mut results: Vec<Option<CellResult>> = vec![None; cells.len()];
    let mut unassigned: VecDeque<usize> = (0..cells.len()).collect();
    let mut stats = FleetStats::default();
    let mut fleet: Vec<Node> = nodes
        .iter()
        .map(|addr| Node { addr: addr.clone(), client: None, inflight: Vec::new(), completed: 0 })
        .collect();
    for node in &mut fleet {
        node.client = connect(&node.addr, cfg.node_timeout).ok();
        if !node.alive() {
            bump("fabric.nodes_dead", &mut stats.nodes_dead);
        }
    }

    while results.iter().any(Option::is_none) {
        let mut progressed = false;
        for node in &mut fleet {
            if !node.alive() {
                continue;
            }
            // Dispatch until the node's pipeline is full or the pool is dry.
            while node.inflight.len() < cfg.max_inflight_per_node {
                let Some(ci) = unassigned.pop_front() else { break };
                match submit_cell(node, &cells[ci]) {
                    Ok(Some(id)) => {
                        node.inflight.push((ci, id));
                        bump("fabric.cells_dispatched", &mut stats.cells_dispatched);
                        progressed = true;
                    }
                    Ok(None) => {
                        // `err busy`: even deferred admission has a hard cap.
                        unassigned.push_front(ci);
                        break;
                    }
                    Err(_) => {
                        unassigned.push_front(ci);
                        kill_node(node, &mut unassigned, &mut stats);
                        break;
                    }
                }
            }
            if !node.alive() {
                continue;
            }
            // Poll every in-flight cell; collect finished ones.
            let mut j = 0;
            while j < node.inflight.len() {
                let (ci, id) = node.inflight[j];
                let Some(client) = node.client.as_mut() else { break };
                match client.job_result(id) {
                    Ok(Ok(reply)) => {
                        let cell = CellResult::from_reply(&reply).ok_or_else(|| {
                            TracerError::Config(format!("malformed result line from {}", node.addr))
                        })?;
                        results[ci] = Some(cell);
                        node.inflight.swap_remove(j);
                        node.completed += 1;
                        progressed = true;
                    }
                    Ok(Err(reply)) if reply.head == "pending" => j += 1,
                    Ok(Err(reply)) if reply.head == "failed" => {
                        // Evaluations are deterministic: a panic here would
                        // panic on every node, so retrying elsewhere loops.
                        return Err(TracerError::Config(format!(
                            "cell {ci} failed on {}: {reply:?}",
                            node.addr
                        )));
                    }
                    Ok(Err(_)) => {
                        // cancelled / expired / unknown after a node restart:
                        // the cell must run again somewhere.
                        node.inflight.swap_remove(j);
                        unassigned.push_back(ci);
                        bump("fabric.cells_redispatched", &mut stats.cells_redispatched);
                    }
                    Err(_) => {
                        kill_node(node, &mut unassigned, &mut stats);
                        break;
                    }
                }
            }
            if tracer_obs::enabled() && node.alive() {
                tracer_obs::histogram("fabric.node_queue_depth").record(node.inflight.len() as u64);
            }
        }

        if unassigned.is_empty() && cfg.steal {
            steal_one(&mut fleet, &cells, &mut unassigned, &mut stats);
        }
        // Heartbeat nodes the round gave no work to — a dead idle node must
        // not go unnoticed until the pool refills.
        for node in &mut fleet {
            if node.alive() && node.inflight.is_empty() {
                let ok = node.client.as_mut().is_some_and(|c| c.ping().unwrap_or(false));
                if !ok {
                    kill_node(node, &mut unassigned, &mut stats);
                }
            }
        }

        if fleet.iter().all(|n| !n.alive()) {
            let left = results.iter().filter(|r| r.is_none()).count();
            return Err(TracerError::Config(format!(
                "all nodes dead with {left} cells unfinished"
            )));
        }
        if !progressed {
            std::thread::sleep(cfg.poll_interval);
        }
    }

    stats.completed_per_node = fleet.iter().map(|n| n.completed).collect();
    // The loop only exits once every slot is Some; a gap here means the loop
    // invariant broke, which must surface as an error, not a panic.
    let merged: Vec<CellResult> = results.into_iter().flatten().collect();
    if merged.len() != cells.len() {
        return Err(TracerError::Config(format!(
            "internal: campaign finished with {}/{} cells",
            merged.len(),
            cells.len()
        )));
    }
    Ok(FleetOutcome { report: render_report(spec, &merged), stats })
}

fn connect(addr: &str, timeout: Duration) -> io::Result<HostClient> {
    let resolved: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::other(format!("unresolvable node address {addr}")))?;
    let client = HostClient::connect(resolved)?;
    client.set_read_timeout(Some(timeout))?;
    Ok(client)
}

/// `Ok(Some(id))` accepted, `Ok(None)` busy, `Err` node I/O failure.
fn submit_cell(node: &mut Node, cell: &JobSpec) -> io::Result<Option<u64>> {
    let Some(client) = node.client.as_mut() else {
        return Err(io::Error::other("submit to a dead node"));
    };
    match client.submit_job_opts(
        &cell.device,
        cell.mode,
        cell.intensity_pct,
        Some(&cell.name),
        cell.priority,
        cell.deadline_ms,
    )? {
        Ok(id) => Ok(Some(id)),
        Err(reply) if reply.head == "busy" => Ok(None),
        Err(reply) => Err(io::Error::other(format!("node rejected submit: {reply:?}"))),
    }
}

fn kill_node(node: &mut Node, unassigned: &mut VecDeque<usize>, stats: &mut FleetStats) {
    node.client = None;
    bump("fabric.nodes_dead", &mut stats.nodes_dead);
    // Its cells go to the *front* of the pool: they were admitted first and
    // another node should pick them up before untouched work.
    for (ci, _) in node.inflight.drain(..).rev() {
        unassigned.push_front(ci);
        bump("fabric.cells_redispatched", &mut stats.cells_redispatched);
    }
}

/// Move one *queued* cell from the most loaded node to an idle one.
fn steal_one(
    fleet: &mut [Node],
    cells: &[JobSpec],
    unassigned: &mut VecDeque<usize>,
    stats: &mut FleetStats,
) {
    let Some(thief) = fleet.iter().position(|n| n.alive() && n.inflight.is_empty()) else {
        return;
    };
    let Some(victim) = (0..fleet.len())
        .filter(|&i| i != thief && fleet[i].alive() && fleet[i].inflight.len() >= 2)
        .max_by_key(|&i| fleet[i].inflight.len())
    else {
        return;
    };
    // The newest submission is the one most likely still queued.
    let Some(&(ci, id)) = fleet[victim].inflight.last() else { return };
    {
        let Some(client) = fleet[victim].client.as_mut() else { return };
        if !matches!(client.job_status(id), Ok(Ok(state)) if state == "queued") {
            return;
        }
        // Between the status probe and the cancel the job may start running;
        // the node then discards its result at the commit boundary
        // (`ok cancelling`), so handing the cell to the thief still yields
        // exactly one result either way.
        if !matches!(client.cancel_job(id), Ok(Ok(()))) {
            return;
        }
    }
    fleet[victim].inflight.pop();
    match submit_cell(&mut fleet[thief], &cells[ci]) {
        Ok(Some(new_id)) => {
            fleet[thief].inflight.push((ci, new_id));
            bump("fabric.cells_stolen", &mut stats.cells_stolen);
        }
        Ok(None) => unassigned.push_front(ci), // thief suddenly full
        Err(_) => {
            unassigned.push_front(ci);
            kill_node(&mut fleet[thief], unassigned, stats);
        }
    }
}

/// Render the merged results as the canonical fleet report. Only
/// deterministic quantities appear: the campaign definition and the metric
/// values in `{}` (shortest exact round-trip) form.
pub fn render_report(spec: &CampaignSpec, results: &[CellResult]) -> String {
    let mut out = format!(
        "fleet-report device={} rs={} rn={} rd={} intensity={} cells={}\n",
        spec.device,
        spec.mode.request_bytes,
        spec.mode.random_pct,
        spec.mode.read_pct,
        spec.intensity_pct,
        results.len()
    );
    for (load, r) in spec.loads.iter().zip(results) {
        out.push_str(&format!(
            "cell load={load} iops={} mbps={} avg_response_ms={} watts={} energy_j={} \
             iops_per_watt={} mbps_per_kilowatt={}\n",
            r.iops,
            r.mbps,
            r.avg_response_ms,
            r.watts,
            r.energy_j,
            r.iops_per_watt,
            r.mbps_per_kilowatt
        ));
    }
    out
}

/// The serial baseline: run every cell in-process, in order, on one host,
/// and render the identical report. `build` constructs the array under test
/// and `load_trace` resolves the cell's trace exactly like a node would.
pub fn serial_report(
    spec: &CampaignSpec,
    mut build: impl FnMut() -> ArraySim,
    mut load_trace: impl FnMut(&str, &WorkloadMode) -> Option<TraceHandle>,
) -> Result<String, TracerError> {
    let mut host = EvaluationHost::new();
    let mut results = Vec::with_capacity(spec.loads.len());
    for cell in spec.cells() {
        let trace = load_trace(&cell.device, &cell.mode)
            .ok_or_else(|| TracerError::NoTrace(cell.device.clone()))?;
        let mut sim = build();
        let measured = EvaluationHost::measure_test(
            host.meter_cycle_ms,
            &mut sim,
            &trace,
            cell.mode,
            cell.intensity_pct,
            &cell.name,
        );
        let out = host.commit(measured);
        results.push(CellResult::from_metrics(&out.metrics));
    }
    Ok(render_report(spec, &results))
}

/// Fleet-wide aggregation of every node's `stats` line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AggregateStats {
    /// Nodes that answered.
    pub nodes: usize,
    /// Total worker threads.
    pub workers: u64,
    /// Total queue capacity.
    pub capacity: u64,
    /// Jobs queued fleet-wide.
    pub queued: u64,
    /// Jobs running fleet-wide.
    pub running: u64,
    /// Jobs done fleet-wide.
    pub done: u64,
    /// Jobs failed fleet-wide.
    pub failed: u64,
    /// Jobs cancelled fleet-wide.
    pub cancelled: u64,
    /// Jobs expired fleet-wide.
    pub expired: u64,
}

/// Ask every node for its `stats` and sum them. Unreachable nodes are
/// skipped (they contribute nothing); `nodes` counts the responders.
pub fn fleet_stats(nodes: &[String], timeout: Duration) -> AggregateStats {
    let mut agg = AggregateStats::default();
    for addr in nodes {
        let Ok(mut client) = connect(addr, timeout) else { continue };
        let Ok(reply) = client.send_job(&JobCommand::Stats) else { continue };
        if !reply.ok {
            continue;
        }
        let get = |k: &str| reply.field(k).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        agg.nodes += 1;
        agg.workers += get("workers");
        agg.capacity += get("capacity");
        agg.queued += get("queued");
        agg.running += get("running");
        agg.done += get("done");
        agg.failed += get("failed");
        agg.cancelled += get("cancelled");
        agg.expired += get("expired");
    }
    agg
}

/// Registration listener: nodes started with `--join` announce themselves
/// here, and the coordinator waits until the expected fleet size is
/// reached.
pub struct Registrar {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Registrar {
    /// Bind the registration port (0 = ephemeral).
    pub fn bind(port: u16) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Self { listener, addr })
    }

    /// The address nodes `--join`.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept `join` announcements until `expect` distinct node addresses
    /// registered or `timeout` elapsed (then an error naming the shortfall).
    /// `ping` is answered too, so nodes can probe the coordinator.
    pub fn wait_for(&self, expect: usize, timeout: Duration) -> io::Result<Vec<String>> {
        let deadline = Instant::now() + timeout;
        let mut nodes: Vec<String> = Vec::new();
        while nodes.len() < expect {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("only {}/{expect} nodes joined", nodes.len()),
                ));
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if let Err(e) = self.greet(stream, &mut nodes) {
                        // A malformed joiner must not kill registration.
                        let _ = e;
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(nodes)
    }

    fn greet(&self, stream: TcpStream, nodes: &mut Vec<String>) -> io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let reply = match parse_job_command(line.trim()) {
            Ok(JobCommand::Join { addr, workers: _ }) => {
                if !nodes.contains(&addr) {
                    nodes.push(addr);
                }
                format!("ok joined nodes={}", nodes.len())
            }
            Ok(JobCommand::Ping) => "ok pong".to_string(),
            Ok(_) => "err not-a-node".to_string(),
            Err(e) => format!("err {e}"),
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            device: "raid5-hdd4".into(),
            mode: WorkloadMode::peak(8192, 50, 100),
            loads: vec![20, 60, 100],
            intensity_pct: 100,
        }
    }

    #[test]
    fn cells_carry_the_load_levels_in_order() {
        let cells = spec().cells();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].mode.load_pct, 20);
        assert_eq!(cells[2].mode.load_pct, 100);
        assert!(cells.iter().all(|c| c.priority == 1), "fleet cells use deferred admission");
        assert_eq!(cells[1].name, "fleet-raid5-hdd4-load60");
    }

    #[test]
    fn report_round_trips_through_wire_formatting() {
        // The wire renders f64 with `{}` and the coordinator parses it back;
        // the report of parsed values must equal the report of the originals.
        let originals = [CellResult {
            iops: 1_234.567_890_123_4,
            mbps: 9.876_543_21,
            avg_response_ms: 0.001_234_567,
            watts: 110.000_000_001,
            energy_j: 42.0,
            iops_per_watt: 11.223_344_556_677,
            mbps_per_kilowatt: 89.0 / 7.0,
        }; 3];
        let direct = render_report(&spec(), &originals);
        let reparsed: Vec<CellResult> = originals
            .iter()
            .map(|r| {
                let line = format!(
                    "ok result id=1 record=0 iops={} mbps={} avg_response_ms={} watts={} \
                     energy_j={} iops_per_watt={} mbps_per_kilowatt={} queue_ms=1 run_ms=2",
                    r.iops,
                    r.mbps,
                    r.avg_response_ms,
                    r.watts,
                    r.energy_j,
                    r.iops_per_watt,
                    r.mbps_per_kilowatt
                );
                let reply = tracer_core::messages::parse_reply(&line).unwrap();
                CellResult::from_reply(&reply).unwrap()
            })
            .collect();
        assert_eq!(render_report(&spec(), &reparsed), direct);
        assert!(direct.starts_with("fleet-report device=raid5-hdd4 rs=8192 rn=50 rd=100 "));
        assert_eq!(direct.lines().count(), 4);
    }

    #[test]
    fn registrar_registers_and_answers_ping() {
        let registrar = Registrar::bind(0).unwrap();
        let addr = registrar.addr();
        let joiner = std::thread::spawn(move || {
            let mut c = HostClient::connect(addr).unwrap();
            assert!(c.ping().unwrap());
            let r = c.send_job(&JobCommand::Join { addr: "127.0.0.1:7777".into(), workers: 2 });
            // The registrar closes after one line per connection; a second
            // command on the ping connection may hit EOF, so join uses its
            // own connection.
            drop(r);
            let mut c = HostClient::connect(addr).unwrap();
            let reply = c
                .send_job(&JobCommand::Join { addr: "127.0.0.1:7777".into(), workers: 2 })
                .unwrap();
            assert!(reply.ok, "{reply:?}");
        });
        let nodes = registrar.wait_for(1, Duration::from_secs(10)).unwrap();
        joiner.join().unwrap();
        assert_eq!(nodes, vec!["127.0.0.1:7777".to_string()]);
    }

    #[test]
    fn empty_fleet_is_an_error() {
        let err = run_campaign(&[], &spec(), &FleetConfig::default()).unwrap_err();
        assert!(err.to_string().contains("no nodes"));
    }
}
