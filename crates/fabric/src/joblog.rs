//! Durable job log: the crash-safety layer of the fleet.
//!
//! Every job a node accepts over the wire is journalled to an append-only
//! file as a checksummed frame — submitted, started, and its terminal state
//! (done with the full [`TestRecord`], failed, cancelled, expired). On
//! restart the log is replayed: fully committed results are restored to the
//! results database without re-running anything, jobs that were queued or
//! in flight when the process died are re-resolved and re-enqueued under
//! their original ids, and a torn tail frame (the write the crash
//! interrupted) is detected by checksum and truncated away. `kill -9`
//! therefore loses no accepted job and duplicates no finished one.
//!
//! Frame format, little-endian: `[u32 payload_len][u32 crc32][payload]`,
//! payload a single JSON-encoded [`LogRecord`]. CRC32 is the IEEE
//! polynomial over the payload bytes, so truncation *and* bit corruption of
//! the tail are both caught; a corrupt frame ends replay at the last good
//! frame (everything before it is, by induction, intact).
//!
//! The frame codec ([`encode_frame`] / [`decode_frames`]) is pure — no file
//! handles, no indexing, no panics — so recovery behaves identically however
//! the bytes arrived, and the codec unit tests run under Miri.
#![doc = "tracer-invariant: deterministic"]
#![doc = "tracer-invariant: no-panic-wire"]

use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;
use tracer_core::db::TestRecord;
use tracer_trace::WorkloadMode;

/// Wire-level description of a job: everything a node needs to re-create the
/// evaluation after a restart. Unlike `EvaluationJob` (which carries a build
/// closure) this is plain data, so it can be journalled and shipped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Device / array under test.
    pub device: String,
    /// Workload mode including the load proportion.
    pub mode: WorkloadMode,
    /// Inter-arrival intensity, percent.
    pub intensity_pct: u32,
    /// Job label.
    pub name: String,
    /// Scheduling priority (0 = strict legacy admission).
    pub priority: u8,
    /// Queued-deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
}

/// One journal entry. `Done` carries the whole committed record so recovery
/// can answer `result` without re-running the evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Job accepted into the queue.
    Submitted {
        /// Id assigned at submission.
        id: u64,
        /// Re-creatable description of the job.
        spec: JobSpec,
    },
    /// A worker picked the job up.
    Started {
        /// Job id.
        id: u64,
    },
    /// The evaluation finished and its record was committed.
    Done {
        /// Job id.
        id: u64,
        /// The committed result record.
        record: TestRecord,
        /// Milliseconds the job waited in the queue.
        queue_ms: u64,
        /// Milliseconds the evaluation ran.
        run_ms: u64,
    },
    /// The evaluation panicked.
    Failed {
        /// Job id.
        id: u64,
        /// Panic message.
        reason: String,
    },
    /// The job was cancelled (queued or mid-run; either way no result).
    Cancelled {
        /// Job id.
        id: u64,
    },
    /// The job's queued-deadline elapsed before a worker freed up.
    Expired {
        /// Job id.
        id: u64,
    },
}

impl LogRecord {
    fn id(&self) -> u64 {
        match *self {
            LogRecord::Submitted { id, .. }
            | LogRecord::Started { id }
            | LogRecord::Done { id, .. }
            | LogRecord::Failed { id, .. }
            | LogRecord::Cancelled { id }
            | LogRecord::Expired { id } => id,
        }
    }
}

/// Replayed lifecycle state of one journalled job.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredState {
    /// Accepted but never picked up: must be re-enqueued.
    Queued,
    /// In flight when the process died: must be re-run (the measurement is
    /// side-effect free, so a re-run is safe and yields the identical
    /// result).
    Started,
    /// Fully committed: restore the record, never re-run.
    Done {
        /// The committed record from the log (boxed: a `TestRecord` is two
        /// orders of magnitude larger than the other variants).
        record: Box<TestRecord>,
        /// Queue-phase milliseconds at commit time.
        queue_ms: u64,
        /// Run-phase milliseconds at commit time.
        run_ms: u64,
    },
    /// Terminal failure; the reason is kept.
    Failed(String),
    /// Terminal cancellation.
    Cancelled,
    /// Terminal deadline expiry.
    Expired,
}

/// One job reconstructed from the log, in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// Original job id (preserved across the restart).
    pub id: u64,
    /// The journalled spec.
    pub spec: JobSpec,
    /// Where the job got to before the crash.
    pub state: RecoveredState,
}

/// Everything replay learned from the log.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Journalled jobs in submission order.
    pub jobs: Vec<RecoveredJob>,
    /// First id the restarted service may assign (max journalled id + 1).
    pub next_id: u64,
    /// Torn / corrupt tail frames truncated away (0 or 1 after a clean
    /// crash; more only under external corruption).
    pub torn_frames: usize,
}

impl Recovery {
    /// Jobs that must be re-enqueued (queued or in flight at the crash).
    pub fn pending(&self) -> impl Iterator<Item = &RecoveredJob> {
        self.jobs
            .iter()
            .filter(|j| matches!(j.state, RecoveredState::Queued | RecoveredState::Started))
    }
}

/// Append-only checksummed journal. Cheap to share (`Arc<JobLog>`); appends
/// serialize on an internal lock.
pub struct JobLog {
    file: Mutex<File>,
}

const FRAME_HEADER: usize = 8;
/// Refuse absurd frame lengths up front so a corrupt length field cannot
/// trigger a huge allocation during replay.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Read a little-endian `u32` at `offset`, if those four bytes exist.
fn read_u32(data: &[u8], offset: usize) -> Option<u32> {
    let bytes = data.get(offset..offset.checked_add(4)?)?;
    let arr: [u8; 4] = bytes.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Encode one record as a checksummed frame:
/// `[u32 payload_len][u32 crc32][json payload]`, little-endian.
pub fn encode_frame(record: &LogRecord) -> io::Result<Vec<u8>> {
    let payload = serde_json::to_string(record)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let body = payload.as_bytes();
    if body.len() as u64 > u64::from(MAX_FRAME) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"));
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(body).to_le_bytes());
    frame.extend_from_slice(body);
    Ok(frame)
}

/// Decode every intact frame from `data`, stopping at the first torn or
/// corrupt one. Returns the decoded records and the byte offset just past
/// the last good frame (everything beyond it should be truncated away).
///
/// The decoder is total: any byte slice — truncated, bit-flipped, or
/// adversarial — yields a prefix of good records, never a panic or an
/// oversized allocation.
pub fn decode_frames(data: &[u8]) -> (Vec<LogRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    // A header that doesn't fit ends the walk: it never hit the disk whole.
    while let (Some(len), Some(crc)) = (read_u32(data, offset), read_u32(data, offset + 4)) {
        if len > MAX_FRAME {
            break; // corrupt length field
        }
        let body_start = offset + FRAME_HEADER;
        let Some(body) = data.get(body_start..body_start + len as usize) else {
            break; // torn: the payload never hit the disk
        };
        if crc32(body) != crc {
            break; // torn or corrupt payload
        }
        let Ok(text) = std::str::from_utf8(body) else { break };
        let Ok(record) = serde_json::from_str::<LogRecord>(text) else { break };
        records.push(record);
        offset = body_start + len as usize;
    }
    (records, offset)
}

impl JobLog {
    /// Open (or create) the log at `path`, replay every intact frame, and
    /// truncate any torn tail so subsequent appends start from a clean
    /// frame boundary.
    pub fn open(path: &Path) -> io::Result<(Self, Recovery)> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        let (records, good_end) = decode_frames(&data);
        let mut recovery = Recovery::default();
        for record in records {
            apply(&mut recovery, record);
        }
        if good_end < data.len() {
            recovery.torn_frames = 1;
            file.set_len(good_end as u64)?;
        }
        file.seek(SeekFrom::Start(good_end as u64))?;

        if tracer_obs::enabled() {
            tracer_obs::counter("joblog.recovered").add(recovery.jobs.len() as u64);
            tracer_obs::counter("joblog.torn_frames").add(recovery.torn_frames as u64);
        }
        Ok((Self { file: Mutex::new(file) }, recovery))
    }

    /// Append one record as a checksummed frame. The frame is written with a
    /// single `write_all`, so a `kill -9` between appends never leaves a
    /// partial frame (only an OS or power failure can, and the checksum
    /// catches that case on replay).
    pub fn append(&self, record: &LogRecord) -> io::Result<()> {
        let frame = encode_frame(record)?;
        // A poisoned lock still guards a valid File; writes from the
        // panicked holder either completed (whole frame) or are caught by
        // the checksum on replay, so recovering the guard is sound.
        let mut file = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(&frame)?;
        if tracer_obs::enabled() {
            tracer_obs::counter("joblog.appends").incr();
        }
        Ok(())
    }
}

/// Fold one replayed record into the recovery state. Lifecycle records for
/// ids that never had a `Submitted` frame are ignored (possible only under
/// external tampering; replay must still not panic).
fn apply(recovery: &mut Recovery, record: LogRecord) {
    let id = record.id();
    recovery.next_id = recovery.next_id.max(id + 1);
    let state = match record {
        LogRecord::Submitted { id, spec } => {
            recovery.jobs.push(RecoveredJob { id, spec, state: RecoveredState::Queued });
            return;
        }
        LogRecord::Started { .. } => RecoveredState::Started,
        LogRecord::Done { record, queue_ms, run_ms, .. } => {
            RecoveredState::Done { record: Box::new(record), queue_ms, run_ms }
        }
        LogRecord::Failed { reason, .. } => RecoveredState::Failed(reason),
        LogRecord::Cancelled { .. } => RecoveredState::Cancelled,
        LogRecord::Expired { .. } => RecoveredState::Expired,
    };
    if let Some(job) = recovery.jobs.iter_mut().find(|j| j.id == id) {
        job.state = state;
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected), the classic byte-at-a-time
/// table-driven form.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    // tracer-lint: allow(no-panic-wire) -- index is masked to 0..=255 against a 256-entry table
    !data.iter().fold(!0u32, |crc, &b| (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize])
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        // tracer-lint: allow(no-panic-wire) -- loop bound i < 256; const fn cannot use iterators
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            device: "raid5-hdd4".into(),
            mode: WorkloadMode::peak(8192, 50, 100).at_load(60),
            intensity_pct: 100,
            name: name.into(),
            priority: 0,
            deadline_ms: None,
        }
    }

    fn record(id: u64) -> TestRecord {
        TestRecord {
            id,
            label: format!("job-{id}"),
            device: "raid5-hdd4".into(),
            mode: WorkloadMode::peak(8192, 50, 100),
            power: tracer_core::db::PowerData {
                volts: 220.0,
                avg_amps: 0.5,
                avg_watts: 110.0,
                energy_joules: 42.5,
            },
            perf: Default::default(),
            efficiency: Default::default(),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tracer_joblog_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    // The `codec_*` tests below are pure in-memory frame encode/decode — no
    // filesystem — so CI runs them under Miri (`cargo miri test codec_`).

    #[test]
    fn codec_round_trips_every_record_variant() {
        let records = vec![
            LogRecord::Submitted { id: 1, spec: spec("a") },
            LogRecord::Started { id: 1 },
            LogRecord::Done { id: 1, record: record(1), queue_ms: 3, run_ms: 40 },
            LogRecord::Failed { id: 2, reason: "boom".into() },
            LogRecord::Cancelled { id: 3 },
            LogRecord::Expired { id: 4 },
        ];
        let mut data = Vec::new();
        for r in &records {
            data.extend_from_slice(&encode_frame(r).unwrap());
        }
        let (decoded, good_end) = decode_frames(&data);
        assert_eq!(decoded, records);
        assert_eq!(good_end, data.len());
    }

    #[test]
    fn codec_survives_truncation_at_every_byte() {
        let mut data = Vec::new();
        data.extend_from_slice(
            &encode_frame(&LogRecord::Submitted { id: 1, spec: spec("a") }).unwrap(),
        );
        let first = data.len();
        data.extend_from_slice(&encode_frame(&LogRecord::Started { id: 1 }).unwrap());
        for cut in 0..data.len() {
            let (decoded, good_end) = decode_frames(&data[..cut]);
            // A prefix decodes to exactly the frames that fit whole.
            let expect = if cut >= first { 1 } else { 0 };
            assert_eq!(decoded.len(), expect, "cut at {cut}");
            assert_eq!(good_end, if cut >= first { first } else { 0 }, "cut at {cut}");
        }
    }

    #[test]
    fn codec_rejects_every_single_bit_flip() {
        let data = encode_frame(&LogRecord::Cancelled { id: 9 }).unwrap();
        for byte in 0..data.len() {
            for bit in 0..8u8 {
                let mut tampered = data.clone();
                tampered[byte] ^= 1 << bit;
                let (decoded, _) = decode_frames(&tampered);
                // Either the frame is rejected outright, or (length-field
                // flips that shrink the frame aside) it must not silently
                // decode to the original record with a wrong payload.
                if let Some(LogRecord::Cancelled { id }) = decoded.first() {
                    assert_eq!(*id, 9, "flip {byte}:{bit} forged a record");
                    // Only a flip confined to trailing slack could re-decode;
                    // with a tight frame there is none.
                    panic!("flip {byte}:{bit} went undetected");
                }
            }
        }
    }

    #[test]
    fn codec_refuses_oversized_length_fields_without_allocating() {
        let mut data = Vec::new();
        data.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        data.extend_from_slice(&[0u8; 16]);
        let (decoded, good_end) = decode_frames(&data);
        assert!(decoded.is_empty());
        assert_eq!(good_end, 0);
    }

    #[test]
    fn round_trip_restores_every_lifecycle_state() {
        let path = tmp("roundtrip.log");
        let _ = fs::remove_file(&path);
        {
            let (log, recovery) = JobLog::open(&path).unwrap();
            assert!(recovery.jobs.is_empty());
            for id in 1..=6 {
                log.append(&LogRecord::Submitted { id, spec: spec(&format!("j{id}")) }).unwrap();
            }
            log.append(&LogRecord::Started { id: 1 }).unwrap();
            log.append(&LogRecord::Started { id: 2 }).unwrap();
            log.append(&LogRecord::Done { id: 2, record: record(2), queue_ms: 3, run_ms: 40 })
                .unwrap();
            log.append(&LogRecord::Failed { id: 3, reason: "boom".into() }).unwrap();
            log.append(&LogRecord::Cancelled { id: 4 }).unwrap();
            log.append(&LogRecord::Expired { id: 5 }).unwrap();
        }
        let (_log, recovery) = JobLog::open(&path).unwrap();
        assert_eq!(recovery.torn_frames, 0);
        assert_eq!(recovery.next_id, 7);
        assert_eq!(recovery.jobs.len(), 6);
        assert_eq!(recovery.jobs[0].state, RecoveredState::Started);
        assert!(
            matches!(&recovery.jobs[1].state, RecoveredState::Done { record, queue_ms: 3, run_ms: 40 } if record.label == "job-2")
        );
        assert_eq!(recovery.jobs[2].state, RecoveredState::Failed("boom".into()));
        assert_eq!(recovery.jobs[3].state, RecoveredState::Cancelled);
        assert_eq!(recovery.jobs[4].state, RecoveredState::Expired);
        assert_eq!(recovery.jobs[5].state, RecoveredState::Queued);
        // Pending = the started job (in flight) + the still-queued one.
        let pending: Vec<u64> = recovery.pending().map(|j| j.id).collect();
        assert_eq!(pending, vec![1, 6]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume_cleanly() {
        let path = tmp("torn.log");
        let _ = fs::remove_file(&path);
        {
            let (log, _) = JobLog::open(&path).unwrap();
            log.append(&LogRecord::Submitted { id: 1, spec: spec("a") }).unwrap();
            log.append(&LogRecord::Submitted { id: 2, spec: spec("b") }).unwrap();
        }
        // Simulate a torn write: chop the last frame mid-payload.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 7]).unwrap();
        let (log, recovery) = JobLog::open(&path).unwrap();
        assert_eq!(recovery.torn_frames, 1);
        assert_eq!(recovery.jobs.len(), 1, "only the intact frame survives");
        assert_eq!(recovery.next_id, 2);
        // The log is usable again: the next append lands on a clean boundary.
        log.append(&LogRecord::Submitted { id: 2, spec: spec("b2") }).unwrap();
        drop(log);
        let (_log, recovery) = JobLog::open(&path).unwrap();
        assert_eq!(recovery.torn_frames, 0);
        assert_eq!(recovery.jobs.len(), 2);
        assert_eq!(recovery.jobs[1].spec.name, "b2");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_corruption_is_caught_by_the_checksum() {
        let path = tmp("corrupt.log");
        let _ = fs::remove_file(&path);
        {
            let (log, _) = JobLog::open(&path).unwrap();
            log.append(&LogRecord::Submitted { id: 1, spec: spec("a") }).unwrap();
            log.append(&LogRecord::Submitted { id: 2, spec: spec("b") }).unwrap();
        }
        let mut data = fs::read(&path).unwrap();
        let last = data.len() - 3;
        data[last] ^= 0x40; // flip one bit inside the second payload
        fs::write(&path, &data).unwrap();
        let (_log, recovery) = JobLog::open(&path).unwrap();
        assert_eq!(recovery.torn_frames, 1);
        assert_eq!(recovery.jobs.len(), 1);
        fs::remove_file(&path).unwrap();
    }
}
