//! `tracer-coordinate` — the fleet coordinator as a deployable binary.
//!
//! Flags are the `tracer coordinate` flags; parsing is delegated to the core
//! CLI so both front-ends stay in sync. Three modes:
//!
//! * `--nodes HOST:PORT,...` — dispatch the campaign to a fixed fleet.
//! * `--expect N [--port P]` — open a registrar, wait for `N` nodes started
//!   with `tracer-serve --join`, then dispatch to whoever joined (plus any
//!   `--nodes` given explicitly).
//! * `--serial REPO_DIR` — run the same cells locally, in order, on one
//!   host, and print the serial baseline report. A fleet run over the same
//!   campaign produces a byte-identical report, whatever the node count.
//! * `--scenario FILE` — take the campaign from a declarative scenario file.
//!   Alone it runs the scenario locally and prints the scenario report (the
//!   byte-compare partner of `tracer sweep --scenario`); with `--nodes` or
//!   `--expect` it dispatches the scenario's single-mode load grid to
//!   `tracer-serve --scenario` nodes; with `--serial` it prints the
//!   fleet-format serial baseline from synthesized traces.
//!
//! The report goes to stdout; everything else (fleet progress, dispatch
//! statistics, aggregated node stats) goes to stderr.

use std::process::ExitCode;
use std::time::Duration;
use tracer_core::cli::{self, Command};
use tracer_core::error::TracerError;
use tracer_core::scenario::{run_scenario, ScenarioSpec};
use tracer_fabric::coordinator::{
    fleet_stats, run_campaign, serial_report, CampaignSpec, FleetConfig,
};
use tracer_fabric::Registrar;
use tracer_trace::TraceRepository;

/// How long the registrar waits for the expected fleet to assemble.
const JOIN_TIMEOUT: Duration = Duration::from_secs(120);

fn main() -> ExitCode {
    // Reuse the core parser by prepending the verb it expects.
    let mut args = vec!["coordinate".to_string()];
    args.extend(std::env::args().skip(1));
    if args.iter().any(|a| a == "help" || a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let cmd = match cli::parse(&args) {
        Ok(cmd @ Command::Coordinate { .. }) => cmd,
        Ok(_) => unreachable!("the coordinate verb parses to Command::Coordinate"),
        Err(e) => {
            eprintln!("tracer-coordinate: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    match coordinate(cmd) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tracer-coordinate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn coordinate(cmd: Command) -> Result<(), TracerError> {
    let Command::Coordinate {
        nodes,
        array,
        mode,
        loads,
        intensity,
        expect,
        port,
        obs,
        serial,
        scenario,
    } = cmd
    else {
        unreachable!("checked by the caller");
    };
    if obs.is_some() {
        tracer_obs::enable();
    }
    let scn = scenario.map(|path| ScenarioSpec::from_file(&path)).transpose()?;

    if let Some(scn) = &scn {
        if nodes.is_empty() && expect == 0 && serial.is_none() {
            // Local scenario baseline: same renderer as `tracer sweep
            // --scenario`, so the two binaries' stdout is byte-comparable.
            let outcome = run_scenario(scn)?;
            print!("{}", outcome.report);
            dump_obs(obs.as_deref())?;
            return Ok(());
        }
        let modes = scn.workload.modes();
        if modes.len() != 1 {
            return Err(TracerError::Config(format!(
                "scenario {} expands to {} workload modes; fleet dispatch needs exactly one",
                scn.name,
                modes.len()
            )));
        }
    }

    let spec = match &scn {
        Some(scn) => CampaignSpec {
            device: scn.array.name.clone(),
            mode: scn.workload.modes()[0],
            loads: scn.loads.clone(),
            intensity_pct: 100,
        },
        None => CampaignSpec {
            device: array.build().config().name.clone(),
            mode,
            loads,
            intensity_pct: intensity,
        },
    };

    if let Some(repo_dir) = serial {
        let report = match &scn {
            // Scenario cells need no repository: synthesize the trace the
            // same way the serve nodes do (the --serial value is unused).
            Some(scn) => serial_report(
                &spec,
                || scn.array.build(),
                |dev, mode| {
                    (dev == scn.array.name).then(|| scn.workload.trace(&scn.array, *mode, 0).into())
                },
            )?,
            None => {
                let repo = TraceRepository::open(&repo_dir)
                    .map_err(|e| TracerError::Config(e.to_string()))?;
                serial_report(&spec, || array.build(), |dev, mode| repo.load_view(dev, mode).ok())?
            }
        };
        print!("{report}");
        dump_obs(obs.as_deref())?;
        return Ok(());
    }

    let mut fleet = nodes;
    if expect > 0 {
        let registrar = Registrar::bind(port)?;
        eprintln!(
            "waiting for {expect} nodes to join at {} (tracer-serve --join {})",
            registrar.addr(),
            registrar.addr()
        );
        fleet.extend(registrar.wait_for(expect, JOIN_TIMEOUT)?);
    }
    eprintln!(
        "dispatching {} cells for {} across {} nodes",
        spec.loads.len(),
        spec.device,
        fleet.len()
    );
    let outcome = run_campaign(&fleet, &spec, &FleetConfig::default())?;
    print!("{}", outcome.report);
    let s = &outcome.stats;
    eprintln!(
        "fleet: dispatched={} stolen={} redispatched={} nodes_dead={} completed={:?}",
        s.cells_dispatched,
        s.cells_stolen,
        s.cells_redispatched,
        s.nodes_dead,
        s.completed_per_node
    );
    let agg = fleet_stats(&fleet, Duration::from_secs(2));
    eprintln!(
        "nodes: responding={} workers={} done={} failed={} cancelled={} expired={}",
        agg.nodes, agg.workers, agg.done, agg.failed, agg.cancelled, agg.expired
    );
    dump_obs(obs.as_deref())?;
    Ok(())
}

fn dump_obs(path: Option<&std::path::Path>) -> std::io::Result<()> {
    if let Some(path) = path {
        tracer_obs::dump_to(&tracer_obs::Sink::file(path))?;
    }
    Ok(())
}

fn print_usage() {
    println!(
        "tracer-coordinate — shard a sweep campaign across tracer-serve nodes

USAGE:
  tracer-coordinate --nodes HOST:PORT,... [--array hdd4|hdd6|ssd4]
                    [--loads 20,40,...] [--intensity PCT]
                    [--rs BYTES --rn PCT --rd PCT]
                    [--expect N --port N] [--obs FILE] [--serial REPO_DIR]
                    [--scenario FILE]

The sweep report (one `cell load=...` line per level, deterministic bytes)
goes to stdout; fleet progress and statistics go to stderr. --expect opens a
registrar and waits for nodes started with `tracer-serve --join`. --serial
runs the same cells locally and prints the byte-identical baseline report.
--scenario takes the campaign from a scenario file: alone it runs the
scenario locally (byte-comparable to `tracer sweep --scenario`); with
--nodes/--expect it dispatches the single-mode load grid to
`tracer-serve --scenario` nodes; with --serial it prints the fleet-format
baseline from synthesized traces (the --serial value is unused)."
    );
}
