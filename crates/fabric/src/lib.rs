//! `tracer-fabric`: the crash-safe multi-node evaluation fleet.
//!
//! The paper's distributed deployment (§III-C) drives several storage
//! systems from several workload generators at once; `tracer-serve` scaled
//! one machine up to a worker pool, and this crate scales the deployment
//! *out* — and makes it survive crashes:
//!
//! * [`joblog`] — the durable job log. Every accepted job is journalled as a
//!   checksummed append-only frame (submitted / started / terminal state,
//!   with the full committed record); replay on restart restores finished
//!   results without re-running them, re-enqueues everything that was
//!   queued or in flight, and truncates a torn tail frame by checksum. A
//!   `kill -9` loses no accepted job and duplicates no result.
//! * [`coordinator`] — shards a sweep campaign across registered nodes with
//!   pipelined dispatch, work stealing from slow nodes, heartbeat liveness,
//!   and re-dispatch of cells owned by a dead node. Reports are rendered in
//!   cell order from wire values that round-trip `f64` exactly, so the same
//!   campaign is **byte-identical at any node count** and identical to the
//!   in-process [`coordinator::serial_report`] baseline.
//!
//! The `tracer-coordinate` binary puts the coordinator on the command line;
//! `tracer-serve --join/--log/--port` (in the serve crate) turns a node
//! into fleet material.

pub mod coordinator;
pub mod joblog;

pub use coordinator::{
    fleet_stats, run_campaign, serial_report, AggregateStats, CampaignSpec, CellResult,
    FleetConfig, FleetOutcome, FleetStats, Registrar,
};
pub use joblog::{JobLog, JobSpec, LogRecord, RecoveredJob, RecoveredState, Recovery};
