//! Flash solid-state-disk model.
//!
//! Early SLC drives like the Memoright 32 GB units in the paper's SSD RAID
//! (Table II) have no mechanical latency: service time is a per-command flash
//! access latency plus the transfer at the interface rate. Two behaviours
//! matter for the paper's observations (§VI-G):
//!
//! * **random writes trigger garbage collection** — a non-sequential write
//!   occasionally pays an erase/relocation penalty, so high random ratios
//!   lower efficiency (same direction as HDDs, milder magnitude);
//! * **sequential writes stream slightly faster than reads** on this class of
//!   SLC device, which is what makes a *low read ratio* comparatively
//!   energy-efficient in the paper's experiment.
//!
//! The GC model is deterministic (every `gc_period`-th random write pays
//! `gc_ms`), keeping simulations reproducible run to run.

use crate::device::{DeviceModel, DiskOp, Phase, PhaseLabel, ServicePlan};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Static parameters of an SSD model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdParams {
    /// Model name for reports.
    pub name: String,
    /// Capacity in 512-byte sectors.
    pub capacity_sectors: u64,
    /// Flash read command latency, microseconds.
    pub read_latency_us: f64,
    /// Flash program (write) command latency, microseconds.
    pub write_latency_us: f64,
    /// Sustained read rate, MB/s.
    pub read_mbps: f64,
    /// Sustained write rate, MB/s.
    pub write_mbps: f64,
    /// Every `gc_period`-th *random* write pays a garbage-collection stall.
    pub gc_period: u32,
    /// Garbage-collection stall, milliseconds.
    pub gc_ms: f64,
    /// Extra latency when the op direction flips (read↔write turnaround on
    /// the flash channel), microseconds. Mixed read/write streams pay it on
    /// every flip, which is why pure read or pure write streams are the
    /// efficient extremes on this class of device.
    pub turnaround_us: f64,
    /// Power, watts: idle. (The paper reports 3.5 W average idle per SSD.)
    pub idle_w: f64,
    /// Power, watts: reading.
    pub read_w: f64,
    /// Power, watts: writing.
    pub write_w: f64,
    /// Power, watts: during garbage collection.
    pub gc_w: f64,
}

impl SsdParams {
    /// Parameters approximating the paper's Memoright 32 GB SLC drives.
    pub fn memoright_slc_32gb() -> Self {
        Self {
            name: "Memoright-SLC-32GB".to_string(),
            capacity_sectors: 62_500_000, // 32 GB / 512 B
            read_latency_us: 100.0,
            write_latency_us: 250.0,
            read_mbps: 120.0,
            write_mbps: 130.0,
            gc_period: 8,
            gc_ms: 2.0,
            turnaround_us: 180.0,
            idle_w: 3.5,
            read_w: 4.5,
            write_w: 6.0,
            gc_w: 6.5,
        }
    }

    /// A consumer MLC drive of the following generation: faster interface,
    /// lower idle power, but costlier garbage collection than SLC.
    pub fn mlc_consumer_128gb() -> Self {
        Self {
            name: "MLC-Consumer-128GB".to_string(),
            capacity_sectors: 250_000_000, // 128 GB / 512 B
            read_latency_us: 80.0,
            write_latency_us: 350.0,
            read_mbps: 250.0,
            write_mbps: 170.0,
            gc_period: 4,
            gc_ms: 5.0,
            turnaround_us: 150.0,
            idle_w: 0.9,
            read_w: 2.4,
            write_w: 3.8,
            gc_w: 4.2,
        }
    }
}

/// A stateful SSD: parameters plus sequential-run and GC bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdModel {
    params: SsdParams,
    last_kind: Option<crate::device::OpKind>,
    /// LRU of recently written 4 MiB regions ("open blocks"). Writes landing
    /// in an open block extend it cheaply; writes elsewhere fragment the
    /// flash translation layer and advance the GC counter.
    open_blocks: std::collections::VecDeque<u64>,
    random_writes_since_gc: u32,
    /// Cumulative GC stalls (diagnostics).
    gc_events: u64,
}

/// Sectors per FTL "open block" region (4 MiB).
const OPEN_BLOCK_SECTORS: u64 = 8192;
/// How many write regions the FTL keeps open simultaneously.
const OPEN_BLOCK_SLOTS: usize = 8;

impl SsdModel {
    /// New drive with empty GC state.
    pub fn new(params: SsdParams) -> Self {
        Self {
            params,
            last_kind: None,
            open_blocks: std::collections::VecDeque::with_capacity(OPEN_BLOCK_SLOTS),
            random_writes_since_gc: 0,
            gc_events: 0,
        }
    }

    /// The drive's static parameters.
    pub fn params(&self) -> &SsdParams {
        &self.params
    }

    /// Number of garbage-collection stalls so far.
    pub fn gc_count(&self) -> u64 {
        self.gc_events
    }
}

impl DeviceModel for SsdModel {
    fn capacity_sectors(&self) -> u64 {
        self.params.capacity_sectors
    }

    fn idle_watts(&self) -> f64 {
        self.params.idle_w
    }

    fn service(&mut self, op: &DiskOp) -> ServicePlan {
        let p = &self.params;
        let mut phases = Vec::with_capacity(3);

        let (latency_us, rate_mbps, active_w) = if op.kind.is_read() {
            (p.read_latency_us, p.read_mbps, p.read_w)
        } else {
            (p.write_latency_us, p.write_mbps, p.write_w)
        };

        let turnaround =
            if self.last_kind.is_some_and(|k| k != op.kind) { p.turnaround_us } else { 0.0 };
        phases.push(Phase {
            duration: SimDuration::from_micros_f64(latency_us + turnaround),
            watts: active_w,
            label: PhaseLabel::Overhead,
        });

        if !op.kind.is_read() {
            let block = op.sector / OPEN_BLOCK_SECTORS;
            let in_open = self.open_blocks.iter().position(|&b| b == block);
            match in_open {
                Some(i) => {
                    // Keep the LRU fresh.
                    self.open_blocks.remove(i);
                    self.open_blocks.push_front(block);
                }
                None => {
                    if self.open_blocks.len() >= OPEN_BLOCK_SLOTS {
                        self.open_blocks.pop_back();
                    }
                    self.open_blocks.push_front(block);
                    self.random_writes_since_gc += 1;
                    if self.random_writes_since_gc >= p.gc_period {
                        self.random_writes_since_gc = 0;
                        self.gc_events += 1;
                        phases.push(Phase {
                            duration: SimDuration::from_millis_f64(p.gc_ms),
                            watts: p.gc_w,
                            label: PhaseLabel::GarbageCollect,
                        });
                    }
                }
            }
        }

        phases.push(Phase {
            duration: SimDuration::from_secs_f64(op.bytes() as f64 / (rate_mbps * 1e6)),
            watts: active_w,
            label: PhaseLabel::Transfer,
        });

        self.last_kind = Some(op.kind);
        ServicePlan { phases }
    }

    fn min_service_time(&self) -> SimDuration {
        // Every plan starts with a command-latency phase (turnaround and GC
        // only add); the transfer phase is strictly positive on top.
        SimDuration::from_micros_f64(self.params.read_latency_us.min(self.params.write_latency_us))
    }

    fn name(&self) -> &str {
        &self.params.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tracer_trace::OpKind;

    fn drive() -> SsdModel {
        SsdModel::new(SsdParams::memoright_slc_32gb())
    }

    #[test]
    fn read_latency_and_rate() {
        let mut d = drive();
        let plan = d.service(&DiskOp::new(0, 256, OpKind::Read)); // 128 KiB
        let total = plan.total_duration().as_millis_f64();
        let expect = 0.1 + 131_072.0 / 120e6 * 1e3;
        assert!((total - expect).abs() < 0.01, "128KiB read = {total}ms");
    }

    #[test]
    fn no_mechanical_random_penalty_for_reads() {
        let mut d = drive();
        let a = d.service(&DiskOp::new(0, 8, OpKind::Read)).total_duration();
        let b = d.service(&DiskOp::new(50_000_000, 8, OpKind::Read)).total_duration();
        assert_eq!(a, b, "random reads cost the same as sequential");
    }

    #[test]
    fn sequential_writes_never_gc() {
        let mut d = drive();
        let mut sector = 0;
        for _ in 0..100 {
            let plan = d.service(&DiskOp::new(sector, 8, OpKind::Write));
            assert!(plan.time_in(PhaseLabel::GarbageCollect).is_zero());
            sector += 8;
        }
        assert_eq!(d.gc_count(), 0);
    }

    #[test]
    fn random_writes_trigger_periodic_gc() {
        let mut d = drive();
        let mut gc_hits = 0;
        for i in 0..64u64 {
            // Jump around: never sequential.
            let plan = d.service(&DiskOp::new(i * 1_000_000 % 60_000_000 + 1, 8, OpKind::Write));
            if !plan.time_in(PhaseLabel::GarbageCollect).is_zero() {
                gc_hits += 1;
            }
        }
        assert_eq!(gc_hits, 64 / 8);
        assert_eq!(d.gc_count(), 8);
    }

    #[test]
    fn sequential_write_stream_beats_read_stream() {
        // The Memoright preset writes slightly faster than it reads; this is
        // the mechanism behind the paper's read-ratio observation for SSDs.
        let p = SsdParams::memoright_slc_32gb();
        assert!(p.write_mbps > p.read_mbps);
        let mut d = drive();
        d.service(&DiskOp::new(0, 8, OpKind::Write));
        let w = d.service(&DiskOp::new(8, 2048, OpKind::Write)).time_in(PhaseLabel::Transfer);
        let mut d = drive();
        d.service(&DiskOp::new(0, 8, OpKind::Read));
        let r = d.service(&DiskOp::new(8, 2048, OpKind::Read)).time_in(PhaseLabel::Transfer);
        assert!(w < r);
    }

    #[test]
    fn direction_flips_pay_turnaround() {
        let mut d = drive();
        d.service(&DiskOp::new(0, 8, OpKind::Read));
        let same = d.service(&DiskOp::new(8, 8, OpKind::Read)).total_duration();
        let mut d = drive();
        d.service(&DiskOp::new(0, 8, OpKind::Read));
        let flip = d.service(&DiskOp::new(8, 8, OpKind::Write)).total_duration();
        // Sequential write after read: pays write latency + turnaround.
        let expect_us = (250.0 - 100.0) + 180.0;
        let got_us = (flip.as_nanos() as f64 - same.as_nanos() as f64) / 1e3;
        // Transfer rate differs slightly between read and write; allow 40us.
        assert!((got_us - expect_us).abs() < 40.0, "turnaround delta {got_us}us");
    }

    #[test]
    fn mlc_generation_contrasts_with_slc() {
        let slc = SsdParams::memoright_slc_32gb();
        let mlc = SsdParams::mlc_consumer_128gb();
        assert!(mlc.idle_w < slc.idle_w, "newer generation idles lower");
        assert!(mlc.read_mbps > slc.read_mbps);
        assert!(mlc.gc_ms > slc.gc_ms, "MLC erase is slower");
        // The MLC preset reads faster than it writes (unlike the SLC).
        assert!(mlc.read_mbps > mlc.write_mbps);
    }

    #[test]
    fn idle_power_matches_paper() {
        assert!((drive().idle_watts() - 3.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_service_bounded(
            sector in 0u64..62_000_000,
            sectors in 1u64..4096,
            write in proptest::bool::ANY,
        ) {
            let mut d = drive();
            let kind = if write { OpKind::Write } else { OpKind::Read };
            let plan = d.service(&DiskOp::new(sector, sectors, kind));
            let ms = plan.total_duration().as_millis_f64();
            // Worst case: 2 MiB at 120 MB/s + latency + GC.
            prop_assert!(ms > 0.0 && ms < 25.0);
            prop_assert!(plan.energy_joules() > 0.0);
        }
    }
}
