//! Simulation time: nanosecond instants and durations.
//!
//! A dedicated pair of newtypes keeps instants and durations from being mixed
//! up and gives the simulator a single place for unit conversions. `u64`
//! nanoseconds cover ~584 years of simulated time, far beyond any replay.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, nanoseconds from simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Instant at `ns` nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Instant at `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Instant at `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Instant at `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Duration of `ns` nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Duration of `us` microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Duration of `ms` milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Duration of `s` seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Duration from fractional seconds, rounded to the nearest nanosecond.
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Duration from fractional milliseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Duration from fractional microseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Length in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Length in milliseconds as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True for the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
        assert_eq!(
            SimDuration::from_secs(1) + SimDuration::from_millis(500),
            SimDuration(1_500_000_000)
        );
        assert!((SimDuration::from_millis(2).as_millis_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn float_construction_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_millis_f64(0.5).as_nanos(), 500_000);
        assert_eq!(SimDuration::from_micros_f64(2.5).as_nanos(), 2_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
        let mut acc = SimTime::ZERO;
        acc += SimDuration::from_nanos(7);
        assert_eq!(acc.as_nanos(), 7);
        let total: SimDuration =
            [SimDuration::from_nanos(1), SimDuration::from_nanos(2)].into_iter().sum();
        assert_eq!(total.as_nanos(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
    }
}
