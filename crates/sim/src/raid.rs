//! Array geometry: striping and RAID-5 parity placement.
//!
//! The paper's testbed is a RAID-5 array with a 128 KB strip (§VI); writes on
//! such an array pay the classic small-write penalty (read-modify-write)
//! unless they cover a full stripe. The geometry module is pure address
//! arithmetic: it turns a logical request into per-disk extents and, for
//! writes, into a two-phase plan (old-data/parity reads, then data/parity
//! writes) choosing between read-modify-write and reconstruct-write by which
//! needs fewer disk reads.

use crate::stripe::StripeLayout;
use serde::{Deserialize, Serialize};
use tracer_trace::OpKind;

/// Redundancy scheme of the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Redundancy {
    /// Plain striping (RAID-0); a single-disk "array" is RAID-0 with 1 disk.
    Raid0,
    /// N-way mirroring (RAID-1): every member holds a full copy; reads
    /// alternate over the members, writes go to all of them.
    Raid1,
    /// Left-symmetric rotating parity (RAID-5).
    Raid5,
    /// Double rotated parity (RAID-6): P rotates left-symmetrically like
    /// RAID-5, Q sits cyclically adjacent to P, data strips fill the
    /// remaining members after Q.
    Raid6,
    /// Mirrored striping (RAID-10): strips round-robin over mirror pairs;
    /// reads alternate between the two copies, writes go to both.
    Raid10,
}

/// Striping geometry of an array.
///
/// ```
/// use tracer_sim::Geometry;
/// use tracer_sim::device::OpKind;
///
/// // The paper's testbed: RAID-5 over six disks, 128 KB strip.
/// let g = Geometry::raid5(6);
/// // A 4 KiB write is a small write: read old data + parity, write both.
/// let plan = g.plan(0, 8, OpKind::Write);
/// assert_eq!(plan.pre_reads.len(), 2);
/// assert_eq!(plan.ops.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of member disks.
    pub disks: usize,
    /// Strip (chunk) size in sectors. The paper uses 128 KB = 256 sectors.
    pub strip_sectors: u64,
    /// Redundancy scheme.
    pub redundancy: Redundancy,
}

/// A contiguous operation on one member disk, in disk-local sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskExtent {
    /// Member disk index.
    pub disk: usize,
    /// Starting disk-local sector.
    pub sector: u64,
    /// Length in sectors.
    pub sectors: u64,
    /// Read or write.
    pub kind: OpKind,
}

/// A request decomposed into disk operations.
///
/// `pre_reads` must complete before `ops` may issue (the RAID-5 write
/// two-phase); for reads `pre_reads` is empty.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoPlan {
    /// Phase 1: old data / parity / peer reads needed to compute parity.
    pub pre_reads: Vec<DiskExtent>,
    /// Phase 2: the data transfers (plus parity writes for RAID-5 writes).
    pub ops: Vec<DiskExtent>,
    /// Bytes passed through the controller's XOR engine for this request.
    pub parity_xor_bytes: u64,
}

impl IoPlan {
    /// Total disk operations across both phases.
    pub fn op_count(&self) -> usize {
        self.pre_reads.len() + self.ops.len()
    }
}

impl Geometry {
    /// RAID-5 geometry with the paper's 128 KB strip.
    pub fn raid5(disks: usize) -> Self {
        assert!(disks >= 3, "RAID-5 needs at least 3 disks");
        Self { disks, strip_sectors: 256, redundancy: Redundancy::Raid5 }
    }

    /// RAID-0 geometry with the paper's 128 KB strip. A zero-disk geometry is
    /// permitted so that the chassis-only idle measurement of the paper's
    /// Fig. 7 can be expressed; such an array cannot serve requests.
    pub fn raid0(disks: usize) -> Self {
        Self { disks, strip_sectors: 256, redundancy: Redundancy::Raid0 }
    }

    /// A single-disk pass-through geometry.
    pub fn single() -> Self {
        Self::raid0(1)
    }

    /// RAID-10 geometry (mirrored striping) with the paper's 128 KB strip.
    pub fn raid10(disks: usize) -> Self {
        assert!(disks >= 2 && disks % 2 == 0, "RAID-10 needs an even disk count >= 2");
        Self { disks, strip_sectors: 256, redundancy: Redundancy::Raid10 }
    }

    /// RAID-6 geometry (rotated P+Q) with the paper's 128 KB strip.
    pub fn raid6(disks: usize) -> Self {
        assert!(disks >= 4, "RAID-6 needs at least 4 disks");
        Self { disks, strip_sectors: 256, redundancy: Redundancy::Raid6 }
    }

    /// RAID-1 geometry (N-way mirror) with the paper's 128 KB strip.
    pub fn raid1(disks: usize) -> Self {
        assert!(disks >= 2, "RAID-1 needs at least 2 disks");
        Self { disks, strip_sectors: 256, redundancy: Redundancy::Raid1 }
    }

    /// The rotated-parity layout behind this geometry, when it has one
    /// (mirrored schemes place by pairing, not rotation).
    fn layout(&self) -> Option<StripeLayout> {
        match self.redundancy {
            Redundancy::Raid0 => Some(StripeLayout::new(self.disks.max(1), 0)),
            Redundancy::Raid5 => Some(StripeLayout::new(self.disks, 1)),
            Redundancy::Raid6 => Some(StripeLayout::new(self.disks, 2)),
            Redundancy::Raid1 | Redundancy::Raid10 => None,
        }
    }

    /// Number of data strips per stripe.
    pub fn data_disks(&self) -> usize {
        match self.redundancy {
            Redundancy::Raid0 => self.disks,
            Redundancy::Raid1 => 1,
            Redundancy::Raid5 => self.disks - 1,
            Redundancy::Raid6 => self.disks - 2,
            Redundancy::Raid10 => self.disks / 2,
        }
    }

    /// Usable data capacity given the per-disk capacity.
    pub fn data_capacity_sectors(&self, disk_capacity: u64) -> u64 {
        (disk_capacity / self.strip_sectors) * self.strip_sectors * self.data_disks() as u64
    }

    /// Parity disk for `stripe` (left-symmetric): parity starts on the last
    /// disk and rotates backwards. For RAID-6 this is the P strip.
    pub fn parity_disk(&self, stripe: u64) -> Option<usize> {
        match self.redundancy {
            Redundancy::Raid0 | Redundancy::Raid1 | Redundancy::Raid10 => None,
            Redundancy::Raid5 | Redundancy::Raid6 => {
                Some(self.layout().expect("rotated layout").parity_member(stripe, 0))
            }
        }
    }

    /// RAID-6 Q-strip disk for `stripe` (cyclically adjacent to P).
    pub fn q_disk(&self, stripe: u64) -> Option<usize> {
        match self.redundancy {
            Redundancy::Raid6 => {
                Some(self.layout().expect("rotated layout").parity_member(stripe, 1))
            }
            _ => None,
        }
    }

    /// RAID-10: the two member disks holding copies of logical strip `l`.
    fn mirror_pair(&self, logical_strip: u64) -> (usize, usize) {
        let pair = (logical_strip % self.data_disks() as u64) as usize;
        (pair * 2, pair * 2 + 1)
    }

    /// Map a logical sector to `(stripe, data-strip index, disk, disk sector)`.
    pub fn locate(&self, logical_sector: u64) -> StripLocation {
        let strip = self.strip_sectors;
        let logical_strip = logical_sector / strip;
        let offset = logical_sector % strip;
        let data = self.data_disks() as u64;
        let stripe = logical_strip / data;
        let index = (logical_strip % data) as usize;
        let disk = match self.redundancy {
            Redundancy::Raid0 | Redundancy::Raid5 | Redundancy::Raid6 => {
                self.layout().expect("rotated layout").data_member(stripe, index)
            }
            Redundancy::Raid1 => {
                // N-way mirror: the primary copy rotates over the members so
                // reads spread; every member holds the same disk sector.
                (stripe % self.disks as u64) as usize
            }
            Redundancy::Raid10 => {
                // Primary copy: alternate mirror halves by stripe so reads
                // spread over both members.
                let (a, b) = self.mirror_pair(logical_strip);
                if stripe % 2 == 0 {
                    a
                } else {
                    b
                }
            }
        };
        StripLocation { stripe, index, disk, disk_sector: stripe * strip + offset }
    }

    /// Decompose a logical request into a per-disk plan.
    ///
    /// Reads simply fan out. RAID-5 writes are planned per stripe:
    /// full-stripe writes compute parity from the new data (no reads); partial
    /// writes choose read-modify-write (read touched strips + parity) or
    /// reconstruct-write (read untouched strips), whichever reads less.
    pub fn plan(&self, logical_sector: u64, sectors: u64, kind: OpKind) -> IoPlan {
        self.plan_with_failure(logical_sector, sectors, kind, None)
    }

    /// [`Geometry::plan`] with an optional failed member (degraded RAID-5).
    ///
    /// Degraded operation is the mechanism behind redundancy-based energy
    /// conservation (eRAID spins a disk down and serves through parity):
    /// reads on the failed disk reconstruct from all surviving strips; writes
    /// touching the failed disk fold the lost data into the parity; stripes
    /// whose parity lives on the failed disk simply skip the parity update.
    ///
    /// # Panics
    /// Panics if a failure is given for a RAID-0 geometry (no redundancy) or
    /// the failed index is out of range.
    pub fn plan_with_failure(
        &self,
        logical_sector: u64,
        sectors: u64,
        kind: OpKind,
        failed: Option<usize>,
    ) -> IoPlan {
        assert!(sectors > 0, "zero-length request");
        if let Some(f) = failed {
            assert!(f < self.disks, "failed disk index out of range");
            assert_ne!(
                self.redundancy,
                Redundancy::Raid0,
                "RAID-0 has no redundancy to run degraded on"
            );
        }
        match (self.redundancy, kind, failed) {
            (_, OpKind::Read, None) | (Redundancy::Raid0, OpKind::Write, None) => IoPlan {
                pre_reads: Vec::new(),
                ops: merge_extents(self.map_extent(logical_sector, sectors, kind)),
                parity_xor_bytes: 0,
            },
            (Redundancy::Raid5, OpKind::Read, Some(f)) => {
                self.plan_degraded_read(logical_sector, sectors, f)
            }
            (Redundancy::Raid5, OpKind::Write, failed) => {
                self.plan_raid5_write(logical_sector, sectors, failed)
            }
            (Redundancy::Raid6, OpKind::Read, Some(f)) => {
                self.plan_raid6_degraded_read(logical_sector, sectors, f)
            }
            (Redundancy::Raid6, OpKind::Write, failed) => {
                self.plan_raid6_write(logical_sector, sectors, failed)
            }
            (Redundancy::Raid1, OpKind::Read, Some(f)) => {
                // Reads on the failed member hop to the cyclically next
                // surviving copy (same disk sector on every member).
                let ops = self
                    .map_extent(logical_sector, sectors, OpKind::Read)
                    .into_iter()
                    .map(|mut e| {
                        if e.disk == f {
                            e.disk = (f + 1) % self.disks;
                        }
                        e
                    })
                    .collect();
                IoPlan { pre_reads: Vec::new(), ops: merge_extents(ops), parity_xor_bytes: 0 }
            }
            (Redundancy::Raid1, OpKind::Write, failed) => {
                // Write every copy; a failed member just drops its copy.
                let mut ops = Vec::new();
                for e in self.map_extent(logical_sector, sectors, OpKind::Write) {
                    for disk in 0..self.disks {
                        if failed != Some(disk) {
                            ops.push(DiskExtent { disk, ..e });
                        }
                    }
                }
                IoPlan { pre_reads: Vec::new(), ops: merge_extents(ops), parity_xor_bytes: 0 }
            }
            (Redundancy::Raid10, OpKind::Read, Some(f)) => {
                // Reads on the failed member hop to its mirror — no
                // reconstruction math, just redirection.
                let ops = self
                    .map_extent(logical_sector, sectors, OpKind::Read)
                    .into_iter()
                    .map(|mut e| {
                        if e.disk == f {
                            e.disk = f ^ 1;
                        }
                        e
                    })
                    .collect();
                IoPlan { pre_reads: Vec::new(), ops: merge_extents(ops), parity_xor_bytes: 0 }
            }
            (Redundancy::Raid10, OpKind::Write, failed) => {
                // Write both copies; a failed member just drops its copy.
                let mut ops = Vec::new();
                for e in self.map_extent(logical_sector, sectors, OpKind::Write) {
                    let mirror = e.disk ^ 1;
                    if failed != Some(e.disk) {
                        ops.push(e);
                    }
                    if failed != Some(mirror) {
                        ops.push(DiskExtent { disk: mirror, ..e });
                    }
                }
                IoPlan { pre_reads: Vec::new(), ops: merge_extents(ops), parity_xor_bytes: 0 }
            }
            (Redundancy::Raid0, _, Some(_)) => unreachable!("checked above"),
        }
    }

    fn plan_degraded_read(&self, logical_sector: u64, sectors: u64, failed: usize) -> IoPlan {
        let strip = self.strip_sectors;
        let mut ops = Vec::new();
        let mut xor_bytes = 0u64;
        for ext in self.map_extent(logical_sector, sectors, OpKind::Read) {
            if ext.disk != failed {
                ops.push(ext);
                continue;
            }
            // Reconstruct the lost rows from every surviving member (peer
            // data strips plus parity).
            let stripe = ext.sector / strip;
            let rows = ext.sectors;
            for disk in 0..self.disks {
                if disk == failed {
                    continue;
                }
                ops.push(DiskExtent {
                    disk,
                    sector: ext.sector,
                    sectors: rows,
                    kind: OpKind::Read,
                });
            }
            xor_bytes += rows * (self.disks as u64 - 1) * tracer_trace::SECTOR_BYTES;
            let _ = stripe;
        }
        IoPlan { pre_reads: Vec::new(), ops: merge_extents(ops), parity_xor_bytes: xor_bytes }
    }

    /// RAID-6 single-failure degraded read: lost rows are reconstructed from
    /// P plus the surviving data strips. Q never participates in a
    /// single-failure rebuild — plain XOR suffices, exactly as in RAID-5 —
    /// which keeps the reconstruction brute-force checkable.
    fn plan_raid6_degraded_read(&self, logical_sector: u64, sectors: u64, failed: usize) -> IoPlan {
        let strip = self.strip_sectors;
        let mut ops = Vec::new();
        let mut xor_bytes = 0u64;
        for ext in self.map_extent(logical_sector, sectors, OpKind::Read) {
            if ext.disk != failed {
                ops.push(ext);
                continue;
            }
            let stripe = ext.sector / strip;
            let q = self.q_disk(stripe).expect("raid6 has Q");
            let rows = ext.sectors;
            for disk in 0..self.disks {
                if disk == failed || disk == q {
                    continue;
                }
                ops.push(DiskExtent {
                    disk,
                    sector: ext.sector,
                    sectors: rows,
                    kind: OpKind::Read,
                });
            }
            xor_bytes += rows * (self.disks as u64 - 2) * tracer_trace::SECTOR_BYTES;
        }
        IoPlan { pre_reads: Vec::new(), ops: merge_extents(ops), parity_xor_bytes: xor_bytes }
    }

    /// Fan a logical extent out to per-disk extents (no parity handling).
    fn map_extent(&self, logical_sector: u64, sectors: u64, kind: OpKind) -> Vec<DiskExtent> {
        let strip = self.strip_sectors;
        let mut out = Vec::new();
        let mut cur = logical_sector;
        let end = logical_sector + sectors;
        while cur < end {
            let loc = self.locate(cur);
            let within = strip - (cur % strip);
            let take = within.min(end - cur);
            out.push(DiskExtent { disk: loc.disk, sector: loc.disk_sector, sectors: take, kind });
            cur += take;
        }
        out
    }

    fn plan_raid5_write(&self, logical_sector: u64, sectors: u64, failed: Option<usize>) -> IoPlan {
        let strip = self.strip_sectors;
        let data = self.data_disks() as u64;
        let stripe_sectors = strip * data;
        let mut pre_reads = Vec::new();
        let mut ops = Vec::new();
        let mut xor_bytes = 0u64;

        let mut cur = logical_sector;
        let end = logical_sector + sectors;
        while cur < end {
            let stripe = cur / stripe_sectors;
            let stripe_start = stripe * stripe_sectors;
            let stripe_end = stripe_start + stripe_sectors;
            let seg_end = end.min(stripe_end);
            let parity = self.parity_disk(stripe).expect("raid5 has parity");

            // Data extents written in this stripe, and the union row range
            // (strip-relative) the parity update must cover.
            let mut writes = Vec::new();
            let mut row_min = u64::MAX;
            let mut row_max = 0u64;
            let mut c = cur;
            while c < seg_end {
                let loc = self.locate(c);
                let within = strip - (c % strip);
                let take = within.min(seg_end - c);
                let row0 = loc.disk_sector % strip;
                row_min = row_min.min(row0);
                row_max = row_max.max(row0 + take);
                writes.push(DiskExtent {
                    disk: loc.disk,
                    sector: loc.disk_sector,
                    sectors: take,
                    kind: OpKind::Write,
                });
                c += take;
            }
            let rows = row_max - row_min;
            let parity_sector = stripe * strip + row_min;
            let touched = writes.len() as u64;
            let full_stripe =
                touched == data && rows == strip && writes.iter().all(|w| w.sectors == strip);

            if let Some(f) = failed {
                if parity == f {
                    // Parity member is down: plain data writes, no parity
                    // maintenance possible for this stripe.
                    ops.extend(writes);
                    cur = seg_end;
                    continue;
                }
                let lost: Vec<&DiskExtent> = writes.iter().filter(|w| w.disk == f).collect();
                if lost.is_empty() {
                    // RMW is always valid here (touched strips and parity are
                    // all healthy); reconstruct-write would need the failed
                    // untouched strip.
                    for w in &writes {
                        pre_reads.push(DiskExtent { kind: OpKind::Read, ..*w });
                    }
                    pre_reads.push(DiskExtent {
                        disk: parity,
                        sector: parity_sector,
                        sectors: rows,
                        kind: OpKind::Read,
                    });
                    xor_bytes += (2 * touched + 2) * rows * tracer_trace::SECTOR_BYTES;
                } else {
                    // The lost strip's new data is folded into the parity:
                    // read the untouched healthy strips, then write the
                    // surviving data strips and the parity.
                    for idx in 0..data as usize {
                        let disk = (parity + 1 + idx) % self.disks;
                        if disk == f || writes.iter().any(|w| w.disk == disk) {
                            continue;
                        }
                        pre_reads.push(DiskExtent {
                            disk,
                            sector: parity_sector,
                            sectors: rows,
                            kind: OpKind::Read,
                        });
                    }
                    xor_bytes += (data + 1) * rows * tracer_trace::SECTOR_BYTES;
                    writes.retain(|w| w.disk != f);
                }
                ops.extend(writes);
                ops.push(DiskExtent {
                    disk: parity,
                    sector: parity_sector,
                    sectors: rows,
                    kind: OpKind::Write,
                });
                cur = seg_end;
                continue;
            }

            if full_stripe {
                // Parity computed from the new data alone.
                xor_bytes += stripe_sectors * tracer_trace::SECTOR_BYTES;
            } else {
                // Small write: RMW reads touched strips + parity; reconstruct
                // reads the untouched strips. Choose fewer disk reads.
                let rmw_reads = touched + 1;
                let reconstruct_reads = data - touched;
                if rmw_reads <= reconstruct_reads {
                    for w in &writes {
                        pre_reads.push(DiskExtent { kind: OpKind::Read, ..*w });
                    }
                    pre_reads.push(DiskExtent {
                        disk: parity,
                        sector: parity_sector,
                        sectors: rows,
                        kind: OpKind::Read,
                    });
                    xor_bytes += (2 * touched + 2) * rows * tracer_trace::SECTOR_BYTES;
                } else {
                    let touched_disks: Vec<usize> = writes.iter().map(|w| w.disk).collect();
                    for idx in 0..data as usize {
                        let disk = (parity + 1 + idx) % self.disks;
                        if touched_disks.contains(&disk) {
                            continue;
                        }
                        pre_reads.push(DiskExtent {
                            disk,
                            sector: parity_sector,
                            sectors: rows,
                            kind: OpKind::Read,
                        });
                    }
                    xor_bytes += (data + 1) * rows * tracer_trace::SECTOR_BYTES;
                }
            }

            ops.extend(writes);
            ops.push(DiskExtent {
                disk: parity,
                sector: parity_sector,
                sectors: rows,
                kind: OpKind::Write,
            });
            cur = seg_end;
        }

        IoPlan {
            pre_reads: merge_extents(pre_reads),
            ops: merge_extents(ops),
            parity_xor_bytes: xor_bytes,
        }
    }

    /// RAID-6 write planning. The structure mirrors [`Self::plan_raid5_write`]
    /// with two parity strips per stripe: full-stripe writes compute P and Q
    /// from the new data alone; partial writes choose read-modify-write
    /// (touched strips + P + Q) or reconstruct-write (untouched strips) by
    /// which reads less. Degraded, a failed parity member is simply skipped
    /// (the survivor keeps the stripe recoverable) and a failed data member's
    /// new data is folded into both parities.
    fn plan_raid6_write(&self, logical_sector: u64, sectors: u64, failed: Option<usize>) -> IoPlan {
        let strip = self.strip_sectors;
        let data = self.data_disks() as u64;
        let stripe_sectors = strip * data;
        let mut pre_reads = Vec::new();
        let mut ops = Vec::new();
        let mut xor_bytes = 0u64;

        let mut cur = logical_sector;
        let end = logical_sector + sectors;
        while cur < end {
            let stripe = cur / stripe_sectors;
            let stripe_start = stripe * stripe_sectors;
            let stripe_end = stripe_start + stripe_sectors;
            let seg_end = end.min(stripe_end);
            let parity = self.parity_disk(stripe).expect("raid6 has parity");
            let q = self.q_disk(stripe).expect("raid6 has Q");
            // Parity members that survive and therefore must be maintained.
            let live_parity: Vec<usize> =
                [parity, q].into_iter().filter(|&d| failed != Some(d)).collect();

            let mut writes = Vec::new();
            let mut row_min = u64::MAX;
            let mut row_max = 0u64;
            let mut c = cur;
            while c < seg_end {
                let loc = self.locate(c);
                let within = strip - (c % strip);
                let take = within.min(seg_end - c);
                let row0 = loc.disk_sector % strip;
                row_min = row_min.min(row0);
                row_max = row_max.max(row0 + take);
                writes.push(DiskExtent {
                    disk: loc.disk,
                    sector: loc.disk_sector,
                    sectors: take,
                    kind: OpKind::Write,
                });
                c += take;
            }
            let rows = row_max - row_min;
            let parity_sector = stripe * strip + row_min;
            let touched = writes.len() as u64;
            let full_stripe =
                touched == data && rows == strip && writes.iter().all(|w| w.sectors == strip);
            let lost_data = failed.is_some_and(|f| writes.iter().any(|w| w.disk == f));

            if full_stripe {
                // Each surviving parity strip is computed from the new data.
                xor_bytes += live_parity.len() as u64 * stripe_sectors * tracer_trace::SECTOR_BYTES;
            } else if lost_data {
                // The lost strip's new data is folded into the surviving
                // parities: read the untouched healthy data strips.
                for idx in 0..data as usize {
                    let disk = self.layout().expect("rotated layout").data_member(stripe, idx);
                    if failed == Some(disk) || writes.iter().any(|w| w.disk == disk) {
                        continue;
                    }
                    pre_reads.push(DiskExtent {
                        disk,
                        sector: parity_sector,
                        sectors: rows,
                        kind: OpKind::Read,
                    });
                }
                xor_bytes += (data + live_parity.len() as u64) * rows * tracer_trace::SECTOR_BYTES;
            } else {
                // Small write: RMW reads touched strips + surviving parities;
                // reconstruct reads the untouched strips. A failed untouched
                // data member makes reconstruct impossible, forcing RMW.
                let failed_data_member = failed.is_some_and(|f| f != parity && f != q);
                let rmw_reads = touched + live_parity.len() as u64;
                let reconstruct_reads = data - touched;
                if rmw_reads <= reconstruct_reads || failed_data_member {
                    for w in &writes {
                        pre_reads.push(DiskExtent { kind: OpKind::Read, ..*w });
                    }
                    for &p in &live_parity {
                        pre_reads.push(DiskExtent {
                            disk: p,
                            sector: parity_sector,
                            sectors: rows,
                            kind: OpKind::Read,
                        });
                    }
                    xor_bytes += (2 * touched + 2 * live_parity.len() as u64)
                        * rows
                        * tracer_trace::SECTOR_BYTES;
                } else {
                    let touched_disks: Vec<usize> = writes.iter().map(|w| w.disk).collect();
                    for idx in 0..data as usize {
                        let disk = self.layout().expect("rotated layout").data_member(stripe, idx);
                        if touched_disks.contains(&disk) {
                            continue;
                        }
                        pre_reads.push(DiskExtent {
                            disk,
                            sector: parity_sector,
                            sectors: rows,
                            kind: OpKind::Read,
                        });
                    }
                    xor_bytes +=
                        (data + live_parity.len() as u64) * rows * tracer_trace::SECTOR_BYTES;
                }
            }

            if let Some(f) = failed {
                writes.retain(|w| w.disk != f);
            }
            ops.extend(writes);
            for &p in &live_parity {
                ops.push(DiskExtent {
                    disk: p,
                    sector: parity_sector,
                    sectors: rows,
                    kind: OpKind::Write,
                });
            }
            cur = seg_end;
        }

        IoPlan {
            pre_reads: merge_extents(pre_reads),
            ops: merge_extents(ops),
            parity_xor_bytes: xor_bytes,
        }
    }
}

/// Result of [`Geometry::locate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripLocation {
    /// Stripe number.
    pub stripe: u64,
    /// Data-strip index within the stripe (0-based, parity excluded).
    pub index: usize,
    /// Member disk holding the sector.
    pub disk: usize,
    /// Disk-local sector.
    pub disk_sector: u64,
}

/// Bitmask of the member disks a set of extents touches. Disks ≥ 64 (beyond
/// the mask's width) all fold onto the top bit, so the mask is exact for
/// realistic arrays and conservative for pathological ones.
pub fn extents_disk_mask(extents: &[DiskExtent]) -> u64 {
    extents.iter().fold(0u64, |m, e| m | 1u64 << e.disk.min(63))
}

/// Merge extents that are contiguous on the same disk with the same kind.
fn merge_extents(mut extents: Vec<DiskExtent>) -> Vec<DiskExtent> {
    extents.sort_by_key(|e| (e.disk, e.sector));
    let mut out: Vec<DiskExtent> = Vec::with_capacity(extents.len());
    for e in extents {
        match out.last_mut() {
            Some(last)
                if last.disk == e.disk
                    && last.kind == e.kind
                    && last.sector + last.sectors == e.sector =>
            {
                last.sectors += e.sectors;
            }
            _ => out.push(e),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn parity_rotates_over_all_disks() {
        let g = Geometry::raid5(5);
        let seen: HashSet<_> = (0..5).map(|s| g.parity_disk(s).unwrap()).collect();
        assert_eq!(seen.len(), 5);
        assert_eq!(g.parity_disk(0), Some(4));
        assert_eq!(g.parity_disk(1), Some(3));
        assert_eq!(g.parity_disk(5), Some(4)); // period = disks
    }

    #[test]
    fn locate_never_hits_parity() {
        let g = Geometry::raid5(4);
        for ls in (0..40_000).step_by(64) {
            let loc = g.locate(ls);
            assert_ne!(Some(loc.disk), g.parity_disk(loc.stripe), "sector {ls}");
        }
    }

    #[test]
    fn raid0_round_robin() {
        let g = Geometry::raid0(3);
        assert_eq!(g.locate(0).disk, 0);
        assert_eq!(g.locate(256).disk, 1);
        assert_eq!(g.locate(512).disk, 2);
        assert_eq!(g.locate(768).disk, 0);
        assert_eq!(g.locate(768).disk_sector, 256);
        assert!(g.parity_disk(0).is_none());
    }

    #[test]
    fn data_capacity() {
        let g = Geometry::raid5(6);
        assert_eq!(g.data_disks(), 5);
        // 1000 strips per disk, 5 data disks.
        assert_eq!(g.data_capacity_sectors(256_000), 256_000 * 5);
        // Trailing partial strip on each disk is unusable.
        assert_eq!(g.data_capacity_sectors(256_100), 256_000 * 5);
    }

    #[test]
    fn read_fans_out_and_merges() {
        let g = Geometry::raid5(4);
        // 3 data disks; read 2 full stripes = 6 strips.
        let plan = g.plan(0, 256 * 6, OpKind::Read);
        assert!(plan.pre_reads.is_empty());
        assert_eq!(plan.parity_xor_bytes, 0);
        let total: u64 = plan.ops.iter().map(|e| e.sectors).sum();
        assert_eq!(total, 256 * 6);
        // Stripe 0 parity on disk 3, stripe 1 on disk 2: data extents land on
        // disks {0,1,2} then {3,0,1}; merging keeps disk count <= 4.
        assert!(plan.ops.len() <= 6);
        assert!(plan.ops.iter().all(|e| e.kind == OpKind::Read));
    }

    #[test]
    fn small_write_is_rmw() {
        let g = Geometry::raid5(6);
        // 4 KiB write: one data strip touched -> RMW (2 reads, 2 writes).
        let plan = g.plan(0, 8, OpKind::Write);
        assert_eq!(plan.pre_reads.len(), 2);
        assert_eq!(plan.ops.len(), 2);
        let parity = g.parity_disk(0).unwrap();
        assert!(plan.pre_reads.iter().any(|e| e.disk == parity));
        assert!(plan.ops.iter().any(|e| e.disk == parity && e.kind == OpKind::Write));
        // Parity extent covers exactly the written rows.
        let pw = plan.ops.iter().find(|e| e.disk == parity).unwrap();
        assert_eq!(pw.sectors, 8);
        assert!(plan.parity_xor_bytes > 0);
    }

    #[test]
    fn full_stripe_write_needs_no_reads() {
        let g = Geometry::raid5(4);
        let stripe_sectors = 256 * 3;
        let plan = g.plan(0, stripe_sectors, OpKind::Write);
        assert!(plan.pre_reads.is_empty());
        // 3 data strips + parity.
        let total: u64 = plan.ops.iter().map(|e| e.sectors).sum();
        assert_eq!(total, 256 * 4);
        assert!(plan.ops.iter().all(|e| e.kind == OpKind::Write));
    }

    #[test]
    fn wide_partial_write_uses_reconstruct() {
        let g = Geometry::raid5(6);
        // Touch 4 of 5 data strips fully: RMW needs 5 reads, reconstruct 1.
        let plan = g.plan(0, 256 * 4, OpKind::Write);
        assert_eq!(plan.pre_reads.len(), 1);
        let untouched_reads = &plan.pre_reads[0];
        assert_eq!(untouched_reads.sectors, 256);
        assert_eq!(plan.ops.iter().map(|e| e.sectors).sum::<u64>(), 256 * 5);
    }

    #[test]
    fn multi_stripe_write_plans_each_stripe() {
        let g = Geometry::raid5(4);
        let stripe_sectors = 256 * 3;
        // Half of stripe 0's last strip + all of stripe 1.
        let plan = g.plan(stripe_sectors - 128, 128 + stripe_sectors, OpKind::Write);
        // Stripe 0: small write (RMW: 2 reads). Stripe 1: full stripe.
        assert_eq!(plan.pre_reads.len(), 2);
        let writes: u64 = plan.ops.iter().map(|e| e.sectors).sum();
        assert_eq!(writes, 128 + 128 /*stripe0 parity rows*/ + 256 * 4);
    }

    #[test]
    fn degraded_read_on_surviving_disk_is_unchanged() {
        let g = Geometry::raid5(4);
        let healthy = g.plan(0, 8, OpKind::Read);
        // Sector 0 lives on disk 0 (stripe 0, parity on disk 3).
        let degraded = g.plan_with_failure(0, 8, OpKind::Read, Some(2));
        assert_eq!(healthy, degraded, "failure elsewhere must not change the plan");
    }

    #[test]
    fn degraded_read_reconstructs_from_all_survivors() {
        let g = Geometry::raid5(4);
        // Sector 0 -> disk 0. Fail disk 0: read must touch disks 1, 2, 3.
        let plan = g.plan_with_failure(0, 8, OpKind::Read, Some(0));
        let disks: std::collections::HashSet<usize> = plan.ops.iter().map(|e| e.disk).collect();
        assert_eq!(disks, [1usize, 2, 3].into_iter().collect());
        assert!(plan.ops.iter().all(|e| e.sectors == 8 && e.kind == OpKind::Read));
        assert!(plan.parity_xor_bytes > 0, "reconstruction must charge XOR time");
        assert!(plan.pre_reads.is_empty());
    }

    #[test]
    fn degraded_write_to_lost_strip_folds_into_parity() {
        let g = Geometry::raid5(4);
        // Write to disk 0's strip with disk 0 failed: read the untouched
        // healthy strips (disks 1 and 2... minus parity), write parity only.
        let plan = g.plan_with_failure(0, 8, OpKind::Write, Some(0));
        let parity = g.parity_disk(0).unwrap();
        assert_eq!(parity, 3);
        // Untouched healthy data strips: disks 1, 2.
        let read_disks: std::collections::HashSet<usize> =
            plan.pre_reads.iter().map(|e| e.disk).collect();
        assert_eq!(read_disks, [1usize, 2].into_iter().collect());
        // No write can land on the failed disk.
        assert!(plan.ops.iter().all(|e| e.disk != 0));
        assert!(plan.ops.iter().any(|e| e.disk == parity && e.kind == OpKind::Write));
    }

    #[test]
    fn degraded_write_with_failed_parity_skips_parity() {
        let g = Geometry::raid5(4);
        // Stripe 0's parity is disk 3; fail it.
        let plan = g.plan_with_failure(0, 8, OpKind::Write, Some(3));
        assert!(plan.pre_reads.is_empty());
        assert_eq!(plan.ops.len(), 1);
        assert_eq!(plan.ops[0].disk, 0);
        assert_eq!(plan.parity_xor_bytes, 0);
    }

    #[test]
    fn degraded_write_on_healthy_strips_uses_rmw() {
        let g = Geometry::raid5(5);
        // Write to disk 0's strip; fail disk 2 (an untouched data member):
        // reconstruct-write is impossible, RMW must be chosen.
        let plan = g.plan_with_failure(0, 8, OpKind::Write, Some(2));
        assert!(plan.ops.iter().chain(&plan.pre_reads).all(|e| e.disk != 2));
        assert_eq!(plan.pre_reads.len(), 2, "RMW: old data + old parity");
    }

    #[test]
    #[should_panic(expected = "no redundancy")]
    fn degraded_raid0_panics() {
        Geometry::raid0(3).plan_with_failure(0, 8, OpKind::Read, Some(0));
    }

    #[test]
    fn raid10_mapping_and_plans() {
        let g = Geometry::raid10(6); // 3 mirror pairs
        assert_eq!(g.data_disks(), 3);
        assert_eq!(g.data_capacity_sectors(256_000), 256_000 * 3);
        // Reads alternate primary halves across stripes.
        let even = g.locate(0); // stripe 0
        let odd = g.locate(3 * 256); // stripe 1, same pair 0
        assert_eq!(even.disk & !1, odd.disk & !1, "same mirror pair");
        assert_ne!(even.disk, odd.disk, "alternating halves");
        // A write lands on both members of the pair, same disk sector.
        let plan = g.plan(0, 8, OpKind::Write);
        assert!(plan.pre_reads.is_empty());
        assert_eq!(plan.ops.len(), 2);
        assert_eq!(plan.ops[0].sector, plan.ops[1].sector);
        assert_eq!(plan.ops[0].disk ^ 1, plan.ops[1].disk);
        assert_eq!(plan.parity_xor_bytes, 0);
        // A read is a single op.
        assert_eq!(g.plan(0, 8, OpKind::Read).ops.len(), 1);
    }

    #[test]
    fn raid10_degraded_redirects_to_the_mirror() {
        let g = Geometry::raid10(4);
        // Find the primary for sector 0 and fail it.
        let primary = g.locate(0).disk;
        let plan = g.plan_with_failure(0, 8, OpKind::Read, Some(primary));
        assert_eq!(plan.ops.len(), 1);
        assert_eq!(plan.ops[0].disk, primary ^ 1, "read hops to the mirror");
        // Degraded write: single copy written.
        let plan = g.plan_with_failure(0, 8, OpKind::Write, Some(primary));
        assert_eq!(plan.ops.len(), 1);
        assert_eq!(plan.ops[0].disk, primary ^ 1);
    }

    #[test]
    #[should_panic(expected = "even disk count")]
    fn raid10_rejects_odd_disks() {
        Geometry::raid10(5);
    }

    #[test]
    fn raid6_p_q_rotate_together() {
        let g = Geometry::raid6(6);
        assert_eq!(g.data_disks(), 4);
        for stripe in 0..12u64 {
            let p = g.parity_disk(stripe).unwrap();
            let q = g.q_disk(stripe).unwrap();
            assert_eq!((p + 1) % 6, q, "Q cyclically adjacent to P");
        }
        // P visits every member over one period, like RAID-5.
        let seen: HashSet<_> = (0..6).map(|s| g.parity_disk(s).unwrap()).collect();
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn raid6_locate_never_hits_p_or_q() {
        let g = Geometry::raid6(5);
        for ls in (0..40_000).step_by(64) {
            let loc = g.locate(ls);
            assert_ne!(Some(loc.disk), g.parity_disk(loc.stripe), "sector {ls} on P");
            assert_ne!(Some(loc.disk), g.q_disk(loc.stripe), "sector {ls} on Q");
        }
    }

    #[test]
    fn raid6_small_write_is_rmw_with_both_parities() {
        let g = Geometry::raid6(6);
        // One data strip touched: RMW reads data + P + Q (3) vs reconstruct
        // reads the 3 untouched strips — RMW wins the tie.
        let plan = g.plan(0, 8, OpKind::Write);
        assert_eq!(plan.pre_reads.len(), 3);
        assert_eq!(plan.ops.len(), 3);
        let p = g.parity_disk(0).unwrap();
        let q = g.q_disk(0).unwrap();
        for parity in [p, q] {
            assert!(plan.pre_reads.iter().any(|e| e.disk == parity));
            assert!(plan.ops.iter().any(|e| e.disk == parity && e.kind == OpKind::Write));
        }
        assert!(plan.parity_xor_bytes > 0);
    }

    #[test]
    fn raid6_full_stripe_write_needs_no_reads() {
        let g = Geometry::raid6(6);
        let stripe_sectors = 256 * 4;
        let plan = g.plan(0, stripe_sectors, OpKind::Write);
        assert!(plan.pre_reads.is_empty());
        // 4 data strips + P + Q.
        let total: u64 = plan.ops.iter().map(|e| e.sectors).sum();
        assert_eq!(total, 256 * 6);
    }

    #[test]
    fn raid6_degraded_write_with_failed_parity_keeps_survivor() {
        let g = Geometry::raid6(6);
        let p = g.parity_disk(0).unwrap();
        let q = g.q_disk(0).unwrap();
        // Fail Q: the write still maintains P like a RAID-5 small write.
        let plan = g.plan_with_failure(0, 8, OpKind::Write, Some(q));
        assert!(plan.ops.iter().chain(&plan.pre_reads).all(|e| e.disk != q));
        assert!(plan.ops.iter().any(|e| e.disk == p && e.kind == OpKind::Write));
        assert_eq!(plan.pre_reads.len(), 2, "RMW: old data + old P");
    }

    #[test]
    fn raid6_degraded_write_to_lost_strip_folds_into_both_parities() {
        let g = Geometry::raid6(6);
        let lost = g.locate(0).disk;
        let plan = g.plan_with_failure(0, 8, OpKind::Write, Some(lost));
        let p = g.parity_disk(0).unwrap();
        let q = g.q_disk(0).unwrap();
        assert!(plan.ops.iter().chain(&plan.pre_reads).all(|e| e.disk != lost));
        for parity in [p, q] {
            assert!(plan.ops.iter().any(|e| e.disk == parity && e.kind == OpKind::Write));
        }
        // Untouched healthy data strips are read to fold the lost data in.
        assert_eq!(plan.pre_reads.len(), g.data_disks() - 1);
    }

    #[test]
    fn raid1_mirrors_every_write_and_rotates_reads() {
        let g = Geometry::raid1(3);
        assert_eq!(g.data_disks(), 1);
        assert_eq!(g.data_capacity_sectors(256_000), 256_000);
        // Primary copy rotates over the members stripe by stripe.
        assert_eq!(g.locate(0).disk, 0);
        assert_eq!(g.locate(256).disk, 1);
        assert_eq!(g.locate(512).disk, 2);
        assert_eq!(g.locate(768).disk, 0);
        // A write fans out to all three copies at the same disk sector.
        let plan = g.plan(0, 8, OpKind::Write);
        assert_eq!(plan.ops.len(), 3);
        assert!(plan.ops.iter().all(|e| e.sector == plan.ops[0].sector));
        assert_eq!(plan.parity_xor_bytes, 0);
        // A read is a single op on the primary.
        assert_eq!(g.plan(0, 8, OpKind::Read).ops.len(), 1);
    }

    #[test]
    fn raid1_degraded_hops_to_next_survivor() {
        let g = Geometry::raid1(2);
        let primary = g.locate(0).disk;
        let plan = g.plan_with_failure(0, 8, OpKind::Read, Some(primary));
        assert_eq!(plan.ops.len(), 1);
        assert_eq!(plan.ops[0].disk, (primary + 1) % 2);
        let plan = g.plan_with_failure(0, 8, OpKind::Write, Some(primary));
        assert_eq!(plan.ops.len(), 1, "only the surviving copy is written");
    }

    #[test]
    #[should_panic(expected = "at least 4 disks")]
    fn raid6_rejects_small_arrays() {
        Geometry::raid6(3);
    }

    /// Deterministic synthetic content of a logical sector, for the
    /// brute-force reconstruction oracle.
    fn sector_value(ls: u64) -> u64 {
        ls.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xDEAD_BEEF
    }

    /// Brute-force content of `(disk, disk_sector)` under a RAID-6 geometry:
    /// data strips carry [`sector_value`], P is the XOR of the stripe row,
    /// and Q is a deliberately different mix so a plan that wrongly reads Q
    /// fails the oracle instead of passing by luck.
    fn raid6_disk_value(g: &Geometry, disk: usize, dsector: u64) -> u64 {
        let strip = g.strip_sectors;
        let stripe = dsector / strip;
        let row = dsector % strip;
        let data = g.data_disks() as u64;
        let p = g.parity_disk(stripe).unwrap();
        let q = g.q_disk(stripe).unwrap();
        let logical_of = |index: u64| (stripe * data + index) * strip + row;
        if disk == p {
            (0..data).fold(0u64, |acc, i| acc ^ sector_value(logical_of(i)))
        } else if disk == q {
            (0..data).fold(0u64, |acc, i| acc ^ sector_value(logical_of(i)).wrapping_mul(i + 2))
        } else {
            let idx = (0..data)
                .find(|&i| g.locate(logical_of(i)).disk == disk)
                .expect("member holds a data strip of this stripe");
            sector_value(logical_of(idx))
        }
    }

    proptest! {
        #[test]
        fn prop_raid6_degraded_read_reconstructs_exact_content(
            disks in 4usize..8,
            failed in 0usize..8,
            ls in 0u64..200_000,
        ) {
            prop_assume!(failed < disks);
            let g = Geometry::raid6(disks);
            let loc = g.locate(ls);
            let plan = g.plan_with_failure(ls, 1, OpKind::Read, Some(failed));
            if loc.disk != failed {
                prop_assert_eq!(plan, g.plan(ls, 1, OpKind::Read),
                    "failure elsewhere must not change the plan");
            } else {
                let mut acc = 0u64;
                for e in &plan.ops {
                    prop_assert_eq!(e.sectors, 1);
                    prop_assert_eq!(e.kind, OpKind::Read);
                    acc ^= raid6_disk_value(&g, e.disk, e.sector);
                }
                prop_assert_eq!(acc, sector_value(ls),
                    "XOR of the surviving reads must reproduce the lost sector");
            }
        }

        #[test]
        fn prop_raid6_rotation_keeps_p_q_data_disjoint(
            disks in 4usize..9,
            stripe in 0u64..1_000,
        ) {
            let g = Geometry::raid6(disks);
            let p = g.parity_disk(stripe).unwrap();
            let q = g.q_disk(stripe).unwrap();
            prop_assert_ne!(p, q);
            prop_assert_eq!((p + 1) % disks, q);
            let data = g.data_disks() as u64;
            for index in 0..data {
                let ls = (stripe * data + index) * g.strip_sectors;
                let d = g.locate(ls).disk;
                prop_assert_ne!(d, p);
                prop_assert_ne!(d, q);
            }
        }

        #[test]
        fn prop_raid6_degraded_plans_never_touch_failed_disk(
            disks in 4usize..8,
            failed in 0usize..8,
            start in 0u64..50_000,
            len in 1u64..1_500,
            write in proptest::bool::ANY,
        ) {
            prop_assume!(failed < disks);
            let g = Geometry::raid6(disks);
            let kind = if write { OpKind::Write } else { OpKind::Read };
            let plan = g.plan_with_failure(start, len, kind, Some(failed));
            for e in plan.ops.iter().chain(&plan.pre_reads) {
                prop_assert_ne!(e.disk, failed, "plan touched the failed disk");
            }
            if !write {
                let total: u64 = plan.ops.iter().map(|e| e.sectors).sum();
                prop_assert!(total >= len);
            }
        }

        #[test]
        fn prop_raid1_plans_cover_and_respect_failures(
            disks in 2usize..5,
            failed in 0usize..5,
            start in 0u64..50_000,
            len in 1u64..1_500,
            write in proptest::bool::ANY,
        ) {
            prop_assume!(failed < disks);
            let g = Geometry::raid1(disks);
            let kind = if write { OpKind::Write } else { OpKind::Read };
            let plan = g.plan_with_failure(start, len, kind, Some(failed));
            for e in plan.ops.iter().chain(&plan.pre_reads) {
                prop_assert_ne!(e.disk, failed);
            }
            let total: u64 = plan.ops.iter().map(|e| e.sectors).sum();
            if write {
                // Every surviving copy receives the full data.
                prop_assert_eq!(total, len * (disks as u64 - 1));
            } else {
                prop_assert_eq!(total, len);
            }
        }

        #[test]
        fn prop_raid6_write_volume_bounded(
            disks in 4usize..8,
            start in 0u64..100_000,
            len in 1u64..2_000,
        ) {
            let g = Geometry::raid6(disks);
            let plan = g.plan(start, len, OpKind::Write);
            let writes: u64 = plan
                .ops
                .iter()
                .filter(|e| e.kind == OpKind::Write)
                .map(|e| e.sectors)
                .sum();
            prop_assert!(writes >= len, "data fully written");
            // Every touched stripe writes at most P and Q on top of the data.
            let stripe_sectors = g.strip_sectors * g.data_disks() as u64;
            let stripes = (start + len - 1) / stripe_sectors - start / stripe_sectors + 1;
            prop_assert!(writes <= len + stripes * 2 * g.strip_sectors);
            prop_assert!(plan.pre_reads.iter().all(|e| e.kind == OpKind::Read));
        }
    }

    proptest! {
        #[test]
        fn prop_degraded_plans_never_touch_failed_disk(
            disks in 3usize..7,
            failed in 0usize..7,
            start in 0u64..50_000,
            len in 1u64..1_500,
            write in proptest::bool::ANY,
        ) {
            prop_assume!(failed < disks);
            let g = Geometry::raid5(disks);
            let kind = if write { OpKind::Write } else { OpKind::Read };
            let plan = g.plan_with_failure(start, len, kind, Some(failed));
            for e in plan.ops.iter().chain(&plan.pre_reads) {
                prop_assert_ne!(e.disk, failed, "plan touched the failed disk");
            }
            if !write {
                // Every requested sector is still served: survivors carry at
                // least the requested volume.
                let total: u64 = plan.ops.iter().map(|e| e.sectors).sum();
                prop_assert!(total >= len);
            }
        }

        #[test]
        fn prop_locate_is_injective(
            disks in 3usize..8,
            sectors in proptest::collection::hash_set(0u64..1_000_000, 1..200),
        ) {
            let g = Geometry::raid5(disks);
            let mut seen = HashSet::new();
            for &s in &sectors {
                let loc = g.locate(s);
                prop_assert!(loc.disk < disks);
                prop_assert!(seen.insert((loc.disk, loc.disk_sector)),
                    "two logical sectors mapped to the same place");
                prop_assert_ne!(Some(loc.disk), g.parity_disk(loc.stripe));
            }
        }

        #[test]
        fn prop_read_plan_covers_request(
            disks in 3usize..8,
            start in 0u64..100_000,
            len in 1u64..2_000,
        ) {
            let g = Geometry::raid5(disks);
            let plan = g.plan(start, len, OpKind::Read);
            let total: u64 = plan.ops.iter().map(|e| e.sectors).sum();
            prop_assert_eq!(total, len);
            prop_assert!(plan.pre_reads.is_empty());
        }

        #[test]
        fn prop_write_plan_writes_at_least_data_plus_parity(
            disks in 3usize..8,
            start in 0u64..100_000,
            len in 1u64..2_000,
        ) {
            let g = Geometry::raid5(disks);
            let plan = g.plan(start, len, OpKind::Write);
            let writes: u64 = plan
                .ops
                .iter()
                .filter(|e| e.kind == OpKind::Write)
                .map(|e| e.sectors)
                .sum();
            prop_assert!(writes >= len, "data fully written");
            // Every touched stripe gets exactly one parity write; total write
            // volume is bounded by data + one strip per stripe touched.
            let stripe_sectors = g.strip_sectors * g.data_disks() as u64;
            let stripes = (start + len - 1) / stripe_sectors - start / stripe_sectors + 1;
            prop_assert!(writes <= len + stripes * g.strip_sectors);
            // Phase-1 reads never write.
            prop_assert!(plan.pre_reads.iter().all(|e| e.kind == OpKind::Read));
        }

        #[test]
        fn prop_merge_preserves_volume(
            extents in proptest::collection::vec((0usize..4, 0u64..10_000u64, 1u64..64), 0..50)
        ) {
            let exts: Vec<DiskExtent> = extents
                .into_iter()
                .map(|(d, s, n)| DiskExtent { disk: d, sector: s, sectors: n, kind: OpKind::Read })
                .collect();
            let before: u64 = exts.iter().map(|e| e.sectors).sum();
            let merged = merge_extents(exts);
            let after: u64 = merged.iter().map(|e| e.sectors).sum();
            prop_assert_eq!(before, after);
            // No two adjacent mergeable extents remain.
            for w in merged.windows(2) {
                prop_assert!(!(w[0].disk == w[1].disk && w[0].sector + w[0].sectors == w[1].sector));
            }
        }
    }
}
