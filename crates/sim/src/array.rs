//! The array simulator: a discrete-event model of a disk array behind a
//! fibre-channel link.
//!
//! The engine owns the member devices, one queue per device, a shared host
//! link, and the event heap. Logical requests ([`ArrayRequest`]) are
//! decomposed by the [`Geometry`] into per-disk extents (two phases for RAID-5
//! writes), dispatched to devices, and reported back as [`Completion`]s. Every
//! device appends its power phases to the [`ArrayPowerLog`], which the power
//! analyzer samples.
//!
//! Determinism: events at equal timestamps are processed in submission order
//! (a monotonically increasing sequence number breaks ties), so simulations
//! are bit-for-bit reproducible.
#![doc = "tracer-invariant: deterministic"]

use crate::cache::{CacheConfig, ControllerCache};
use crate::device::{Device, DeviceModel, DiskOp, ServicePlan};
use crate::equeue::{CalendarQueue, EventQueue};
use crate::error::SimError;
use crate::powerlog::{ArrayPowerLog, PowerTimeline};
use crate::raid::{extents_disk_mask, DiskExtent, Geometry};
use crate::soa::{ReqStore, Slot, F_COMPLETED_EARLY};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use tracer_trace::OpKind;

/// Identifier of a submitted request, unique within one simulator.
pub type RequestId = u64;

/// A logical request against the array's data address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayRequest {
    /// Starting logical sector.
    pub sector: u64,
    /// Length in bytes (sub-sector requests are rounded up to one sector).
    pub bytes: u32,
    /// Read or write.
    pub kind: OpKind,
}

impl ArrayRequest {
    /// Construct a request.
    pub fn new(sector: u64, bytes: u32, kind: OpKind) -> Self {
        Self { sector, bytes, kind }
    }

    /// Length in whole sectors.
    pub fn sectors(&self) -> u64 {
        u64::from(self.bytes).div_ceil(tracer_trace::SECTOR_BYTES)
    }
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// Request id returned by `submit`.
    pub id: RequestId,
    /// Instant the request arrived at the array.
    pub submitted: SimTime,
    /// Instant the request finished (data at the host for reads, ack for
    /// writes).
    pub completed: SimTime,
    /// Payload bytes.
    pub bytes: u32,
    /// Read or write.
    pub kind: OpKind,
}

impl Completion {
    /// Response time of the request.
    pub fn latency(&self) -> SimDuration {
        self.completed - self.submitted
    }
}

/// Order in which a device's queue is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// First-come, first-served.
    #[default]
    Fifo,
    /// C-LOOK elevator: ascending sector order, wrapping to the lowest
    /// pending sector at the end of a sweep.
    Elevator,
}

/// Configuration of a background rebuild pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebuildConfig {
    /// Throttle between stripe-reconstruction jobs (foreground I/O runs in
    /// the gaps).
    pub delay_between: SimDuration,
    /// Rebuild at most this many stripes (callers evaluating short windows
    /// bound the pass; `u64::MAX` rebuilds the whole array).
    pub max_stripes: u64,
}

impl Default for RebuildConfig {
    fn default() -> Self {
        Self { delay_between: SimDuration::from_millis(10), max_stripes: u64::MAX }
    }
}

/// Progress of a rebuild pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebuildStatus {
    /// Member being reconstructed.
    pub disk: usize,
    /// Stripes already reconstructed (the clean frontier).
    pub stripes_done: u64,
    /// Stripes the pass will reconstruct in total.
    pub stripes_total: u64,
    /// When the pass started.
    pub started: SimTime,
}

impl RebuildStatus {
    /// Completed fraction, 0.0–1.0.
    pub fn progress(&self) -> f64 {
        if self.stripes_total == 0 {
            1.0
        } else {
            self.stripes_done as f64 / self.stripes_total as f64
        }
    }
}

/// Static configuration of the simulated array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Array name for reports.
    pub name: String,
    /// Striping / parity geometry.
    pub geometry: Geometry,
    /// Constant non-disk power (controller, fan, backplane), watts.
    pub chassis_watts: f64,
    /// Host link rate, MB/s (4 Gbps FC ≈ 400 MB/s of payload).
    pub link_mbps: f64,
    /// Controller per-request command overhead, microseconds.
    pub controller_overhead_us: f64,
    /// Controller XOR engine rate for parity computation, MB/s.
    pub xor_mbps: f64,
    /// Per-device queue service order.
    pub queue_discipline: QueueDiscipline,
    /// When set, idle devices are sent to standby after this long (for
    /// evaluating MAID-style conservation policies). `None` = always on.
    pub spin_down_after: Option<SimDuration>,
    /// Controller cache; `None` reproduces the paper's disabled-cache testbed.
    pub cache: Option<CacheConfig>,
}

/// One dispatched device operation, recorded when the op log is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Owning logical request.
    pub request: RequestId,
    /// Member disk that served the op.
    pub disk: usize,
    /// Dispatch instant.
    pub started: SimTime,
    /// Completion instant.
    pub finished: SimTime,
    /// Starting disk-local sector.
    pub sector: u64,
    /// Length in sectors.
    pub sectors: u64,
    /// Direction.
    pub kind: OpKind,
}

/// Aggregate counters maintained by the engine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ArrayStats {
    /// Logical requests completed.
    pub requests_completed: u64,
    /// Logical bytes transferred (host view).
    pub logical_bytes: u64,
    /// Physical device operations dispatched.
    pub disk_ops: u64,
    /// Physical bytes moved at the devices (includes parity / RMW traffic).
    pub physical_bytes: u64,
    /// Reads answered entirely from the controller cache.
    pub cache_hits: u64,
    /// Devices actually sent to standby by the spin-down policy.
    pub spin_downs: u64,
    /// Per-device busy time, nanoseconds.
    pub busy_ns: Vec<u64>,
}

impl ArrayStats {
    /// Write amplification: physical bytes over logical bytes.
    pub fn write_amplification(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            self.physical_bytes as f64 / self.logical_bytes as f64
        }
    }

    /// Mean device utilisation over `span`.
    pub fn utilisation(&self, span: SimDuration) -> f64 {
        if span.is_zero() || self.busy_ns.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.busy_ns.iter().sum();
        busy as f64 / (span.as_nanos() as f64 * self.busy_ns.len() as f64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A request reaches the controller.
    Arrival(Slot),
    /// A phase's disk extents become eligible for dispatch.
    PhaseReady(Slot),
    /// The op at the head of `disk`'s service slot finishes.
    DiskFree { disk: usize, slot: Slot },
    /// The request's final byte reaches the host / is acknowledged.
    RequestDone(Slot),
    /// Check whether `disk`, idle since `since`, should spin down.
    SpinDownCheck { disk: usize, since: SimTime },
    /// Launch the next stripe-reconstruction job of a rebuild pass.
    RebuildNext,
}

/// A member disk's pending foreground ops, organised for its discipline.
///
/// FIFO traffic lives in a deque; elevator traffic lives in a `BTreeMap`
/// keyed by `(sector, enqueue seq)` so C-LOOK dispatch is one `range` probe —
/// O(log n) at any queue depth instead of the old O(n) scan — while the
/// secondary key preserves the scan's tie-break (submission order at equal
/// sectors). Ops land in the structure matching the discipline at enqueue
/// time, so flipping the discipline mid-run simply drains both.
#[derive(Debug, Default)]
struct DeviceQueue {
    fifo: VecDeque<(Slot, DiskOp)>,
    elevator: BTreeMap<(u64, u64), (Slot, DiskOp)>,
    enq_seq: u64,
    /// C-LOOK probes answered by the forward `range` (no wrap). Plain `u64`s:
    /// they cost nothing on the hot path and are published to `tracer-obs`
    /// only by [`ArraySim::obs_flush`].
    elevator_hits: u64,
    /// C-LOOK probes that wrapped back to the lowest sector.
    elevator_wraps: u64,
}

impl DeviceQueue {
    fn push(&mut self, discipline: QueueDiscipline, slot: Slot, op: DiskOp) {
        match discipline {
            QueueDiscipline::Fifo => self.fifo.push_back((slot, op)),
            QueueDiscipline::Elevator => {
                self.enq_seq += 1;
                self.elevator.insert((op.sector, self.enq_seq), (slot, op));
            }
        }
    }

    /// Next op to dispatch given the head position, honouring the discipline
    /// the op was enqueued under.
    fn pop(&mut self, discipline: QueueDiscipline, head: u64) -> Option<(Slot, DiskOp)> {
        match discipline {
            QueueDiscipline::Fifo => self.fifo.pop_front().or_else(|| self.pop_elevator(head)),
            QueueDiscipline::Elevator => self.pop_elevator(head).or_else(|| self.fifo.pop_front()),
        }
    }

    /// C-LOOK: nearest sector at/after `head`, else wrap to the lowest;
    /// earliest-enqueued wins among equal sectors.
    fn pop_elevator(&mut self, head: u64) -> Option<(Slot, DiskOp)> {
        let key = match self.elevator.range((head, 0)..).next() {
            Some((k, _)) => {
                self.elevator_hits += 1;
                *k
            }
            None => {
                let k = *self.elevator.iter().next()?.0;
                self.elevator_wraps += 1;
                k
            }
        };
        self.elevator.remove(&key)
    }

    fn is_empty(&self) -> bool {
        self.fifo.is_empty() && self.elevator.is_empty()
    }
}

/// DES instrumentation state, attached only when `tracer-obs` is enabled at
/// construction time so the disabled hot path carries a dead `Option`.
///
/// The histogram handle is resolved once here; queue depth is sampled on
/// one dispatch in [`DEPTH_SAMPLE_EVERY`], so the hot path usually pays a
/// branch and an increment. Counters are published as *deltas* by
/// [`ArraySim::obs_flush`], so flushing twice never double-counts.
struct DesObs {
    queue_depth: &'static tracer_obs::Histogram,
    depth_tick: u64,
    published_events: u64,
    published_dispatches: u64,
    published_hits: u64,
    published_wraps: u64,
    published_rollovers: u64,
    published_spills: u64,
    published_waves: u64,
    published_spindowns: u64,
}

/// Record `des.queue_depth` on one dispatch in this many (power of two).
const DEPTH_SAMPLE_EVERY: u64 = 64;

impl DesObs {
    /// Whether this dispatch is a `des.queue_depth` sample. The first
    /// dispatch always samples, so short runs still land a data point.
    fn sample_depth(&mut self) -> bool {
        let sampled = self.depth_tick % DEPTH_SAMPLE_EVERY == 0;
        self.depth_tick += 1;
        sampled
    }

    fn attach() -> Option<Box<DesObs>> {
        tracer_obs::enabled().then(|| {
            Box::new(DesObs {
                queue_depth: tracer_obs::histogram("des.queue_depth"),
                depth_tick: 0,
                published_events: 0,
                published_dispatches: 0,
                published_hits: 0,
                published_wraps: 0,
                published_rollovers: 0,
                published_spills: 0,
                published_waves: 0,
                published_spindowns: 0,
            })
        })
    }
}

/// The discrete-event array simulator.
pub struct ArraySim {
    cfg: ArrayConfig,
    devices: Vec<Device>,
    queues: Vec<DeviceQueue>,
    background_queues: Vec<VecDeque<(Slot, DiskOp)>>,
    busy: Vec<bool>,
    idle_since: Vec<SimTime>,
    last_sector: Vec<u64>,
    events: CalendarQueue<Event>,
    seq: u64,
    requests: ReqStore,
    /// Per-disk conservative lookahead: a disk dispatching at `t` cannot
    /// produce an event before `t + lookahead[disk]` (device lower bound).
    lookahead: Vec<SimDuration>,
    /// Wave lanes used by `run_until`/`run_to_idle` when > 1 (see
    /// [`ArraySim::with_parallelism`]).
    parallelism: usize,
    /// Disks touched by the phase being fanned out (reused across events so
    /// `on_phase_ready` allocates nothing in steady state).
    scratch_disks: Vec<usize>,
    /// Waves executed (a wave covers ≥ 2 events; serial steps count 0).
    waves: u64,
    next_id: RequestId,
    now: SimTime,
    link_busy_until: SimTime,
    power: ArrayPowerLog,
    completions: Vec<Completion>,
    stats: ArrayStats,
    events_processed: u64,
    failed_disk: Option<usize>,
    cache: Option<ControllerCache>,
    rebuild: Option<RebuildState>,
    op_log: Option<Vec<OpRecord>>,
    obs: Option<Box<DesObs>>,
}

#[derive(Debug, Clone, Copy)]
struct RebuildState {
    status: RebuildStatus,
    cfg: RebuildConfig,
    /// Request id of the in-flight stripe job, if any.
    inflight: Option<RequestId>,
}

/// Per-disk state a wave lane owns exclusively while it services one
/// `DiskFree` event: the zipped `&mut` bundles are disjoint by construction
/// (one lane per distinct disk), so lanes may run on separate threads.
struct Lane<'a> {
    disk: usize,
    at: SimTime,
    discipline: QueueDiscipline,
    device: &'a mut Device,
    queue: &'a mut DeviceQueue,
    background: &'a mut VecDeque<(Slot, DiskOp)>,
    busy: &'a mut bool,
    idle_since: &'a mut SimTime,
    last_sector: &'a mut u64,
    timeline: &'a mut PowerTimeline,
    out: LaneOut,
}

/// What a lane hands back for the serial merge.
#[derive(Debug, Clone, Copy, Default)]
struct LaneOut {
    /// `(slot, service time)` of the op the lane dispatched, if any.
    dispatched: Option<(Slot, SimDuration)>,
    /// Physical bytes the dispatched op moves.
    bytes: u64,
}

/// Mirror of the dispatch half of `on_disk_free` + `try_dispatch`, restricted
/// to per-disk state. Runs on lane threads, so it must not touch anything
/// outside the [`Lane`] — the controller-side half (outstanding bookkeeping,
/// event scheduling, global stats) happens at the serial merge.
fn run_lane(lane: &mut Lane<'_>) {
    *lane.busy = false;
    *lane.idle_since = lane.at;
    let head = *lane.last_sector;
    let Some((slot, op)) =
        lane.queue.pop(lane.discipline, head).or_else(|| lane.background.pop_front())
    else {
        return;
    };
    *lane.busy = true;
    let plan = lane.device.service(&op);
    let mut t = lane.at;
    for phase in &plan.phases {
        if phase.duration.is_zero() {
            continue;
        }
        lane.timeline.set(t, phase.watts);
        t += phase.duration;
    }
    lane.timeline.set(t, lane.device.idle_watts());
    *lane.last_sector = op.sector + op.sectors;
    lane.out = LaneOut { dispatched: Some((slot, plan.total_duration())), bytes: op.bytes() };
}

impl ArraySim {
    /// Build a simulator from a config and its member devices. Panics if the
    /// device count does not match the geometry.
    pub fn new(cfg: ArrayConfig, devices: Vec<Device>) -> Self {
        assert_eq!(
            devices.len(),
            cfg.geometry.disks,
            "device count must match geometry ({} vs {})",
            devices.len(),
            cfg.geometry.disks
        );
        let idle: Vec<f64> = devices.iter().map(|d| d.idle_watts()).collect();
        let lookahead: Vec<SimDuration> = devices.iter().map(|d| d.min_service_time()).collect();
        let n = devices.len();
        let mut sim = Self {
            power: ArrayPowerLog::new(cfg.chassis_watts, &idle),
            cache: cfg.cache.map(ControllerCache::new),
            cfg,
            devices,
            queues: (0..n).map(|_| DeviceQueue::default()).collect(),
            background_queues: (0..n).map(|_| VecDeque::new()).collect(),
            busy: vec![false; n],
            idle_since: vec![SimTime::ZERO; n],
            last_sector: vec![0; n],
            events: CalendarQueue::new(),
            seq: 0,
            requests: ReqStore::default(),
            lookahead,
            parallelism: 1,
            scratch_disks: Vec::new(),
            waves: 0,
            next_id: 0,
            now: SimTime::ZERO,
            link_busy_until: SimTime::ZERO,
            completions: Vec::new(),
            stats: ArrayStats { busy_ns: vec![0; n], ..Default::default() },
            events_processed: 0,
            failed_disk: None,
            rebuild: None,
            op_log: None,
            obs: DesObs::attach(),
        };
        // Under a spin-down policy even never-accessed members time out.
        if let Some(after) = sim.cfg.spin_down_after {
            for disk in 0..n {
                sim.schedule(
                    SimTime::ZERO + after,
                    Event::SpinDownCheck { disk, since: SimTime::ZERO },
                );
            }
        }
        sim
    }

    /// Controller-cache view (hit/miss counters), when a cache is configured.
    pub fn cache(&self) -> Option<&ControllerCache> {
        self.cache.as_ref()
    }

    /// Enable conservative per-disk parallel simulation with up to `n` lanes
    /// (clamped to ≥ 1). `run_until` and `run_to_idle` then execute *waves* —
    /// maximal runs of independent `DiskFree` events on distinct disks within
    /// the stripe-derived lookahead horizon — with the per-disk halves on
    /// worker threads and the controller merge serial, in event order.
    ///
    /// Results are byte-identical to serial at any `n` **by construction**:
    /// a wave only ever contains events whose handlers touch disjoint
    /// per-disk state, the merge replays their controller side in exactly
    /// the serial `(time, seq)` order, and any event that could interact
    /// (phase completions, controller events, spin-down timers, op-log or
    /// live-obs instrumentation, arrays past 64 members) falls back to the
    /// serial path. `n = 1` *is* the serial engine.
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// The configured wave-lane count (1 = serial).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Waves executed so far (each covered ≥ 2 events in one merge).
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Size the event queue for roughly `expected` concurrently pending
    /// events. Replay engines know the plan's bunch count up front; passing
    /// it here lets the calendar pre-size its bucket array instead of
    /// growing through O(log n) doublings mid-run. Purely a hint — results
    /// never depend on it.
    pub fn reserve_events(&mut self, expected: usize) {
        self.events.reserve_events(expected);
    }

    /// Start recording every dispatched device op (diagnostics; unbounded
    /// memory over long runs — enable for short analyses only).
    pub fn enable_op_log(&mut self) {
        self.op_log.get_or_insert_with(Vec::new);
    }

    /// The recorded device ops, when [`ArraySim::enable_op_log`] was called.
    pub fn op_log(&self) -> Option<&[OpRecord]> {
        self.op_log.as_deref()
    }

    /// Take member `disk` out of service (eRAID-style degraded operation):
    /// the device enters standby and all subsequent requests are planned
    /// around it through parity. Only valid on an idle RAID-5 array with no
    /// member already down.
    ///
    /// # Panics
    /// Panics on RAID-0 geometries, with a member already failed, on an
    /// out-of-range index, or while any request is in flight.
    pub fn fail_disk(&mut self, disk: usize) {
        assert_ne!(
            self.cfg.geometry.redundancy,
            crate::raid::Redundancy::Raid0,
            "degraded operation needs redundancy (RAID-1/5/6/10)"
        );
        assert!(disk < self.devices.len(), "disk index out of range");
        assert!(self.failed_disk.is_none(), "a member is already failed");
        assert!(self.rebuild.is_none(), "cannot fail a member during a rebuild");
        assert!(
            self.requests.is_empty()
                && self.queues.iter().all(DeviceQueue::is_empty)
                && self.background_queues.iter().all(VecDeque::is_empty),
            "fail_disk requires an idle array"
        );
        self.failed_disk = Some(disk);
        self.devices[disk].enter_standby();
        let w = self.devices[disk].standby_watts();
        self.power.devices[disk].set(self.now, w);
    }

    /// Return the failed member to service *instantly* (re-attaching a
    /// healthy drive whose contents are current — e.g. a transient cabling
    /// failure). For the realistic replacement-drive path, which regenerates
    /// the member's contents stripe by stripe, use
    /// [`ArraySim::start_rebuild`]. The device stays in standby until its
    /// next op pays the spin-up cost. Requires an idle array.
    ///
    /// # Panics
    /// Panics if no member is failed or requests are in flight.
    pub fn repair_disk(&mut self) {
        assert!(self.failed_disk.is_some(), "no member is failed");
        assert!(
            self.requests.is_empty()
                && self.queues.iter().all(DeviceQueue::is_empty)
                && self.background_queues.iter().all(VecDeque::is_empty),
            "repair_disk requires an idle array"
        );
        self.failed_disk = None;
    }

    /// Index of the failed member, if the array runs degraded.
    pub fn failed_disk(&self) -> Option<usize> {
        self.failed_disk
    }

    /// Replace the failed member with a blank drive and start reconstructing
    /// its contents stripe by stripe. Foreground I/O keeps running: requests
    /// touching stripes beyond the rebuild frontier are still served through
    /// parity; reconstructed stripes are served normally. The pass runs in
    /// the background, throttled by [`RebuildConfig::delay_between`].
    ///
    /// # Panics
    /// Panics if no member is failed or a rebuild is already running.
    pub fn start_rebuild(&mut self, cfg: RebuildConfig) -> RebuildStatus {
        let disk = self.failed_disk.take().expect("start_rebuild needs a failed member");
        assert!(self.rebuild.is_none(), "a rebuild is already running");
        let strips_per_disk = self
            .devices
            .iter()
            .map(|d| d.capacity_sectors() / self.cfg.geometry.strip_sectors)
            .min()
            .unwrap_or(0);
        let status = RebuildStatus {
            disk,
            stripes_done: 0,
            stripes_total: strips_per_disk.min(cfg.max_stripes),
            started: self.now,
        };
        self.rebuild = Some(RebuildState { status, cfg, inflight: None });
        self.schedule(self.now, Event::RebuildNext);
        status
    }

    /// Progress of the running rebuild pass, if any.
    pub fn rebuild_status(&self) -> Option<RebuildStatus> {
        self.rebuild.map(|r| r.status)
    }

    /// The member a request must be planned around: the failed disk, or the
    /// rebuilding disk when the request reaches past the clean frontier.
    fn effective_failure(&self, sector: u64, sectors: u64) -> Option<usize> {
        if self.failed_disk.is_some() {
            return self.failed_disk;
        }
        let rb = self.rebuild.as_ref()?;
        let stripe_sectors =
            self.cfg.geometry.strip_sectors * self.cfg.geometry.data_disks().max(1) as u64;
        let last_stripe = (sector + sectors.max(1) - 1) / stripe_sectors;
        (last_stripe >= rb.status.stripes_done).then_some(rb.status.disk)
    }

    fn on_rebuild_next(&mut self) {
        let Some(rb) = self.rebuild.as_mut() else { return };
        if rb.inflight.is_some() {
            return;
        }
        if rb.status.stripes_done >= rb.status.stripes_total {
            self.rebuild = None;
            return;
        }
        let stripe = rb.status.stripes_done;
        let disk = rb.status.disk;
        let strip = self.cfg.geometry.strip_sectors;
        let disks = self.cfg.geometry.disks;
        let id = self.next_id;
        self.next_id += 1;
        rb.inflight = Some(id);

        // Reconstruct: read the stripe's rows from every survivor, XOR, then
        // write the regenerated strip onto the replacement.
        let reads: Vec<DiskExtent> = (0..disks)
            .filter(|&d| d != disk)
            .map(|d| DiskExtent {
                disk: d,
                sector: stripe * strip,
                sectors: strip,
                kind: OpKind::Read,
            })
            .collect();
        let writes =
            vec![DiskExtent { disk, sector: stripe * strip, sectors: strip, kind: OpKind::Write }];
        let xor_bytes = (disks as u64 - 1) * strip * tracer_trace::SECTOR_BYTES;
        let xor_pending = if self.cfg.xor_mbps > 0.0 {
            SimDuration::from_secs_f64(xor_bytes as f64 / (self.cfg.xor_mbps * 1e6))
        } else {
            SimDuration::ZERO
        };
        let req = ArrayRequest::new(0, tracer_trace::SECTOR_BYTES as u32, OpKind::Write);
        let slot = self.requests.insert(id, req, self.now, true);
        let i = slot as usize;
        self.requests.xor_pending[i] = xor_pending;
        self.requests.phases[i].push_back(reads);
        self.requests.phases[i].push_back(writes);
        self.schedule(self.now, Event::PhaseReady(slot));
    }

    /// The array configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.cfg
    }

    /// Usable data capacity in sectors.
    pub fn data_capacity_sectors(&self) -> u64 {
        let per_disk = self.devices.iter().map(|d| d.capacity_sectors()).min().unwrap_or(0);
        self.cfg.geometry.data_capacity_sectors(per_disk)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The power log (chassis + per-device timelines).
    pub fn power_log(&self) -> &ArrayPowerLog {
        &self.power
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &ArrayStats {
        &self.stats
    }

    /// Member devices (for diagnostics such as seek / GC counters).
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Submit `req` to arrive at time `at`.
    pub fn submit(&mut self, at: SimTime, req: ArrayRequest) -> Result<RequestId, SimError> {
        if req.bytes == 0 {
            return Err(SimError::EmptyRequest);
        }
        if at < self.now {
            return Err(SimError::SubmitInPast { at, now: self.now });
        }
        let capacity = self.data_capacity_sectors();
        if req.sector + req.sectors() > capacity {
            return Err(SimError::OutOfRange {
                sector: req.sector,
                sectors: req.sectors(),
                capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        // The slot's retained phase deque is filled at arrival, when the
        // phases are planned.
        let slot = self.requests.insert(id, req, at, false);
        self.schedule(at, Event::Arrival(slot));
        Ok(id)
    }

    /// Instant of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Process a single event (always serially, whatever the parallelism —
    /// single-stepping is the debugging/inspection interface). Returns
    /// `false` when no events remain.
    pub fn step(&mut self) -> bool {
        let Some((t, _, ev)) = self.events.pop() else {
            return false;
        };
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        self.events_processed += 1;
        self.handle(ev);
        true
    }

    /// Total DES events processed since construction (throughput metric for
    /// benchmarks: events per wall-clock second).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Publish this simulator's DES tallies to the global `tracer-obs`
    /// registry: `des.events`, `des.dispatches`, `des.elevator_hits`,
    /// `des.elevator_wraps` (the `des.queue_depth` histogram is sampled live
    /// at dispatch). Deltas since the previous flush, so calling it twice is
    /// harmless. No-op when instrumentation was disabled at construction.
    pub fn obs_flush(&mut self) {
        let Some(obs) = self.obs.as_mut() else { return };
        let hits: u64 = self.queues.iter().map(|q| q.elevator_hits).sum();
        let wraps: u64 = self.queues.iter().map(|q| q.elevator_wraps).sum();
        let pairs = [
            ("des.events", self.events_processed, &mut obs.published_events),
            ("des.dispatches", self.stats.disk_ops, &mut obs.published_dispatches),
            ("des.elevator_hits", hits, &mut obs.published_hits),
            ("des.elevator_wraps", wraps, &mut obs.published_wraps),
            ("des.equeue_rollovers", self.events.rollovers(), &mut obs.published_rollovers),
            ("des.equeue_spills", self.events.ladder_spills(), &mut obs.published_spills),
            ("des.waves", self.waves, &mut obs.published_waves),
            ("power.spindowns", self.stats.spin_downs, &mut obs.published_spindowns),
        ];
        for (name, current, published) in pairs {
            if current > *published {
                tracer_obs::counter(name).add(current - *published);
                *published = current;
            }
        }
    }

    /// Process every event up to and including `t`, then set the clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        if self.parallelism > 1 {
            while self.step_wave(Some(t)) {}
        } else {
            while let Some((at, _, ev)) = self.events.pop_at_or_before(t) {
                debug_assert!(at >= self.now, "event queue went backwards");
                self.now = at;
                self.events_processed += 1;
                self.handle(ev);
            }
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Run until the event queue drains (all submitted work finished).
    pub fn run_to_idle(&mut self) {
        if self.parallelism > 1 {
            while self.step_wave(None) {}
        } else {
            while self.step() {}
        }
    }

    /// Take the completions recorded so far (in completion-time order).
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Completions recorded so far without draining them.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    fn schedule(&mut self, at: SimTime, ev: Event) {
        self.seq += 1;
        self.events.schedule(at, self.seq, ev);
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Arrival(slot) => self.on_arrival(slot),
            Event::PhaseReady(slot) => self.on_phase_ready(slot),
            Event::DiskFree { disk, slot } => self.on_disk_free(disk, slot),
            Event::RequestDone(slot) => self.on_request_done(slot),
            Event::SpinDownCheck { disk, since } => self.on_spin_down_check(disk, since),
            Event::RebuildNext => self.on_rebuild_next(),
        }
    }

    fn on_arrival(&mut self, slot: Slot) {
        debug_assert!(self.requests.occupied(slot), "arrival for unknown request");
        let req = self.requests.request(slot);

        // Controller cache lookup first: full read hits never reach disks;
        // write-back writes are acknowledged at the end of the link transfer
        // while destaging continues in the background.
        let mut cache_read_hit = false;
        let mut write_back_ack = false;
        if let Some(cache) = self.cache.as_mut() {
            if req.kind.is_read() {
                cache_read_hit = cache.read(req.sector, req.sectors());
            } else {
                cache.write(req.sector, req.sectors());
                write_back_ack = cache.config().write_back;
            }
        }

        // Controller command overhead, plus inbound link transfer for writes
        // (the payload must reach the controller before disks can be written).
        let mut ready = self.now + SimDuration::from_micros_f64(self.cfg.controller_overhead_us);
        if !req.kind.is_read() {
            ready = self.reserve_link(ready, u64::from(req.bytes));
        }

        if cache_read_hit {
            self.stats.cache_hits += 1;
            // Serve from cache RAM: outbound link transfer only.
            let done = self.reserve_link(ready, u64::from(req.bytes));
            self.schedule(done, Event::RequestDone(slot));
            return;
        }

        let plan = self.cfg.geometry.plan_with_failure(
            req.sector,
            req.sectors(),
            req.kind,
            self.effective_failure(req.sector, req.sectors()),
        );
        let xor_time = if plan.parity_xor_bytes > 0 && self.cfg.xor_mbps > 0.0 {
            SimDuration::from_secs_f64(plan.parity_xor_bytes as f64 / (self.cfg.xor_mbps * 1e6))
        } else {
            SimDuration::ZERO
        };
        let i = slot as usize;
        let phases = &mut self.requests.phases[i];
        debug_assert!(phases.is_empty(), "arrival into a slot with phases");
        if !plan.pre_reads.is_empty() {
            phases.push_back(plan.pre_reads);
        }
        phases.push_back(plan.ops);
        self.requests.xor_pending[i] = xor_time;
        self.schedule(ready, Event::PhaseReady(slot));
        if write_back_ack {
            // The host sees the write complete once the payload is in cache.
            self.schedule(ready, Event::RequestDone(slot));
        }
    }

    fn on_phase_ready(&mut self, slot: Slot) {
        let i = slot as usize;
        debug_assert!(self.requests.occupied(slot), "phase for unknown request");
        let phase = self.requests.phases[i].pop_front().expect("phase ready with no phases");
        debug_assert!(!phase.is_empty(), "empty phase");
        self.requests.outstanding[i] = phase.len() as u32;
        self.requests.disk_mask[i] = extents_disk_mask(&phase);
        // Internal (rebuild) work queues behind foreground traffic.
        let background = self.requests.internal(slot);
        let discipline = self.cfg.queue_discipline;
        // The scratch buffer preserves extent order for the dispatch sweep
        // (dispatch order assigns event seqs, so it is determinism-bearing)
        // without allocating per phase.
        let mut touched = std::mem::take(&mut self.scratch_disks);
        touched.clear();
        for ext in phase {
            let op = DiskOp::new(ext.sector, ext.sectors, ext.kind);
            if background {
                self.background_queues[ext.disk].push_back((slot, op));
            } else {
                self.queues[ext.disk].push(discipline, slot, op);
            }
            touched.push(ext.disk);
        }
        for &disk in &touched {
            self.try_dispatch(disk);
        }
        self.scratch_disks = touched;
    }

    fn try_dispatch(&mut self, disk: usize) {
        if self.busy[disk] {
            return;
        }
        // Depth the dispatched op saw: foreground + background backlog,
        // including itself. Sampled 1-in-64 (see `DesObs::sample_depth`) so
        // the histogram stays cheap on the dispatch hot path.
        let depth = match self.obs.as_mut() {
            Some(obs) => {
                if obs.sample_depth() {
                    let q = &self.queues[disk];
                    Some(q.fifo.len() + q.elevator.len() + self.background_queues[disk].len())
                } else {
                    None
                }
            }
            None => None,
        };
        let head = self.last_sector[disk];
        let discipline = self.cfg.queue_discipline;
        let Some((slot, op)) = self.queues[disk]
            .pop(discipline, head)
            .or_else(|| self.background_queues[disk].pop_front())
        else {
            return;
        };
        if let (Some(obs), Some(depth)) = (&self.obs, depth) {
            obs.queue_depth.record(depth as u64);
        }
        self.busy[disk] = true;
        let plan = self.devices[disk].service(&op);
        self.log_plan(disk, &plan);
        let dur = plan.total_duration();
        self.stats.disk_ops += 1;
        self.stats.physical_bytes += op.bytes();
        self.stats.busy_ns[disk] += dur.as_nanos();
        self.last_sector[disk] = op.sector + op.sectors;
        if let Some(log) = self.op_log.as_mut() {
            let request = self.requests.id[slot as usize];
            log.push(OpRecord {
                request,
                disk,
                started: self.now,
                finished: self.now + dur,
                sector: op.sector,
                sectors: op.sectors,
                kind: op.kind,
            });
        }
        self.schedule(self.now + dur, Event::DiskFree { disk, slot });
    }

    /// Append a service plan's power phases to `disk`'s timeline and restore
    /// idle power at the end.
    fn log_plan(&mut self, disk: usize, plan: &ServicePlan) {
        let mut t = self.now;
        let tl = &mut self.power.devices[disk];
        for phase in &plan.phases {
            if phase.duration.is_zero() {
                continue;
            }
            tl.set(t, phase.watts);
            t += phase.duration;
        }
        tl.set(t, self.devices[disk].idle_watts());
    }

    fn on_disk_free(&mut self, disk: usize, slot: Slot) {
        self.busy[disk] = false;
        self.idle_since[disk] = self.now;
        self.try_dispatch(disk);
        if !self.busy[disk] {
            if let Some(after) = self.cfg.spin_down_after {
                self.schedule(self.now + after, Event::SpinDownCheck { disk, since: self.now });
            }
        }

        let i = slot as usize;
        debug_assert!(self.requests.occupied(slot), "completion for unknown request");
        debug_assert!(self.requests.outstanding[i] > 0);
        debug_assert!(
            disk >= 64 || self.requests.disk_mask[i] & (1 << disk) != 0,
            "disk free outside the phase's disk mask"
        );
        self.requests.outstanding[i] -= 1;
        if self.requests.outstanding[i] > 0 {
            return;
        }
        let xor = self.requests.xor_pending[i];
        self.requests.xor_pending[i] = SimDuration::ZERO;
        if self.requests.phases[i].is_empty() {
            if self.requests.completed_early(slot) {
                // Write-back destage finished; the host was acked earlier.
                self.requests.retire(slot);
                return;
            }
            // Final phase done. Any uncharged XOR time (degraded-read
            // reconstruction) is spent now; reads then stream back over the
            // link.
            let after_xor = self.now + xor;
            let done = if self.requests.kind[i].is_read() && !self.requests.internal(slot) {
                let bytes = u64::from(self.requests.bytes[i]);
                self.reserve_link(after_xor, bytes)
            } else {
                after_xor
            };
            self.schedule(done, Event::RequestDone(slot));
        } else {
            // Parity computation separates the RMW read and write phases.
            let at = self.now + xor;
            self.schedule(at, Event::PhaseReady(slot));
        }
    }

    fn on_request_done(&mut self, slot: Slot) {
        let i = slot as usize;
        debug_assert!(self.requests.occupied(slot), "done for unknown request");
        if self.requests.internal(slot) {
            let id = self.requests.id[i];
            self.requests.retire(slot);
            let Some(rb) = self.rebuild.as_mut() else { return };
            debug_assert_eq!(rb.inflight, Some(id));
            rb.inflight = None;
            rb.status.stripes_done += 1;
            if rb.status.stripes_done >= rb.status.stripes_total {
                self.rebuild = None;
            } else {
                let delay = rb.cfg.delay_between;
                self.schedule(self.now + delay, Event::RebuildNext);
            }
            return;
        }
        let record = Completion {
            id: self.requests.id[i],
            submitted: self.requests.submitted[i],
            completed: self.now,
            bytes: self.requests.bytes[i],
            kind: self.requests.kind[i],
        };
        // A write-back ack fires while destage phases are still pending: keep
        // the state so the background work can drain, but report completion
        // now.
        if self.requests.outstanding[i] > 0 || !self.requests.phases[i].is_empty() {
            self.requests.flags[i] |= F_COMPLETED_EARLY;
        } else {
            self.requests.retire(slot);
        }
        self.stats.requests_completed += 1;
        self.stats.logical_bytes += u64::from(record.bytes);
        self.completions.push(record);
    }

    fn on_spin_down_check(&mut self, disk: usize, since: SimTime) {
        if self.busy[disk] || self.idle_since[disk] != since || self.devices[disk].in_standby() {
            return;
        }
        self.devices[disk].enter_standby();
        self.stats.spin_downs += 1;
        let w = self.devices[disk].standby_watts();
        self.power.devices[disk].set(self.now, w);
    }

    /// Reserve the host link for `bytes` starting no earlier than `from`;
    /// returns the completion instant of the transfer.
    fn reserve_link(&mut self, from: SimTime, bytes: u64) -> SimTime {
        let start = if self.link_busy_until > from { self.link_busy_until } else { from };
        let dur = SimDuration::from_secs_f64(bytes as f64 / (self.cfg.link_mbps * 1e6));
        self.link_busy_until = start + dur;
        self.link_busy_until
    }

    /// Whether waves may form at all. Each excluded feature has a handler
    /// side effect that could interleave with a later wave member in serial
    /// order: spin-down checks schedule timers at `t + after`, the op log
    /// records dispatch order globally, live obs samples 1-in-64 dispatches,
    /// and arrays past 64 members overflow the wave's disk bitmask.
    fn wave_capable(&self) -> bool {
        self.parallelism > 1
            && self.devices.len() <= 64
            && self.cfg.spin_down_after.is_none()
            && self.op_log.is_none()
            && self.obs.is_none()
    }

    /// Process the next event — as the head of a parallel wave when it is a
    /// `DiskFree` whose neighbours commute, serially otherwise. Returns
    /// `false` when no event remains at or before `bound`.
    ///
    /// A wave is a maximal run of consecutive events in `(time, seq)` order
    /// that are all `DiskFree`s on *distinct* disks, none of which completes
    /// its request's phase, within the conservative horizon
    /// `min over accepted (tᵢ + lookahead(diskᵢ))`. Those handlers touch
    /// disjoint per-disk state plus controller bookkeeping that
    /// [`ArraySim::run_wave`] replays serially in the same order, so the
    /// result is byte-identical to stepping them one by one.
    fn step_wave(&mut self, bound: Option<SimTime>) -> bool {
        let first = match bound {
            Some(b) => self.events.pop_at_or_before(b),
            None => self.events.pop(),
        };
        let Some((t0, _, ev0)) = first else {
            return false;
        };
        debug_assert!(t0 >= self.now, "event queue went backwards");
        let (disk0, slot0) = match ev0 {
            // A `DiskFree` that would drop its request's outstanding count to
            // zero schedules `PhaseReady`/`RequestDone` — possibly at times
            // before later wave members — so it is a wave barrier.
            Event::DiskFree { disk, slot }
                if self.wave_capable() && self.requests.outstanding[slot as usize] > 1 =>
            {
                (disk, slot)
            }
            _ => {
                self.now = t0;
                self.events_processed += 1;
                self.handle(ev0);
                return true;
            }
        };

        let mut wave: Vec<(SimTime, usize, Slot)> = vec![(t0, disk0, slot0)];
        let mut mask: u64 = 1 << disk0;
        let mut horizon = t0 + self.lookahead[disk0];
        loop {
            let limit = match bound {
                Some(b) if b < horizon => b,
                _ => horizon,
            };
            let Some((t, seq, ev)) = self.events.pop_at_or_before(limit) else { break };
            let accept = match ev {
                Event::DiskFree { disk, slot } if mask & (1 << disk) == 0 => {
                    // Earlier members of this wave also decrement the slot:
                    // count them so the *cumulative* decrement still leaves
                    // the phase incomplete.
                    let dups = wave.iter().filter(|&&(_, _, s)| s == slot).count() as u32;
                    self.requests.outstanding[slot as usize] > dups + 1
                }
                _ => false,
            };
            if !accept {
                // First ineligible event: put it back under its ORIGINAL seq
                // so it stays exactly where serial order had it.
                self.events.schedule(t, seq, ev);
                break;
            }
            let Event::DiskFree { disk, slot } = ev else { unreachable!() };
            mask |= 1 << disk;
            let h = t + self.lookahead[disk];
            if h < horizon {
                horizon = h;
            }
            wave.push((t, disk, slot));
        }

        if wave.len() == 1 {
            self.now = t0;
            self.events_processed += 1;
            self.on_disk_free(disk0, slot0);
        } else {
            self.run_wave(&wave);
        }
        true
    }

    /// Execute a wave: per-disk halves ([`run_lane`]) on up to
    /// `parallelism` threads, then the controller merge serially in wave
    /// (= serial event) order. The merge performs exactly one `schedule`
    /// call per dispatching lane, in wave order, so seq assignment — and
    /// therefore every downstream tie-break — matches serial execution.
    fn run_wave(&mut self, wave: &[(SimTime, usize, Slot)]) {
        self.waves += 1;
        let mut at_by_disk = [SimTime::ZERO; 64];
        let mut mask = 0u64;
        for &(t, disk, _) in wave {
            at_by_disk[disk] = t;
            mask |= 1 << disk;
        }
        let discipline = self.cfg.queue_discipline;
        let mut lanes: Vec<Lane<'_>> = self
            .devices
            .iter_mut()
            .zip(self.queues.iter_mut())
            .zip(self.background_queues.iter_mut())
            .zip(self.busy.iter_mut())
            .zip(self.idle_since.iter_mut())
            .zip(self.last_sector.iter_mut())
            .zip(self.power.devices.iter_mut())
            .enumerate()
            .filter(|&(disk, _)| mask & (1 << disk) != 0)
            .map(
                |(
                    disk,
                    ((((((device, queue), background), busy), idle_since), last_sector), timeline),
                )| Lane {
                    disk,
                    at: at_by_disk[disk],
                    discipline,
                    device,
                    queue,
                    background,
                    busy,
                    idle_since,
                    last_sector,
                    timeline,
                    out: LaneOut::default(),
                },
            )
            .collect();

        let workers = self.parallelism.min(lanes.len());
        if workers > 1 {
            let chunk = lanes.len().div_ceil(workers);
            std::thread::scope(|s| {
                for chunk_lanes in lanes.chunks_mut(chunk) {
                    s.spawn(move || {
                        for lane in chunk_lanes {
                            run_lane(lane);
                        }
                    });
                }
            });
        } else {
            for lane in &mut lanes {
                run_lane(lane);
            }
        }
        // Copy out the lane results; dropping the lanes ends their borrows.
        let outs: Vec<(usize, LaneOut)> = lanes.into_iter().map(|l| (l.disk, l.out)).collect();

        for &(t, disk, slot) in wave {
            self.now = t;
            self.events_processed += 1;
            let out = outs.iter().find(|&&(d, _)| d == disk).map(|&(_, o)| o).unwrap_or_default();
            if let Some((dslot, dur)) = out.dispatched {
                self.stats.disk_ops += 1;
                self.stats.physical_bytes += out.bytes;
                self.stats.busy_ns[disk] += dur.as_nanos();
                self.schedule(t + dur, Event::DiskFree { disk, slot: dslot });
            }
            let i = slot as usize;
            debug_assert!(self.requests.outstanding[i] > 0);
            self.requests.outstanding[i] -= 1;
            debug_assert!(
                self.requests.outstanding[i] > 0,
                "a wave member completed its phase — eligibility check is broken"
            );
        }
    }
}

impl std::fmt::Debug for ArraySim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArraySim")
            .field("name", &self.cfg.name)
            .field("now", &self.now)
            .field("pending_events", &self.events.len())
            .field("inflight_requests", &self.requests.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdd::{HddModel, HddParams};
    use crate::spec::ArraySpec;
    use proptest::prelude::*;

    fn small_hdd_array(disks: usize) -> ArraySim {
        let cfg = ArrayConfig {
            name: "test-raid5".into(),
            geometry: Geometry::raid5(disks),
            chassis_watts: 16.0,
            link_mbps: 400.0,
            controller_overhead_us: 100.0,
            xor_mbps: 1500.0,
            queue_discipline: QueueDiscipline::Fifo,
            spin_down_after: None,
            cache: None,
        };
        let devices = (0..disks)
            .map(|_| Device::Hdd(HddModel::new(HddParams::seagate_7200_12_500gb())))
            .collect();
        ArraySim::new(cfg, devices)
    }

    #[test]
    fn read_completes_with_positive_latency() {
        let mut sim = small_hdd_array(4);
        let id = sim.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        sim.run_to_idle();
        let done = sim.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        let ms = done[0].latency().as_millis_f64();
        assert!(ms > 0.05 && ms < 30.0, "4K read latency = {ms}ms");
        assert_eq!(sim.stats().requests_completed, 1);
        assert_eq!(sim.stats().logical_bytes, 4096);
    }

    #[test]
    fn raid5_write_amplifies() {
        let mut sim = small_hdd_array(6);
        sim.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Write)).unwrap();
        sim.run_to_idle();
        // Small write: 2 reads + 2 writes of 4 KiB = 16 KiB physical.
        assert_eq!(sim.stats().physical_bytes, 4 * 4096);
        assert!((sim.stats().write_amplification() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn write_latency_exceeds_read_latency_for_small_random_ops() {
        let mut sim = small_hdd_array(6);
        let _ = sim.submit(SimTime::ZERO, ArrayRequest::new(1_000_000, 4096, OpKind::Read));
        sim.run_to_idle();
        let read = sim.drain_completions()[0].latency();
        let mut sim = small_hdd_array(6);
        let _ = sim.submit(SimTime::ZERO, ArrayRequest::new(1_000_000, 4096, OpKind::Write));
        sim.run_to_idle();
        let write = sim.drain_completions()[0].latency();
        assert!(write > read, "RMW write {write} must exceed read {read}");
    }

    #[test]
    fn submit_validation() {
        let mut sim = small_hdd_array(4);
        assert!(matches!(
            sim.submit(SimTime::ZERO, ArrayRequest::new(0, 0, OpKind::Read)),
            Err(SimError::EmptyRequest)
        ));
        let cap = sim.data_capacity_sectors();
        assert!(matches!(
            sim.submit(SimTime::ZERO, ArrayRequest::new(cap, 4096, OpKind::Read)),
            Err(SimError::OutOfRange { .. })
        ));
        sim.run_until(SimTime::from_secs(1));
        assert!(matches!(
            sim.submit(SimTime::ZERO, ArrayRequest::new(0, 512, OpKind::Read)),
            Err(SimError::SubmitInPast { .. })
        ));
    }

    #[test]
    fn idle_array_draws_chassis_plus_idle_disks() {
        let sim = small_hdd_array(6);
        let w = sim.power_log().total_watts_at(SimTime::from_secs(10));
        assert!((w - (16.0 + 6.0 * 5.0)).abs() < 1e-9, "idle power = {w}");
    }

    #[test]
    fn active_power_exceeds_idle_power() {
        let mut sim = small_hdd_array(4);
        for i in 0..50 {
            let sector = (i * 7_919_113) % 1_000_000;
            sim.submit(SimTime::from_millis(i * 2), ArrayRequest::new(sector, 4096, OpKind::Read))
                .unwrap();
        }
        sim.run_to_idle();
        let span_end = sim.now();
        let avg = sim.power_log().avg_watts(SimTime::ZERO, span_end);
        let idle = 16.0 + 4.0 * 5.0;
        assert!(avg > idle + 0.1, "active avg {avg} vs idle {idle}");
    }

    #[test]
    fn sequential_stream_is_faster_than_random() {
        let run = |random: bool| {
            let mut sim = small_hdd_array(4);
            let mut sector = 0u64;
            for i in 0..100u64 {
                let s = if random { (i * 104_729_573) % 100_000_000 } else { sector };
                sim.submit(SimTime::ZERO, ArrayRequest::new(s, 65536, OpKind::Read)).unwrap();
                sector += 128;
            }
            sim.run_to_idle();
            sim.now().as_secs_f64()
        };
        let seq = run(false);
        let rnd = run(true);
        assert!(rnd > seq * 2.0, "random {rnd}s vs sequential {seq}s");
    }

    #[test]
    fn completions_are_time_ordered() {
        let mut sim = small_hdd_array(4);
        for i in 0..20u64 {
            sim.submit(
                SimTime::from_millis(i * 5),
                ArrayRequest::new((i * 3_331_999) % 1_000_000, 8192, OpKind::Read),
            )
            .unwrap();
        }
        sim.run_to_idle();
        let done = sim.drain_completions();
        assert_eq!(done.len(), 20);
        assert!(done.windows(2).all(|w| w[0].completed <= w[1].completed));
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = small_hdd_array(4);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert!(sim.next_event_time().is_none());
    }

    #[test]
    fn spin_down_reduces_idle_power() {
        let mut cfg_sim = small_hdd_array(4);
        cfg_sim.cfg.spin_down_after = Some(SimDuration::from_secs(2));
        cfg_sim.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        cfg_sim.run_to_idle();
        // Fire the spin-down checks.
        cfg_sim.run_until(cfg_sim.now() + SimDuration::from_secs(10));
        let late = cfg_sim.now();
        let w = cfg_sim.power_log().total_watts_at(late);
        // Disk 0 (and only it) served the op; after time-out it stands by.
        // All disks without traffic never got a check scheduled (they were
        // never dispatched), so only the active one spun down.
        let expect = 16.0 + 3.0 * 5.0 + 0.8;
        assert!((w - expect).abs() < 1e-9, "power after spin-down = {w}, expect {expect}");
    }

    #[test]
    fn spin_up_penalty_applies_after_standby() {
        let mut sim = small_hdd_array(4);
        sim.cfg.spin_down_after = Some(SimDuration::from_millis(100));
        sim.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        sim.run_to_idle();
        sim.run_until(sim.now() + SimDuration::from_secs(1));
        let t0 = sim.now();
        sim.submit(t0, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        sim.run_to_idle();
        let done = sim.drain_completions();
        let lat = done.last().unwrap().latency();
        assert!(lat.as_secs_f64() > 6.0, "spin-up must add ~6s, got {lat}");
    }

    #[test]
    fn elevator_reduces_seek_time_under_backlog() {
        let run = |disc: QueueDiscipline| {
            let mut sim = small_hdd_array(3);
            sim.cfg.queue_discipline = disc;
            // A deep backlog of scattered single-sector reads.
            for i in 0..200u64 {
                let sector = (i * 48_271) % 500_000 * 256; // scattered strips
                sim.submit(SimTime::ZERO, ArrayRequest::new(sector, 512, OpKind::Read)).unwrap();
            }
            sim.run_to_idle();
            sim.now().as_secs_f64()
        };
        let fifo = run(QueueDiscipline::Fifo);
        let elevator = run(QueueDiscipline::Elevator);
        assert!(elevator < fifo, "elevator {elevator}s must beat fifo {fifo}s");
    }

    #[test]
    fn link_caps_throughput_of_huge_reads() {
        let mut sim = small_hdd_array(6);
        // 64 MiB of 1 MiB sequential reads: disks can stream ~125 MB/s each
        // in parallel, so the 400 MB/s link is the bottleneck.
        for i in 0..64u64 {
            sim.submit(SimTime::ZERO, ArrayRequest::new(i * 2048, 1 << 20, OpKind::Read)).unwrap();
        }
        sim.run_to_idle();
        let secs = sim.drain_completions().last().unwrap().completed.as_secs_f64();
        let mbps = 64.0 / secs;
        assert!(mbps < 410.0, "link must cap at ~400 MB/s, got {mbps:.0}");
        assert!(mbps > 250.0, "sequential streaming should approach the link cap, got {mbps:.0}");
    }

    #[test]
    fn degraded_array_serves_reads_slower_but_correctly() {
        let run = |fail: bool| {
            let mut sim = small_hdd_array(4);
            if fail {
                sim.fail_disk(0);
            }
            for i in 0..40u64 {
                sim.submit(
                    SimTime::from_millis(i * 30),
                    ArrayRequest::new((i * 1_048_573) % 10_000_000, 8192, OpKind::Read),
                )
                .unwrap();
            }
            sim.run_to_idle();
            let done = sim.drain_completions();
            assert_eq!(done.len(), 40);
            let avg: f64 =
                done.iter().map(|c| c.latency().as_millis_f64()).sum::<f64>() / done.len() as f64;
            (avg, sim.stats().disk_ops)
        };
        let (healthy_ms, healthy_ops) = run(false);
        let (degraded_ms, degraded_ops) = run(true);
        assert!(degraded_ms > healthy_ms, "reconstruction must cost latency");
        assert!(degraded_ops > healthy_ops, "reconstruction reads extra strips");
    }

    #[test]
    fn degraded_array_saves_idle_power() {
        let mut sim = small_hdd_array(4);
        let healthy = sim.power_log().total_watts_at(sim.now());
        sim.fail_disk(1);
        sim.run_until(SimTime::from_secs(10));
        let degraded = sim.power_log().total_watts_at(sim.now());
        // The spun-down member idles at standby power.
        assert!((healthy - degraded - (5.0 - 0.8)).abs() < 1e-9);
        assert_eq!(sim.failed_disk(), Some(1));
    }

    #[test]
    fn repair_restores_service_with_spinup() {
        let mut sim = small_hdd_array(4);
        sim.fail_disk(0);
        sim.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        sim.run_to_idle();
        sim.repair_disk();
        assert_eq!(sim.failed_disk(), None);
        // Next request hitting disk 0 pays the spin-up.
        let t0 = sim.now();
        sim.submit(t0, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        sim.run_to_idle();
        let lat = sim.drain_completions().last().unwrap().latency();
        assert!(lat.as_secs_f64() > 5.9, "spin-up expected, got {lat}");
    }

    #[test]
    #[should_panic(expected = "idle array")]
    fn fail_disk_rejects_inflight_requests() {
        let mut sim = small_hdd_array(4);
        sim.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        // Request still queued (no stepping): failing now must panic.
        sim.fail_disk(0);
    }

    #[test]
    fn degraded_writes_complete_without_touching_failed_member() {
        let mut sim = small_hdd_array(4);
        sim.fail_disk(2);
        for i in 0..30u64 {
            sim.submit(
                SimTime::from_millis(i * 40),
                ArrayRequest::new((i * 524_287) % 5_000_000, 16384, OpKind::Write),
            )
            .unwrap();
        }
        sim.run_to_idle();
        assert_eq!(sim.drain_completions().len(), 30);
        assert_eq!(sim.stats().busy_ns[2], 0, "failed member must never be dispatched");
    }

    fn cached_array(write_back: bool) -> ArraySim {
        let mut sim = small_hdd_array(4);
        sim.cfg.cache = Some(crate::cache::CacheConfig {
            size_bytes: 64 * 1024 * 1024,
            line_bytes: 64 * 1024,
            write_back,
        });
        let cfg = sim.cfg.clone();
        let devices = (0..4)
            .map(|_| Device::Hdd(HddModel::new(HddParams::seagate_7200_12_500gb())))
            .collect();
        ArraySim::new(cfg, devices)
    }

    #[test]
    fn cache_hits_skip_the_disks() {
        let mut sim = cached_array(true);
        // First pass warms the cache; second pass must be served from RAM.
        for pass in 0..2u64 {
            for i in 0..10u64 {
                let at = sim.now().max(SimTime::from_millis(pass * 2000 + i * 50));
                sim.submit(at, ArrayRequest::new(i * 128, 4096, OpKind::Read)).unwrap();
            }
            sim.run_to_idle();
        }
        let done = sim.drain_completions();
        assert_eq!(done.len(), 20);
        assert_eq!(sim.stats().cache_hits, 10);
        let cold: f64 = done[..10].iter().map(|c| c.latency().as_millis_f64()).sum();
        let warm: f64 = done[10..].iter().map(|c| c.latency().as_millis_f64()).sum();
        assert!(warm < cold / 10.0, "warm {warm}ms vs cold {cold}ms");
        assert!(sim.cache().unwrap().hit_ratio() > 0.49);
    }

    #[test]
    fn write_back_acks_before_destage() {
        let mut wb = cached_array(true);
        wb.submit(SimTime::ZERO, ArrayRequest::new(1_000_000, 4096, OpKind::Write)).unwrap();
        wb.run_to_idle();
        let ack = wb.drain_completions()[0].latency();
        let mut wt = cached_array(false);
        wt.submit(SimTime::ZERO, ArrayRequest::new(1_000_000, 4096, OpKind::Write)).unwrap();
        wt.run_to_idle();
        let through = wt.drain_completions()[0].latency();
        assert!(
            ack.as_millis_f64() < through.as_millis_f64() / 5.0,
            "write-back ack {ack} vs write-through {through}"
        );
        // Destage still happened: the disks moved the RMW traffic.
        assert_eq!(wb.stats().physical_bytes, wt.stats().physical_bytes);
        assert_eq!(wb.stats().requests_completed, 1);
    }

    #[test]
    fn disabled_cache_matches_paper_testbed() {
        // The presets reproduce the paper's cache-disabled configuration.
        let sim = ArraySpec::hdd_raid5(4).build();
        assert!(sim.cache().is_none());
    }

    #[test]
    fn rebuild_reconstructs_and_finishes() {
        let mut sim = small_hdd_array(4);
        sim.fail_disk(1);
        // Serve some degraded traffic first.
        sim.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        sim.run_to_idle();
        let status = sim.start_rebuild(RebuildConfig {
            delay_between: SimDuration::from_millis(1),
            max_stripes: 50,
        });
        assert_eq!(status.disk, 1);
        assert_eq!(status.stripes_total, 50);
        assert_eq!(sim.failed_disk(), None, "replacement drive is in the slot");
        assert!(sim.rebuild_status().is_some());
        sim.run_to_idle();
        assert!(sim.rebuild_status().is_none(), "rebuild completed");
        // 50 stripes x (3 reads + 1 write) of a 128 KiB strip, plus the
        // earlier degraded read's reconstruction traffic.
        assert!(sim.stats().disk_ops >= 200);
        // The replacement disk received 50 strip writes.
        assert!(sim.stats().busy_ns[1] > 0);
    }

    #[test]
    fn foreground_io_runs_during_rebuild_with_correct_planning() {
        let mut sim = small_hdd_array(4);
        sim.fail_disk(0);
        sim.start_rebuild(RebuildConfig {
            delay_between: SimDuration::from_millis(5),
            max_stripes: 200,
        });
        // Requests far beyond the frontier must still reconstruct (no read
        // lands on disk 0 for dirty stripes); requests complete regardless.
        for i in 0..20u64 {
            let at = sim.now().max(SimTime::from_millis(i * 10));
            sim.submit(at, ArrayRequest::new(500_000 + i * 64, 8192, OpKind::Read)).unwrap();
            sim.run_until(at);
        }
        sim.run_to_idle();
        let done = sim.drain_completions();
        assert_eq!(done.len(), 20, "foreground requests complete during rebuild");
        assert!(sim.rebuild_status().is_none());
    }

    #[test]
    fn dirty_stripes_reconstruct_while_clean_stripes_read_directly() {
        let mut sim = small_hdd_array(4);
        sim.fail_disk(0);
        // One stripe job, then a long pause before the next.
        sim.start_rebuild(RebuildConfig {
            delay_between: SimDuration::from_secs(3600),
            max_stripes: 10,
        });
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(sim.rebuild_status().unwrap().stripes_done, 1, "one stripe rebuilt");

        // A read inside the clean stripe 0, targeting the rebuilt disk 0
        // (logical sector 0 maps to disk 0), is a single direct disk read.
        let ops_before = sim.stats().disk_ops;
        let t = sim.now();
        sim.submit(t, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        // Run until the request completes (ignore the pending rebuild tick).
        while sim.completions().is_empty() {
            assert!(sim.step());
        }
        let direct_ops = sim.stats().disk_ops - ops_before;
        assert_eq!(direct_ops, 1, "clean stripe reads directly");

        // A read in a dirty stripe whose data sits on disk 0 must
        // reconstruct from the three survivors. Stripe 4 rotates parity back
        // to disk 3, so its data index 0 is on disk 0; logical sector =
        // 4 stripes * 3 data strips * 256 sectors.
        let ops_before = sim.stats().disk_ops;
        let t = sim.now();
        sim.submit(t, ArrayRequest::new(4 * 3 * 256, 4096, OpKind::Read)).unwrap();
        while sim.completions().len() < 2 {
            assert!(sim.step());
        }
        let degraded_ops = sim.stats().disk_ops - ops_before;
        assert_eq!(degraded_ops, 3, "dirty stripe reconstructs from survivors");
    }

    #[test]
    fn rebuild_progress_is_monotone_and_throttled() {
        let mut sim = small_hdd_array(4);
        sim.fail_disk(2);
        sim.start_rebuild(RebuildConfig {
            delay_between: SimDuration::from_millis(50),
            max_stripes: 20,
        });
        let mut last = 0;
        while let Some(st) = sim.rebuild_status() {
            assert!(st.stripes_done >= last);
            last = st.stripes_done;
            if !sim.step() {
                break;
            }
        }
        assert_eq!(sim.rebuild_status(), None);
        // Throttling: 20 stripes at >=50ms spacing -> at least ~0.95s.
        assert!(sim.now().as_secs_f64() > 0.9, "rebuild too fast: {}", sim.now());
    }

    #[test]
    fn foreground_preempts_rebuild_in_the_queue() {
        // With a rebuild saturating the disks, a foreground read should still
        // complete in ~one service time because it jumps the background queue.
        let mut sim = small_hdd_array(4);
        sim.fail_disk(0);
        sim.start_rebuild(RebuildConfig {
            delay_between: SimDuration::ZERO, // back-to-back stripe jobs
            max_stripes: 1_000,
        });
        // Let the rebuild get going.
        sim.run_until(SimTime::from_millis(200));
        let t0 = sim.now();
        sim.submit(t0, ArrayRequest::new(5_000_000, 4096, OpKind::Read)).unwrap();
        let id_done = loop {
            if let Some(c) = sim.completions().last() {
                break c.completed;
            }
            assert!(sim.step(), "drained without completing the foreground read");
        };
        let latency_ms = (id_done - t0).as_millis_f64();
        // It waits at most for the in-flight strip op (~2-14ms) plus its own
        // reconstruction (~3 disks), not for hundreds of queued stripe jobs.
        assert!(latency_ms < 120.0, "foreground starved behind rebuild: {latency_ms}ms");
    }

    #[test]
    #[should_panic(expected = "needs a failed member")]
    fn rebuild_requires_failure() {
        let mut sim = small_hdd_array(4);
        sim.start_rebuild(RebuildConfig::default());
    }

    #[test]
    fn op_log_reveals_rmw_phase_ordering() {
        let mut sim = small_hdd_array(6);
        sim.enable_op_log();
        let id = sim.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Write)).unwrap();
        sim.run_to_idle();
        let ops: Vec<_> =
            sim.op_log().unwrap().iter().filter(|o| o.request == id).copied().collect();
        assert_eq!(ops.len(), 4, "RMW small write: 2 reads + 2 writes");
        let last_read_end =
            ops.iter().filter(|o| o.kind == OpKind::Read).map(|o| o.finished).max().unwrap();
        let first_write_start =
            ops.iter().filter(|o| o.kind == OpKind::Write).map(|o| o.started).min().unwrap();
        assert!(first_write_start >= last_read_end, "RMW writes must wait for the parity reads");
        // Intervals are well-formed and on distinct disks per phase.
        for o in &ops {
            assert!(o.finished > o.started);
            assert!(o.disk < 6);
        }
    }

    #[test]
    fn op_log_disabled_by_default() {
        let mut sim = small_hdd_array(4);
        sim.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        sim.run_to_idle();
        assert!(sim.op_log().is_none());
    }

    #[test]
    fn presets_build() {
        let sim = ArraySpec::hdd_raid5(6).build();
        assert_eq!(sim.devices().len(), 6);
        let sim = ArraySpec::ssd_raid5(4).build();
        assert_eq!(sim.devices().len(), 4);
        let sim = ArraySpec::hdd_idle(0).build();
        assert_eq!(sim.devices().len(), 0);
    }

    #[test]
    fn events_processed_counts_des_work() {
        let mut sim = small_hdd_array(4);
        assert_eq!(sim.events_processed(), 0);
        sim.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        sim.run_to_idle();
        // Arrival + phase + disk-free + done, at minimum.
        assert!(sim.events_processed() >= 4, "{:?}", sim);
    }

    #[test]
    fn obs_flush_publishes_delta_counters_idempotently() {
        // No instrumentation attached when obs is off: flush is a no-op.
        let mut quiet = small_hdd_array(4);
        quiet.submit(SimTime::ZERO, ArrayRequest::new(0, 4096, OpKind::Read)).unwrap();
        quiet.run_to_idle();
        assert!(quiet.obs.is_none());
        quiet.obs_flush();

        tracer_obs::enable();
        let mut sim = small_hdd_array(4);
        assert!(sim.obs.is_some());
        for i in 0..20u64 {
            sim.submit(
                SimTime::from_millis(i),
                ArrayRequest::new((i * 7_919) % 100_000, 8192, OpKind::Read),
            )
            .unwrap();
        }
        sim.run_to_idle();
        let depth_before = tracer_obs::histogram("des.queue_depth").snapshot().count;
        let before = tracer_obs::counter("des.events").value();
        sim.obs_flush();
        let after = tracer_obs::counter("des.events").value();
        assert!(after >= before + sim.events_processed(), "delta not published");
        // Second flush with no new work publishes nothing more from this sim.
        sim.obs_flush();
        assert_eq!(tracer_obs::counter("des.events").value(), after);
        assert!(tracer_obs::counter("des.dispatches").value() >= 20);
        // Queue depth was sampled live at dispatch time.
        assert!(
            tracer_obs::histogram("des.queue_depth").snapshot().count > depth_before
                || depth_before > 0
        );
        tracer_obs::disable();
    }

    #[test]
    fn elevator_counters_track_hits_and_wraps() {
        let mut q = DeviceQueue::default();
        for sector in [100u64, 200, 300] {
            q.push(QueueDiscipline::Elevator, 0, DiskOp::new(sector, 8, OpKind::Read));
        }
        // Head at 150: 200 then 300 dispatch forward, then wrap back to 100.
        assert_eq!(q.pop_elevator(150).unwrap().1.sector, 200);
        assert_eq!(q.pop_elevator(208).unwrap().1.sector, 300);
        assert_eq!(q.pop_elevator(308).unwrap().1.sector, 100);
        assert!(q.pop_elevator(0).is_none());
        assert_eq!(q.elevator_hits, 2);
        assert_eq!(q.elevator_wraps, 1);
    }

    #[test]
    fn slab_recycles_slots_under_steady_load() {
        // 500 requests with at most a handful in flight: the slab must stay
        // small while public ids keep growing.
        let mut sim = small_hdd_array(4);
        let mut at = SimTime::ZERO;
        for i in 0..500u64 {
            at += SimDuration::from_millis(5);
            sim.submit(at, ArrayRequest::new((i * 7_919) % 1_000_000, 4096, OpKind::Read)).unwrap();
            sim.run_until(at);
        }
        sim.run_to_idle();
        let done = sim.drain_completions();
        assert_eq!(done.len(), 500);
        // Public ids stayed monotone and unique across slot reuse.
        let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 500);
        assert_eq!(*ids.last().unwrap(), 499);
        assert!(sim.requests.is_empty());
        assert!(
            sim.requests.slot_count() < 64,
            "store grew to {} slots for a shallow queue",
            sim.requests.slot_count()
        );
    }

    #[test]
    fn parallelism_builder_clamps_and_reports() {
        let sim = small_hdd_array(4).with_parallelism(0);
        assert_eq!(sim.parallelism(), 1);
        let sim = small_hdd_array(4).with_parallelism(4);
        assert_eq!(sim.parallelism(), 4);
        assert_eq!(sim.waves(), 0);
    }

    #[test]
    fn parallel_run_forms_waves_on_wide_reads() {
        // A full-stripe read fans out to every member; the resulting
        // same-phase DiskFrees are wave candidates.
        let mut serial = small_hdd_array(6);
        let mut parallel = small_hdd_array(6).with_parallelism(2);
        for sim in [&mut serial, &mut parallel] {
            let mut at = SimTime::ZERO;
            for i in 0..50u64 {
                at += SimDuration::from_millis(2);
                sim.submit(at, ArrayRequest::new(i * 2048, 512 * 1024, OpKind::Read)).unwrap();
            }
            sim.run_to_idle();
        }
        assert!(parallel.waves() > 0, "wide reads never formed a wave");
        assert_eq!(serial.events_processed(), parallel.events_processed());
        assert_eq!(serial.drain_completions(), parallel.drain_completions());
        assert_eq!(serial.stats().busy_ns, parallel.stats().busy_ns);
    }

    #[test]
    fn reserve_events_is_behaviour_neutral() {
        let mut a = small_hdd_array(4);
        let mut b = small_hdd_array(4);
        b.reserve_events(8192);
        for sim in [&mut a, &mut b] {
            for i in 0..20u64 {
                sim.submit(
                    SimTime::from_millis(i),
                    ArrayRequest::new(i * 4096, 64 * 1024, OpKind::Write),
                )
                .unwrap();
            }
            sim.run_to_idle();
        }
        assert_eq!(a.drain_completions(), b.drain_completions());
        assert_eq!(a.events_processed(), b.events_processed());
    }

    /// Reference implementation: the previous O(n) C-LOOK scan over a
    /// `VecDeque`, kept verbatim as the behavioural oracle for the indexed
    /// elevator.
    fn scan_pick(q: &mut VecDeque<(u32, DiskOp)>, head: u64) -> Option<(u32, DiskOp)> {
        let mut best: Option<(usize, u64)> = None;
        let mut lowest: Option<(usize, u64)> = None;
        for (i, (_, op)) in q.iter().enumerate() {
            if op.sector >= head && best.is_none_or(|(_, s)| op.sector < s) {
                best = Some((i, op.sector));
            }
            if lowest.is_none_or(|(_, s)| op.sector < s) {
                lowest = Some((i, op.sector));
            }
        }
        let (idx, _) = best.or(lowest)?;
        q.remove(idx)
    }

    proptest! {
        /// The BTreeMap-indexed elevator dispatches in exactly the order of
        /// the old linear scan — including the submission-order tie-break at
        /// equal sectors — under arbitrary interleavings of pushes and pops.
        #[test]
        fn indexed_elevator_matches_linear_scan(
            ops in proptest::collection::vec((0u64..64, 1u64..9), 1..200),
            pop_every in 2usize..6,
        ) {
            let mut reference: VecDeque<(u32, DiskOp)> = VecDeque::new();
            let mut indexed = DeviceQueue::default();
            let mut head = 0u64;
            for (i, &(sector, sectors)) in ops.iter().enumerate() {
                let op = DiskOp::new(sector, sectors, OpKind::Read);
                reference.push_back((i as u32, op));
                indexed.push(QueueDiscipline::Elevator, i as u32, op);
                if i % pop_every == 0 {
                    let want = scan_pick(&mut reference, head);
                    let got = indexed.pop(QueueDiscipline::Elevator, head);
                    prop_assert_eq!(got, want);
                    if let Some((_, op)) = got {
                        head = op.sector + op.sectors;
                    }
                }
            }
            // Drain both completely.
            loop {
                let want = scan_pick(&mut reference, head);
                let got = indexed.pop(QueueDiscipline::Elevator, head);
                prop_assert_eq!(got, want);
                match got {
                    Some((_, op)) => head = op.sector + op.sectors,
                    None => break,
                }
            }
            prop_assert!(indexed.is_empty());
        }
    }

    #[test]
    fn discipline_flip_mid_run_drains_both_structures() {
        let mut q = DeviceQueue::default();
        q.push(QueueDiscipline::Fifo, 0, DiskOp::new(500, 8, OpKind::Read));
        q.push(QueueDiscipline::Elevator, 1, DiskOp::new(100, 8, OpKind::Read));
        assert!(!q.is_empty());
        // Under Elevator the indexed op dispatches first, then the FIFO one.
        let (id, _) = q.pop(QueueDiscipline::Elevator, 0).unwrap();
        assert_eq!(id, 1);
        let (id, _) = q.pop(QueueDiscipline::Elevator, 0).unwrap();
        assert_eq!(id, 0);
        assert!(q.is_empty());
        assert!(q.pop(QueueDiscipline::Fifo, 0).is_none());
    }
}
