//! Discrete-event storage-array simulator for the TRACER framework.
//!
//! The TRACER paper evaluates energy efficiency on a physical RAID-5
//! enclosure measured with a Hall-effect power meter. This crate is the
//! substitute substrate: a deterministic discrete-event simulation of that
//! testbed, detailed enough to reproduce every *mechanism* the paper's
//! experiments exercise:
//!
//! * **HDD mechanics** ([`hdd`]) — square-root/linear seek curve, rotational
//!   latency, zoned media rate, write settle, sequential-run detection, and a
//!   power-state machine (standby / idle / seek / transfer / spin-up);
//! * **SLC SSD behaviour** ([`ssd`]) — command latency plus streaming rate,
//!   deterministic garbage-collection stalls on random writes;
//! * **RAID-5 geometry** ([`raid`]) — left-symmetric rotating parity with
//!   read-modify-write vs. reconstruct-write planning (128 KB strip);
//! * **array engine** ([`mod@array`]) — per-device queues (FIFO or C-LOOK
//!   elevator), a shared 4 Gbps FC host link, controller overhead and XOR
//!   timing, optional idle spin-down for MAID-style policies;
//! * **exact power accounting** ([`powerlog`]) — piecewise-constant per-device
//!   power timelines integrated without sampling error.
//!
//! [`presets`] builds the paper's Table II testbed configurations.
//!
//! # Example
//!
//! ```
//! use tracer_sim::{ArrayRequest, ArraySpec, SimTime};
//! use tracer_sim::device::OpKind;
//!
//! let mut sim = ArraySpec::hdd_raid5(6).build();
//! sim.submit(SimTime::ZERO, ArrayRequest::new(0, 64 * 1024, OpKind::Read)).unwrap();
//! sim.run_to_idle();
//! let done = sim.drain_completions();
//! assert_eq!(done.len(), 1);
//! assert!(done[0].latency().as_millis_f64() > 0.0);
//! ```

pub mod array;
pub mod cache;
pub mod calibrate;
pub mod device;
pub mod equeue;
pub mod error;
pub mod hdd;
pub mod nvme;
pub mod power;
pub mod powerlog;
pub mod presets;
pub mod raid;
pub(crate) mod soa;
pub mod spec;
pub mod ssd;
pub mod stripe;
pub mod tier;
pub mod time;

pub use array::{
    ArrayConfig, ArrayRequest, ArraySim, ArrayStats, Completion, OpRecord, QueueDiscipline,
    RebuildConfig, RebuildStatus, RequestId,
};
pub use cache::{CacheConfig, ControllerCache};
pub use calibrate::{calibrate, CalibrationReport};
pub use device::{Device, DeviceModel, DiskOp, Phase, PhaseLabel, ServicePlan};
pub use error::SimError;
pub use nvme::{NvmeModel, NvmeParams};
pub use power::PowerPolicy;
pub use powerlog::{ArrayPowerLog, PowerTimeline};
pub use raid::{DiskExtent, Geometry, IoPlan, Redundancy};
pub use spec::{ArraySpec, DeviceSpec, Layout};
pub use stripe::StripeLayout;
pub use tier::{TierConfig, TieredModel};
pub use time::{SimDuration, SimTime};
