//! Pending-event queues for the DES core.
//!
//! The engine orders events by `(time, seq)` — seq is a monotone counter that
//! makes equal-timestamp events process in scheduling order, which is what
//! keeps simulations bit-for-bit reproducible. Two interchangeable structures
//! implement that contract behind [`EventQueue`]:
//!
//! * [`HeapQueue`] — the classic binary min-heap. O(log n) per operation,
//!   kept as the property-test oracle and the benchmark baseline.
//! * [`CalendarQueue`] — a calendar queue with a far-future ladder: a
//!   circular array of time buckets of width 2^k ns, scanned by a cursor
//!   that sweeps one "year" (`buckets × width`) per lap. Events beyond the
//!   current year wait on an unsorted ladder and are folded into buckets at
//!   year rollover. For the near-uniform inter-arrival distributions replay
//!   produces, enqueue and dequeue are amortised O(1): the queue resizes and
//!   recalibrates its bucket width from the live event population whenever
//!   occupancy drifts.
//!
//! Both structures pop the exact global minimum `(time, seq)`, so swapping
//! one for the other cannot change a simulation's output — only its speed.
#![doc = "tracer-invariant: deterministic"]

use crate::time::SimTime;

/// One scheduled entry: `(time ns, seq, payload)`.
type Entry<T> = (u64, u64, T);

/// The total-order contract shared by the DES event structures: events pop in
/// strictly ascending `(time, seq)` order, whatever the insertion order.
pub trait EventQueue<T> {
    /// Schedule `ev` at `at` with tie-break key `seq`. Callers must keep
    /// `(at, seq)` pairs unique (the engine's monotone counter does).
    fn schedule(&mut self, at: SimTime, seq: u64, ev: T);

    /// Remove and return the earliest `(time, seq)` event.
    fn pop(&mut self) -> Option<(SimTime, u64, T)>;

    /// Remove and return the earliest event only if its time is ≤ `bound`;
    /// otherwise leave the queue untouched.
    fn pop_at_or_before(&mut self, bound: SimTime) -> Option<(SimTime, u64, T)>;

    /// Time of the earliest pending event without removing it.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size the structure for roughly `expected` concurrently pending events
    /// (a hint — correctness never depends on it).
    fn reserve_events(&mut self, expected: usize) {
        let _ = expected;
    }
}

/// Min-heap entry ordering: reversed `(time, seq)` so `BinaryHeap` (a
/// max-heap) pops the minimum. The payload never participates in ordering.
#[derive(Debug, Clone, Copy)]
struct HeapEntry<T>(Entry<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0 .0, self.0 .1) == (other.0 .0, other.0 .1)
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the heap's "largest" is the smallest (time, seq).
        (other.0 .0, other.0 .1).cmp(&(self.0 .0, self.0 .1))
    }
}

/// Binary-heap event queue: the reference implementation and oracle.
#[derive(Debug, Default)]
pub struct HeapQueue<T> {
    heap: std::collections::BinaryHeap<HeapEntry<T>>,
}

impl<T> HeapQueue<T> {
    /// An empty heap queue.
    pub fn new() -> Self {
        Self { heap: std::collections::BinaryHeap::new() }
    }
}

impl<T> EventQueue<T> for HeapQueue<T> {
    fn schedule(&mut self, at: SimTime, seq: u64, ev: T) {
        self.heap.push(HeapEntry((at.as_nanos(), seq, ev)));
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|HeapEntry((t, s, ev))| (SimTime::from_nanos(t), s, ev))
    }

    fn pop_at_or_before(&mut self, bound: SimTime) -> Option<(SimTime, u64, T)> {
        if self.heap.peek().is_some_and(|e| e.0 .0 <= bound.as_nanos()) {
            self.pop()
        } else {
            None
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| SimTime::from_nanos(e.0 .0))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve_events(&mut self, expected: usize) {
        let want = expected.saturating_sub(self.heap.len());
        self.heap.reserve(want);
    }
}

/// Smallest / largest bucket counts the calendar will use.
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 20;
/// Bucket-width bounds as powers of two of nanoseconds (1 µs .. ~17.6 min).
const MIN_SHIFT: u32 = 10;
const MAX_SHIFT: u32 = 40;

/// Calendar queue with a far-future ladder. See the module docs for the
/// structure; the implementation notes that matter for correctness:
///
/// * Every bucket entry lies in the current year `[bucket_start, year_end)`,
///   so the global minimum of the bucket population is always found by
///   sweeping at most one lap from the cursor — no year wrap can hide it.
/// * Every ladder entry lies at or beyond `year_end` (rollover folds newly
///   in-year entries back into buckets), so the buckets' minimum beats the
///   ladder's whenever any bucket entry exists.
/// * A push behind the cursor (never produced by the engine, whose event
///   times are monotone, but reachable by adversarial schedules) triggers a
///   full rebuild anchored at the new minimum rather than a silent misfile.
///
/// Hot-path engineering (ladder-queue style): when the cursor settles on a
/// non-empty bucket, that bucket is sorted *descending* by `(time, seq)`
/// exactly once, so each pop is an O(1) `Vec::pop` from its tail; pushes
/// that land on the settled bucket binary-insert to keep the order. Rebuilds
/// recycle the emptied bucket vectors, so steady-state operation performs no
/// allocation at all.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<Entry<T>>>,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: usize,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Index of the bucket the cursor is parked on.
    cursor: usize,
    /// Start time of the cursor bucket's window.
    bucket_start: u64,
    /// Whether the cursor bucket is currently sorted descending by
    /// `(time, seq)`, making its tail the global minimum.
    cursor_sorted: bool,
    /// Exclusive end of the current year; ladder entries all lie at/beyond.
    year_end: u64,
    ladder: Vec<Entry<T>>,
    len: usize,
    /// Entries currently filed in buckets (`len - ladder.len()`).
    in_year: usize,
    rollovers: u64,
    spills: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty calendar with the minimum bucket count and a 1 ms width.
    pub fn new() -> Self {
        Self::with_buckets(MIN_BUCKETS, 20)
    }

    fn with_buckets(n: usize, shift: u32) -> Self {
        debug_assert!(n.is_power_of_two());
        Self {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            mask: n - 1,
            shift,
            cursor: 0,
            bucket_start: 0,
            cursor_sorted: false,
            year_end: (n as u64) << shift,
            ladder: Vec::new(),
            len: 0,
            in_year: 0,
            rollovers: 0,
            spills: 0,
        }
    }

    /// Year rollovers plus far-future jumps performed so far (an
    /// observability metric: high churn means the width is mis-calibrated).
    pub fn rollovers(&self) -> u64 {
        self.rollovers
    }

    /// Events that were filed on the far-future ladder rather than a bucket.
    pub fn ladder_spills(&self) -> u64 {
        self.spills
    }

    /// Current bucket count (diagnostics / tests).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        (t >> self.shift) as usize & self.mask
    }

    #[inline]
    fn year_len(&self) -> u64 {
        (self.buckets.len() as u64) << self.shift
    }

    /// Park the cursor on the bucket holding the global in-year minimum and
    /// sort that bucket descending, so its tail is the next event. Callers
    /// must ensure `in_year > 0`; the sweep then terminates within one lap
    /// (see the type docs for why the first non-empty bucket wins).
    fn settle_cursor(&mut self) {
        debug_assert!(self.in_year > 0);
        if self.cursor_sorted && !self.buckets[self.cursor].is_empty() {
            return;
        }
        let width = 1u64 << self.shift;
        let mut idx = self.cursor;
        let mut start = self.bucket_start;
        while self.buckets[idx].is_empty() {
            idx = (idx + 1) & self.mask;
            start += width;
            debug_assert!(start < self.year_end, "in-year entries must be found in one lap");
        }
        self.cursor = idx;
        self.bucket_start = start;
        self.buckets[idx].sort_unstable_by_key(|&(t, s, _)| std::cmp::Reverse((t, s)));
        self.cursor_sorted = true;
    }

    /// Remove and return the tail of the settled cursor bucket — the global
    /// minimum once [`CalendarQueue::settle_cursor`] has run.
    fn pop_cursor(&mut self) -> Entry<T> {
        let e = self.buckets[self.cursor].pop().expect("settled cursor bucket is non-empty");
        self.len -= 1;
        self.in_year -= 1;
        e
    }

    /// Index and time of the ladder minimum (callers ensure non-empty).
    fn ladder_min(&self) -> (usize, u64) {
        let (pos, &(t, _, _)) = self
            .ladder
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, _))| (t, s))
            .expect("len > 0 with empty buckets implies a non-empty ladder");
        (pos, t)
    }

    /// Remove ladder entry `pos` and re-anchor the year at it (the
    /// "far-future jump"): the year is moved to contain it and the ladder is
    /// re-filed.
    fn pop_ladder(&mut self, pos: usize) -> Entry<T> {
        let e = self.ladder.swap_remove(pos);
        self.len -= 1;
        self.jump_to(e.0);
        e
    }

    /// Halve the calendar when occupancy has collapsed (amortised against
    /// the pops that emptied it).
    fn maybe_shrink(&mut self) {
        if self.len * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
    }

    /// Move the year window so `t` is in the cursor bucket, then re-file
    /// ladder entries that fell into the new year.
    fn jump_to(&mut self, t: u64) {
        self.rollovers += 1;
        self.cursor_sorted = false;
        self.bucket_start = (t >> self.shift) << self.shift;
        self.cursor = self.bucket_of(t);
        self.year_end = self.bucket_start.saturating_add(self.year_len());
        let mut i = 0;
        while i < self.ladder.len() {
            if self.ladder[i].0 < self.year_end {
                let e = self.ladder.swap_remove(i);
                let b = self.bucket_of(e.0);
                self.buckets[b].push(e);
                self.in_year += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Rebuild with `n` buckets, re-calibrating the width from the live
    /// population and re-anchoring at its minimum time. The emptied bucket
    /// vectors are recycled, so a rebuild moves entries but rarely allocates.
    fn rebuild(&mut self, n: usize) {
        let n = n.clamp(MIN_BUCKETS, MAX_BUCKETS).next_power_of_two();
        let mut all: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.append(b);
        }
        all.append(&mut self.ladder);
        debug_assert_eq!(all.len(), self.len);

        // Width heuristic: spread the population's span over the buckets so
        // steady-state occupancy is ~1 event per bucket, biased two buckets
        // wide so jitter around the mean gap stays in-bucket.
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &(t, _, _) in &all {
            lo = lo.min(t);
            hi = hi.max(t);
        }
        let span = hi.saturating_sub(lo);
        let per_bucket = (span / (all.len().max(1) as u64)).saturating_mul(2).max(1);
        self.shift = (63 - per_bucket.leading_zeros().min(62)).clamp(MIN_SHIFT, MAX_SHIFT);

        // `append` above emptied every vector but kept its capacity; recycle
        // them instead of allocating a fresh bucket array.
        if n < self.buckets.len() {
            self.buckets.truncate(n);
        } else {
            self.buckets.resize_with(n, Vec::new);
        }
        self.mask = n - 1;
        self.in_year = 0;
        self.cursor_sorted = false;
        let anchor = if lo == u64::MAX { 0 } else { lo };
        self.bucket_start = (anchor >> self.shift) << self.shift;
        self.cursor = self.bucket_of(anchor);
        self.year_end = self.bucket_start.saturating_add(self.year_len());
        for e in all {
            if e.0 < self.year_end {
                let b = self.bucket_of(e.0);
                self.buckets[b].push(e);
                self.in_year += 1;
            } else {
                self.ladder.push(e);
            }
        }
    }
}

impl<T> EventQueue<T> for CalendarQueue<T> {
    fn schedule(&mut self, at: SimTime, seq: u64, ev: T) {
        let t = at.as_nanos();
        if self.len == 0 {
            // Cheap re-anchor: park the empty calendar right at the event.
            self.bucket_start = (t >> self.shift) << self.shift;
            self.cursor = self.bucket_of(t);
            self.cursor_sorted = false;
            self.year_end = self.bucket_start.saturating_add(self.year_len());
        }
        self.len += 1;
        if t < self.bucket_start {
            // Behind the cursor: only adversarial schedules do this (engine
            // time is monotone). Re-anchor at the new minimum via a rebuild.
            self.buckets[0].push((t, seq, ev));
            self.in_year += 1; // transient; rebuild re-files everything
            self.rebuild(self.buckets.len());
            return;
        }
        if t >= self.year_end {
            self.spills += 1;
            self.ladder.push((t, seq, ev));
        } else {
            let b = self.bucket_of(t);
            if self.cursor_sorted && b == self.cursor {
                // Keep the settled bucket's descending order so its tail
                // stays the minimum: binary-insert ((t, seq) keys are unique).
                let v = &mut self.buckets[b];
                let pos = v.partition_point(|&(et, es, _)| (et, es) > (t, seq));
                v.insert(pos, (t, seq, ev));
            } else {
                self.buckets[b].push((t, seq, ev));
            }
            self.in_year += 1;
        }
        if self.len > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        let (t, s, ev) = if self.in_year > 0 {
            self.settle_cursor();
            self.pop_cursor()
        } else {
            let (pos, _) = self.ladder_min();
            self.pop_ladder(pos)
        };
        self.maybe_shrink();
        Some((SimTime::from_nanos(t), s, ev))
    }

    fn pop_at_or_before(&mut self, bound: SimTime) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        let (t, s, ev) = if self.in_year > 0 {
            self.settle_cursor();
            let &(t, _, _) = self.buckets[self.cursor].last().expect("settled bucket non-empty");
            if t > bound.as_nanos() {
                return None;
            }
            self.pop_cursor()
        } else {
            let (pos, t) = self.ladder_min();
            if t > bound.as_nanos() {
                return None;
            }
            self.pop_ladder(pos)
        };
        self.maybe_shrink();
        Some((SimTime::from_nanos(t), s, ev))
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.in_year > 0 {
            // Settled cursor: the bucket tail is the minimum. Otherwise scan
            // from the cursor; `in_year > 0` guarantees a non-empty bucket
            // within one lap (see the type docs).
            if self.cursor_sorted && !self.buckets[self.cursor].is_empty() {
                return self.buckets[self.cursor].last().map(|&(t, _, _)| SimTime::from_nanos(t));
            }
            let mut idx = self.cursor;
            loop {
                if let Some(&(t, _, _)) = self.buckets[idx].iter().min_by_key(|&&(t, s, _)| (t, s))
                {
                    return Some(SimTime::from_nanos(t));
                }
                idx = (idx + 1) & self.mask;
            }
        }
        self.ladder.iter().map(|&(t, _, _)| t).min().map(SimTime::from_nanos)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reserve_events(&mut self, expected: usize) {
        let n = expected.clamp(MIN_BUCKETS, MAX_BUCKETS).next_power_of_two();
        if n > self.buckets.len() {
            self.rebuild(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, s, v)) = q.pop() {
            out.push((t.as_nanos(), s, v));
        }
        out
    }

    /// Feed the same schedule to the calendar and the heap oracle, popping
    /// (optionally time-bounded) every `pop_every` pushes, and assert every
    /// observation matches.
    fn differential(schedule: &[(u64, Option<u64>)], pop_every: usize) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for (i, &(t, bound)) in schedule.iter().enumerate() {
            let seq = i as u64;
            cal.schedule(SimTime::from_nanos(t), seq, i as u32);
            heap.schedule(SimTime::from_nanos(t), seq, i as u32);
            assert_eq!(cal.peek_time(), heap.peek_time(), "peek after push {i}");
            if i % pop_every == 0 {
                let got = match bound {
                    Some(b) => cal.pop_at_or_before(SimTime::from_nanos(b)),
                    None => cal.pop(),
                };
                let want = match bound {
                    Some(b) => heap.pop_at_or_before(SimTime::from_nanos(b)),
                    None => heap.pop(),
                };
                assert_eq!(got, want, "pop {i} diverged");
                assert_eq!(cal.len(), heap.len());
            }
        }
        assert_eq!(drain(&mut cal), drain(&mut heap), "drain diverged");
        assert!(cal.is_empty() && heap.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop_at_or_before(SimTime::from_secs(1)), None);
    }

    #[test]
    fn same_timestamp_ties_pop_in_seq_order() {
        let mut q = CalendarQueue::new();
        for seq in [5u64, 1, 9, 3] {
            q.schedule(SimTime::from_millis(7), seq, seq as u32);
        }
        let seqs: Vec<u64> = drain(&mut q).into_iter().map(|(_, s, _)| s).collect();
        assert_eq!(seqs, vec![1, 3, 5, 9]);
    }

    #[test]
    fn far_future_ladder_spill_and_jump() {
        let mut q = CalendarQueue::new();
        // One near event, one days beyond any initial year.
        q.schedule(SimTime::from_millis(1), 0, 10);
        q.schedule(SimTime::from_secs(86_400), 1, 20);
        assert!(q.ladder_spills() >= 1, "far event must spill to the ladder");
        assert_eq!(q.pop().unwrap().2, 10);
        // The far event forces a jump, not a million empty-bucket walks.
        assert_eq!(q.pop().unwrap().2, 20);
        assert!(q.rollovers() >= 1);
        assert!(q.is_empty());
    }

    #[test]
    fn push_behind_cursor_is_still_ordered() {
        let mut q = CalendarQueue::new();
        for i in 0..64u64 {
            q.schedule(SimTime::from_millis(100 + i), i, i as u32);
        }
        // Drain half, parking the cursor mid-calendar…
        for _ in 0..32 {
            q.pop();
        }
        // …then schedule before the cursor (adversarial: the engine never
        // rewinds time). Order must survive.
        q.schedule(SimTime::from_nanos(5), 1000, 999);
        let first = q.pop().unwrap();
        assert_eq!((first.0.as_nanos(), first.2), (5, 999));
        // 64 scheduled − 32 drained + 1 late arrival − 1 popped.
        assert_eq!(q.len(), 32);
    }

    #[test]
    fn bounded_pop_respects_bound_without_disturbing_state() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_millis(10), 0, 1);
        assert_eq!(q.pop_at_or_before(SimTime::from_millis(9)), None);
        assert_eq!(q.len(), 1);
        let (t, _, v) = q.pop_at_or_before(SimTime::from_millis(10)).unwrap();
        assert_eq!((t, v), (SimTime::from_millis(10), 1));
    }

    #[test]
    fn grows_and_shrinks_with_population() {
        let mut q = CalendarQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_micros(i * 17), i, i as u32);
        }
        assert!(q.bucket_count() > MIN_BUCKETS, "deep queue must grow buckets");
        let drained = drain(&mut q);
        assert_eq!(drained.len(), 10_000);
        assert!(drained.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        assert_eq!(q.bucket_count(), MIN_BUCKETS, "empty queue must shrink back");
    }

    #[test]
    fn reserve_events_presizes_buckets() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.reserve_events(5_000);
        assert!(q.bucket_count() >= 5_000usize.next_power_of_two() / 2);
        // And the hint never shrinks an already-larger calendar.
        let before = q.bucket_count();
        q.reserve_events(16);
        assert_eq!(q.bucket_count(), before);
    }

    #[test]
    fn rollover_at_bucket_width_boundaries() {
        let mut q = CalendarQueue::with_buckets(MIN_BUCKETS, MIN_SHIFT);
        let width = 1u64 << MIN_SHIFT;
        let year = width * MIN_BUCKETS as u64;
        // Events exactly on bucket and year boundaries, several years deep.
        let mut expect = Vec::new();
        for (i, &t) in [0, width - 1, width, year - 1, year, year + width, 3 * year, 3 * year + 1]
            .iter()
            .enumerate()
        {
            q.schedule(SimTime::from_nanos(t), i as u64, i as u32);
            expect.push((t, i as u64, i as u32));
        }
        expect.sort_unstable();
        assert_eq!(drain(&mut q), expect);
    }

    proptest! {
        /// Random schedules: the calendar matches the heap oracle
        /// observation-for-observation.
        #[test]
        fn calendar_matches_heap_oracle_random(
            times in proptest::collection::vec(0u64..5_000_000_000, 1..300),
            pop_every in 1usize..5,
        ) {
            let schedule: Vec<(u64, Option<u64>)> = times.into_iter().map(|t| (t, None)).collect();
            differential(&schedule, pop_every);
        }

        /// Adversarial schedules: heavy timestamp ties, far-future spikes
        /// that spill to the ladder, and bounded pops at arbitrary bounds.
        #[test]
        fn calendar_matches_heap_oracle_adversarial(
            raw in proptest::collection::vec((0u64..50, 0u64..4, 0u64..2_000_000), 1..300),
            pop_every in 1usize..4,
        ) {
            let schedule: Vec<(u64, Option<u64>)> = raw
                .into_iter()
                .map(|(tie, kind, far)| {
                    // kind 0: clustered ties; 1: far-future spike; 2-3: mid.
                    let t = match kind {
                        0 => tie,                         // dense ties at tiny times
                        1 => 10_000_000_000 + far * 997,  // ladder territory
                        _ => far,
                    };
                    (t, (kind == 3).then_some(far / 2))
                })
                .collect();
            differential(&schedule, pop_every);
        }
    }
}
