//! Piecewise-constant power timelines and exact energy integration.
//!
//! Every simulated device appends `(instant, watts)` breakpoints to its
//! [`PowerTimeline`] as its power state changes; the timeline is the ground
//! truth the power-analyzer emulation (crate `tracer-power`) samples and
//! integrates. Because the timeline is exact, measured energy is free of
//! sampling error — the sampled meter view adds that error back on purpose.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A piecewise-constant power signal: breakpoints of `(time, watts)`.
///
/// The signal holds `points[i].1` watts from `points[i].0` until
/// `points[i+1].0`. Timelines always start at `t = 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTimeline {
    points: Vec<(SimTime, f64)>,
}

impl PowerTimeline {
    /// New timeline holding `initial_watts` from t = 0.
    pub fn new(initial_watts: f64) -> Self {
        Self { points: vec![(SimTime::ZERO, initial_watts)] }
    }

    /// Record that the signal changes to `watts` at `at`. Breakpoints must be
    /// appended in non-decreasing time order; a breakpoint at the same instant
    /// as the previous one replaces it.
    pub fn set(&mut self, at: SimTime, watts: f64) {
        let last = self.points.last_mut().expect("timeline is never empty");
        debug_assert!(at >= last.0, "power breakpoints must be time-ordered");
        if last.0 == at {
            last.1 = watts;
            // Collapse with the segment before if the level did not change.
            if self.points.len() >= 2 {
                let prev = self.points[self.points.len() - 2].1;
                if (prev - watts).abs() < f64::EPSILON {
                    self.points.pop();
                }
            }
        } else if (last.1 - watts).abs() >= f64::EPSILON {
            self.points.push((at, watts));
        }
    }

    /// Power level at instant `t` (the signal is right-continuous).
    pub fn watts_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by(|p| p.0.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Exact energy in joules over `[from, to)`.
    pub fn energy_joules(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut total = 0.0;
        // Index of the segment containing `from`.
        let mut i = match self.points.binary_search_by(|p| p.0.cmp(&from)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let mut cursor = from;
        while cursor < to {
            let seg_end = self.points.get(i + 1).map_or(to, |p| p.0.min(to));
            if seg_end > cursor {
                total += self.points[i].1 * (seg_end - cursor).as_secs_f64();
                cursor = seg_end;
            }
            i += 1;
            if i >= self.points.len() && cursor < to {
                // Signal extends at its last level.
                total += self.points[self.points.len() - 1].1 * (to - cursor).as_secs_f64();
                break;
            }
        }
        total
    }

    /// Mean power in watts over `[from, to)`; zero-length windows yield the
    /// instantaneous level.
    pub fn avg_watts(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return self.watts_at(from);
        }
        self.energy_joules(from, to) / (to - from).as_secs_f64()
    }

    /// Number of breakpoints (for memory accounting).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Timelines are never empty, but the standard pairing is provided.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Raw breakpoints.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }
}

/// The power view of a whole array: a constant chassis draw (controller, fan,
/// motherboard — the paper's "non-disk components", §VI-A) plus one timeline
/// per device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrayPowerLog {
    /// Constant non-disk power in watts.
    pub chassis_watts: f64,
    /// Per-device power timelines.
    pub devices: Vec<PowerTimeline>,
}

impl ArrayPowerLog {
    /// New log for `n` devices, each starting at its idle level.
    pub fn new(chassis_watts: f64, device_idle_watts: &[f64]) -> Self {
        Self {
            chassis_watts,
            devices: device_idle_watts.iter().map(|&w| PowerTimeline::new(w)).collect(),
        }
    }

    /// Total array power at instant `t`.
    pub fn total_watts_at(&self, t: SimTime) -> f64 {
        self.chassis_watts + self.devices.iter().map(|d| d.watts_at(t)).sum::<f64>()
    }

    /// Exact total energy in joules over `[from, to)`.
    pub fn energy_joules(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let span = (to - from).as_secs_f64();
        self.chassis_watts * span
            + self.devices.iter().map(|d| d.energy_joules(from, to)).sum::<f64>()
    }

    /// Mean total power over `[from, to)`.
    pub fn avg_watts(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return self.total_watts_at(from);
        }
        self.energy_joules(from, to) / (to - from).as_secs_f64()
    }

    /// Duration-weighted breakdown: (chassis joules, per-device joules).
    pub fn energy_breakdown(&self, from: SimTime, to: SimTime) -> (f64, Vec<f64>) {
        let span = (to.saturating_since(from)).as_secs_f64();
        (
            self.chassis_watts * span,
            self.devices.iter().map(|d| d.energy_joules(from, to)).collect(),
        )
    }
}

/// Convenience: watts → joules over a duration.
pub fn joules(watts: f64, dur: SimDuration) -> f64 {
    watts * dur.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_signal_integrates_linearly() {
        let tl = PowerTimeline::new(5.0);
        assert_eq!(tl.watts_at(SimTime::from_secs(100)), 5.0);
        let e = tl.energy_joules(SimTime::ZERO, SimTime::from_secs(10));
        assert!((e - 50.0).abs() < 1e-9);
        assert!((tl.avg_watts(SimTime::ZERO, SimTime::from_secs(10)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn step_signal_integration() {
        let mut tl = PowerTimeline::new(5.0);
        tl.set(SimTime::from_secs(1), 10.0);
        tl.set(SimTime::from_secs(2), 5.0);
        // [0,1): 5W, [1,2): 10W, [2,3): 5W
        let e = tl.energy_joules(SimTime::ZERO, SimTime::from_secs(3));
        assert!((e - 20.0).abs() < 1e-9);
        // Partial windows.
        let e = tl.energy_joules(SimTime::from_millis(500), SimTime::from_millis(1500));
        assert!((e - (0.5 * 5.0 + 0.5 * 10.0)).abs() < 1e-9);
        assert_eq!(tl.watts_at(SimTime::from_millis(999)), 5.0);
        assert_eq!(tl.watts_at(SimTime::from_secs(1)), 10.0);
        assert_eq!(tl.watts_at(SimTime::from_millis(2500)), 5.0);
    }

    #[test]
    fn same_instant_set_replaces_and_collapses() {
        let mut tl = PowerTimeline::new(5.0);
        tl.set(SimTime::from_secs(1), 10.0);
        tl.set(SimTime::from_secs(1), 5.0); // back to previous level -> collapse
        assert_eq!(tl.len(), 1);
        tl.set(SimTime::from_secs(2), 5.0); // no-op: same level
        assert_eq!(tl.len(), 1);
    }

    #[test]
    fn window_outside_breakpoints_extends_last_level() {
        let mut tl = PowerTimeline::new(1.0);
        tl.set(SimTime::from_secs(1), 3.0);
        let e = tl.energy_joules(SimTime::from_secs(5), SimTime::from_secs(7));
        assert!((e - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_or_inverted_window() {
        let tl = PowerTimeline::new(2.0);
        assert_eq!(tl.energy_joules(SimTime::from_secs(3), SimTime::from_secs(3)), 0.0);
        assert_eq!(tl.energy_joules(SimTime::from_secs(4), SimTime::from_secs(3)), 0.0);
        assert_eq!(tl.avg_watts(SimTime::from_secs(3), SimTime::from_secs(3)), 2.0);
    }

    #[test]
    fn array_log_totals() {
        let mut log = ArrayPowerLog::new(16.0, &[5.0, 5.0]);
        log.devices[0].set(SimTime::from_secs(1), 11.0);
        log.devices[0].set(SimTime::from_secs(2), 5.0);
        assert!((log.total_watts_at(SimTime::ZERO) - 26.0).abs() < 1e-12);
        assert!((log.total_watts_at(SimTime::from_millis(1500)) - 32.0).abs() < 1e-12);
        let e = log.energy_joules(SimTime::ZERO, SimTime::from_secs(3));
        // chassis 48 + dev0 (5+11+5) + dev1 15
        assert!((e - (48.0 + 21.0 + 15.0)).abs() < 1e-9);
        let (chassis, devs) = log.energy_breakdown(SimTime::ZERO, SimTime::from_secs(3));
        assert!((chassis - 48.0).abs() < 1e-9);
        assert!((devs[0] - 21.0).abs() < 1e-9);
        assert!((log.avg_watts(SimTime::ZERO, SimTime::from_secs(3)) - 28.0).abs() < 1e-9);
    }

    #[test]
    fn joules_helper() {
        assert!((joules(10.0, SimDuration::from_millis(500)) - 5.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_energy_is_additive(
            levels in proptest::collection::vec(0.0f64..100.0, 1..20),
            split_ms in 1u64..10_000,
        ) {
            let mut tl = PowerTimeline::new(levels[0]);
            for (i, &w) in levels.iter().enumerate().skip(1) {
                tl.set(SimTime::from_millis(i as u64 * 700), w);
            }
            let end = SimTime::from_millis(20_000);
            let mid = SimTime::from_millis(split_ms.min(19_999));
            let whole = tl.energy_joules(SimTime::ZERO, end);
            let parts = tl.energy_joules(SimTime::ZERO, mid) + tl.energy_joules(mid, end);
            prop_assert!((whole - parts).abs() < 1e-6);
        }

        #[test]
        fn prop_energy_bounded_by_extremes(
            levels in proptest::collection::vec(0.0f64..100.0, 1..20),
        ) {
            let mut tl = PowerTimeline::new(levels[0]);
            for (i, &w) in levels.iter().enumerate().skip(1) {
                tl.set(SimTime::from_millis(i as u64 * 100), w);
            }
            let end = SimTime::from_millis(levels.len() as u64 * 100);
            let min = levels.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = levels.iter().cloned().fold(0.0, f64::max);
            let avg = tl.avg_watts(SimTime::ZERO, end);
            prop_assert!(avg >= min - 1e-9 && avg <= max + 1e-9);
        }
    }
}
