//! Ready-made array configurations matching the paper's testbed (Table II).
//!
//! * HDD array: RAID-5 over up to six Seagate 7200.12 500 GB drives,
//!   128 KB strip, controller cache disabled, 4 Gbps fibre channel.
//! * SSD array: RAID-5 over four Memoright 32 GB SLC drives, 128 KB strip.
//!
//! Chassis power is a spec-derived constant (controller + fan + backplane);
//! see DESIGN.md for the calibration notes, including the deliberate deviation
//! from the paper's reported 195.8 W SSD-array idle figure.
//!
//! These constructors are deprecated shims over [`crate::spec::ArraySpec`],
//! the single builder shared by code and scenario files; each is pinned
//! bit-identical to its `ArraySpec` equivalent by a test below. New code and
//! scenario files should name configurations through `ArraySpec` directly.

use crate::array::{ArrayConfig, ArraySim};
use crate::device::Device;
use crate::spec::ArraySpec;

/// Non-disk ("chassis") power of the simulated enclosure, watts. Chosen so
/// that disk power overtakes chassis power once the array holds more than
/// three drives, as the paper observes in §VI-A.
pub const CHASSIS_WATTS: f64 = 16.0;

/// Payload rate of the 4 Gbps fibre-channel host link, MB/s.
pub const FC_LINK_MBPS: f64 = 400.0;

/// Controller command overhead per request, microseconds.
pub const CONTROLLER_OVERHEAD_US: f64 = 120.0;

/// Controller XOR engine rate, MB/s.
pub const XOR_MBPS: f64 = 1500.0;

/// Configuration and members of the HDD testbed, for callers that mutate the
/// config (policies, ablations) before building the simulator.
#[deprecated(note = "use ArraySpec::hdd_raid5(disks).parts()")]
pub fn hdd_raid5_parts(disks: usize) -> (ArrayConfig, Vec<Device>) {
    ArraySpec::hdd_raid5(disks).parts()
}

/// The paper's HDD testbed: RAID-5 over `disks` Seagate 7200.12 drives.
#[deprecated(note = "use ArraySpec::hdd_raid5(disks).build()")]
pub fn hdd_raid5(disks: usize) -> ArraySim {
    ArraySpec::hdd_raid5(disks).build()
}

/// Configuration and members of the SSD testbed (see [`hdd_raid5_parts`]).
#[deprecated(note = "use ArraySpec::ssd_raid5(disks).parts()")]
pub fn ssd_raid5_parts(disks: usize) -> (ArrayConfig, Vec<Device>) {
    ArraySpec::ssd_raid5(disks).parts()
}

/// The paper's SSD testbed: RAID-5 over `disks` Memoright 32 GB SLC drives.
#[deprecated(note = "use ArraySpec::ssd_raid5(disks).build()")]
pub fn ssd_raid5(disks: usize) -> ArraySim {
    ArraySpec::ssd_raid5(disks).build()
}

/// An enclosure populated with `disks` idle HDDs and no redundancy scheme —
/// used for the idle-power-versus-disk-count experiment (Fig. 7), including
/// the zero-disk chassis-only case.
#[deprecated(note = "use ArraySpec::hdd_idle(disks).build()")]
pub fn hdd_array_idle(disks: usize) -> ArraySim {
    ArraySpec::hdd_idle(disks).build()
}

/// RAID-10 (mirrored striping) over `disks` desktop HDDs.
#[deprecated(note = "use ArraySpec::hdd_raid10(disks).build()")]
pub fn hdd_raid10(disks: usize) -> ArraySim {
    ArraySpec::hdd_raid10(disks).build()
}

/// RAID-0 (no redundancy) over `disks` desktop HDDs — the throughput
/// baseline redundancy costs are measured against.
#[deprecated(note = "use ArraySpec::hdd_raid0(disks).build()")]
pub fn hdd_raid0(disks: usize) -> ArraySim {
    ArraySpec::hdd_raid0(disks).build()
}

/// RAID-5 over `disks` 15 000 rpm enterprise SAS drives.
#[deprecated(note = "use ArraySpec::enterprise15k_raid5(disks).build()")]
pub fn enterprise15k_raid5(disks: usize) -> ArraySim {
    ArraySpec::enterprise15k_raid5(disks).build()
}

/// RAID-5 over `disks` 5 400 rpm power-economy drives.
#[deprecated(note = "use ArraySpec::eco_raid5(disks).build()")]
pub fn eco_raid5(disks: usize) -> ArraySim {
    ArraySpec::eco_raid5(disks).build()
}

/// RAID-5 over `disks` consumer MLC SSDs.
#[deprecated(note = "use ArraySpec::mlc_raid5(disks).build()")]
pub fn mlc_raid5(disks: usize) -> ArraySim {
    ArraySpec::mlc_raid5(disks).build()
}

/// A single-HDD pass-through target (for baselines and unit experiments).
#[deprecated(note = "use ArraySpec::single_hdd().build()")]
pub fn single_hdd() -> ArraySim {
    ArraySpec::single_hdd().build()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::time::SimTime;

    #[test]
    fn idle_power_grows_linearly_with_disks() {
        let mut previous = 0.0;
        for n in 0..=6 {
            let sim = hdd_array_idle(n);
            let w = sim.power_log().total_watts_at(SimTime::from_secs(1));
            assert!((w - (CHASSIS_WATTS + n as f64 * 5.0)).abs() < 1e-9);
            assert!(w > previous);
            previous = w;
        }
    }

    #[test]
    fn disks_dominate_beyond_three() {
        // The paper: "when the number of disks exceeds three, power
        // consumption of disks dominates the total power dissipation".
        let disk_w = |n: usize| n as f64 * 5.0;
        assert!(disk_w(3) < CHASSIS_WATTS);
        assert!(disk_w(4) > CHASSIS_WATTS);
    }

    #[test]
    fn ssd_array_idle_power() {
        let sim = ssd_raid5(4);
        let w = sim.power_log().total_watts_at(SimTime::ZERO);
        assert!((w - (CHASSIS_WATTS + 4.0 * 3.5)).abs() < 1e-9);
    }

    #[test]
    fn generation_presets_build_and_idle_in_order() {
        let eco = eco_raid5(4).power_log().total_watts_at(SimTime::ZERO);
        let desktop = hdd_raid5(4).power_log().total_watts_at(SimTime::ZERO);
        let fast = enterprise15k_raid5(4).power_log().total_watts_at(SimTime::ZERO);
        let mlc = mlc_raid5(4).power_log().total_watts_at(SimTime::ZERO);
        assert!(mlc < eco && eco < desktop && desktop < fast);
    }

    #[test]
    fn single_hdd_capacity() {
        let sim = single_hdd();
        assert_eq!(sim.devices().len(), 1);
        assert!(sim.data_capacity_sectors() <= sim.devices()[0].capacity_sectors());
        assert!(sim.data_capacity_sectors() > 900_000_000);
    }

    /// Pin: every deprecated shim is bit-identical to its `ArraySpec`
    /// equivalent — same config, same members, same initial power state.
    /// Mirrors the PR 5 `SweepBuilder` shim pins.
    #[test]
    fn shims_are_bit_identical_to_array_spec() {
        type Parts = (ArrayConfig, Vec<Device>);
        let pairs: Vec<(Parts, Parts)> = vec![
            (hdd_raid5_parts(6), ArraySpec::hdd_raid5(6).parts()),
            (ssd_raid5_parts(4), ArraySpec::ssd_raid5(4).parts()),
        ];
        for (old, new) in pairs {
            assert_eq!(format!("{old:?}"), format!("{new:?}"));
        }
        let sims: Vec<(ArraySim, ArraySim)> = vec![
            (hdd_raid5(6), ArraySpec::hdd_raid5(6).build()),
            (ssd_raid5(4), ArraySpec::ssd_raid5(4).build()),
            (hdd_array_idle(3), ArraySpec::hdd_idle(3).build()),
            (hdd_raid10(4), ArraySpec::hdd_raid10(4).build()),
            (hdd_raid0(3), ArraySpec::hdd_raid0(3).build()),
            (enterprise15k_raid5(4), ArraySpec::enterprise15k_raid5(4).build()),
            (eco_raid5(4), ArraySpec::eco_raid5(4).build()),
            (mlc_raid5(4), ArraySpec::mlc_raid5(4).build()),
            (single_hdd(), ArraySpec::single_hdd().build()),
        ];
        for (old, new) in &sims {
            assert_eq!(format!("{:?}", old.config()), format!("{:?}", new.config()));
            assert_eq!(
                old.power_log().total_watts_at(SimTime::ZERO),
                new.power_log().total_watts_at(SimTime::ZERO)
            );
            assert_eq!(old.devices().len(), new.devices().len());
        }
    }
}
