//! Ready-made array configurations matching the paper's testbed (Table II).
//!
//! * HDD array: RAID-5 over up to six Seagate 7200.12 500 GB drives,
//!   128 KB strip, controller cache disabled, 4 Gbps fibre channel.
//! * SSD array: RAID-5 over four Memoright 32 GB SLC drives, 128 KB strip.
//!
//! Chassis power is a spec-derived constant (controller + fan + backplane);
//! see DESIGN.md for the calibration notes, including the deliberate deviation
//! from the paper's reported 195.8 W SSD-array idle figure.

use crate::array::{ArrayConfig, ArraySim, QueueDiscipline};
use crate::device::Device;
use crate::hdd::{HddModel, HddParams};
use crate::raid::Geometry;
use crate::ssd::{SsdModel, SsdParams};

/// Non-disk ("chassis") power of the simulated enclosure, watts. Chosen so
/// that disk power overtakes chassis power once the array holds more than
/// three drives, as the paper observes in §VI-A.
pub const CHASSIS_WATTS: f64 = 16.0;

/// Payload rate of the 4 Gbps fibre-channel host link, MB/s.
pub const FC_LINK_MBPS: f64 = 400.0;

/// Controller command overhead per request, microseconds.
pub const CONTROLLER_OVERHEAD_US: f64 = 120.0;

/// Controller XOR engine rate, MB/s.
pub const XOR_MBPS: f64 = 1500.0;

fn base_config(name: &str, geometry: Geometry) -> ArrayConfig {
    ArrayConfig {
        name: name.to_string(),
        geometry,
        chassis_watts: CHASSIS_WATTS,
        link_mbps: FC_LINK_MBPS,
        controller_overhead_us: CONTROLLER_OVERHEAD_US,
        xor_mbps: XOR_MBPS,
        queue_discipline: QueueDiscipline::Fifo,
        spin_down_after: None,
        cache: None,
    }
}

/// Configuration and members of the HDD testbed, for callers that mutate the
/// config (policies, ablations) before building the simulator.
pub fn hdd_raid5_parts(disks: usize) -> (ArrayConfig, Vec<Device>) {
    let devices = (0..disks)
        .map(|_| Device::Hdd(HddModel::new(HddParams::seagate_7200_12_500gb())))
        .collect();
    (base_config(&format!("raid5-hdd{disks}"), Geometry::raid5(disks)), devices)
}

/// The paper's HDD testbed: RAID-5 over `disks` Seagate 7200.12 drives.
pub fn hdd_raid5(disks: usize) -> ArraySim {
    let (cfg, devices) = hdd_raid5_parts(disks);
    ArraySim::new(cfg, devices)
}

/// Configuration and members of the SSD testbed (see [`hdd_raid5_parts`]).
pub fn ssd_raid5_parts(disks: usize) -> (ArrayConfig, Vec<Device>) {
    let devices =
        (0..disks).map(|_| Device::Ssd(SsdModel::new(SsdParams::memoright_slc_32gb()))).collect();
    (base_config(&format!("raid5-ssd{disks}"), Geometry::raid5(disks)), devices)
}

/// The paper's SSD testbed: RAID-5 over `disks` Memoright 32 GB SLC drives.
pub fn ssd_raid5(disks: usize) -> ArraySim {
    let (cfg, devices) = ssd_raid5_parts(disks);
    ArraySim::new(cfg, devices)
}

/// An enclosure populated with `disks` idle HDDs and no redundancy scheme —
/// used for the idle-power-versus-disk-count experiment (Fig. 7), including
/// the zero-disk chassis-only case.
pub fn hdd_array_idle(disks: usize) -> ArraySim {
    let devices = (0..disks)
        .map(|_| Device::Hdd(HddModel::new(HddParams::seagate_7200_12_500gb())))
        .collect();
    ArraySim::new(base_config(&format!("idle-hdd{disks}"), Geometry::raid0(disks)), devices)
}

/// RAID-10 (mirrored striping) over `disks` desktop HDDs.
pub fn hdd_raid10(disks: usize) -> ArraySim {
    let devices = (0..disks)
        .map(|_| Device::Hdd(HddModel::new(HddParams::seagate_7200_12_500gb())))
        .collect();
    ArraySim::new(base_config(&format!("raid10-hdd{disks}"), Geometry::raid10(disks)), devices)
}

/// RAID-0 (no redundancy) over `disks` desktop HDDs — the throughput
/// baseline redundancy costs are measured against.
pub fn hdd_raid0(disks: usize) -> ArraySim {
    let devices = (0..disks)
        .map(|_| Device::Hdd(HddModel::new(HddParams::seagate_7200_12_500gb())))
        .collect();
    ArraySim::new(base_config(&format!("raid0-hdd{disks}"), Geometry::raid0(disks)), devices)
}

/// RAID-5 over `disks` 15 000 rpm enterprise SAS drives.
pub fn enterprise15k_raid5(disks: usize) -> ArraySim {
    let devices =
        (0..disks).map(|_| Device::Hdd(HddModel::new(HddParams::enterprise_15k_600gb()))).collect();
    ArraySim::new(base_config(&format!("raid5-15k{disks}"), Geometry::raid5(disks)), devices)
}

/// RAID-5 over `disks` 5 400 rpm power-economy drives.
pub fn eco_raid5(disks: usize) -> ArraySim {
    let devices =
        (0..disks).map(|_| Device::Hdd(HddModel::new(HddParams::eco_5400_2tb()))).collect();
    ArraySim::new(base_config(&format!("raid5-eco{disks}"), Geometry::raid5(disks)), devices)
}

/// RAID-5 over `disks` consumer MLC SSDs.
pub fn mlc_raid5(disks: usize) -> ArraySim {
    let devices =
        (0..disks).map(|_| Device::Ssd(SsdModel::new(SsdParams::mlc_consumer_128gb()))).collect();
    ArraySim::new(base_config(&format!("raid5-mlc{disks}"), Geometry::raid5(disks)), devices)
}

/// A single-HDD pass-through target (for baselines and unit experiments).
pub fn single_hdd() -> ArraySim {
    let devices = vec![Device::Hdd(HddModel::new(HddParams::seagate_7200_12_500gb()))];
    ArraySim::new(base_config("single-hdd", Geometry::raid0(1)), devices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::time::SimTime;

    #[test]
    fn idle_power_grows_linearly_with_disks() {
        let mut previous = 0.0;
        for n in 0..=6 {
            let sim = hdd_array_idle(n);
            let w = sim.power_log().total_watts_at(SimTime::from_secs(1));
            assert!((w - (CHASSIS_WATTS + n as f64 * 5.0)).abs() < 1e-9);
            assert!(w > previous);
            previous = w;
        }
    }

    #[test]
    fn disks_dominate_beyond_three() {
        // The paper: "when the number of disks exceeds three, power
        // consumption of disks dominates the total power dissipation".
        let disk_w = |n: usize| n as f64 * 5.0;
        assert!(disk_w(3) < CHASSIS_WATTS);
        assert!(disk_w(4) > CHASSIS_WATTS);
    }

    #[test]
    fn ssd_array_idle_power() {
        let sim = ssd_raid5(4);
        let w = sim.power_log().total_watts_at(SimTime::ZERO);
        assert!((w - (CHASSIS_WATTS + 4.0 * 3.5)).abs() < 1e-9);
    }

    #[test]
    fn generation_presets_build_and_idle_in_order() {
        let eco = eco_raid5(4).power_log().total_watts_at(SimTime::ZERO);
        let desktop = hdd_raid5(4).power_log().total_watts_at(SimTime::ZERO);
        let fast = enterprise15k_raid5(4).power_log().total_watts_at(SimTime::ZERO);
        let mlc = mlc_raid5(4).power_log().total_watts_at(SimTime::ZERO);
        assert!(mlc < eco && eco < desktop && desktop < fast);
    }

    #[test]
    fn single_hdd_capacity() {
        let sim = single_hdd();
        assert_eq!(sim.devices().len(), 1);
        assert!(sim.data_capacity_sectors() <= sim.devices()[0].capacity_sectors());
        assert!(sim.data_capacity_sectors() > 900_000_000);
    }
}
