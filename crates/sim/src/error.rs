//! Simulator error type.

use crate::time::SimTime;
use std::fmt;

/// Errors raised by the array simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A request extends beyond the array's data capacity.
    OutOfRange {
        /// Requested starting sector.
        sector: u64,
        /// Requested length in sectors.
        sectors: u64,
        /// Array data capacity in sectors.
        capacity: u64,
    },
    /// A request was submitted with a timestamp earlier than the current
    /// simulation time.
    SubmitInPast {
        /// Requested submission instant.
        at: SimTime,
        /// Current simulation time.
        now: SimTime,
    },
    /// A zero-length request.
    EmptyRequest,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfRange { sector, sectors, capacity } => write!(
                f,
                "request [{sector}, {}) exceeds array capacity {capacity}",
                sector + sectors
            ),
            SimError::SubmitInPast { at, now } => {
                write!(f, "submission at {at} is in the past (now {now})")
            }
            SimError::EmptyRequest => write!(f, "request has zero length"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::OutOfRange { sector: 10, sectors: 5, capacity: 12 };
        assert!(e.to_string().contains("[10, 15)"));
        let e = SimError::SubmitInPast { at: SimTime::from_secs(1), now: SimTime::from_secs(2) };
        assert!(e.to_string().contains("past"));
        assert!(SimError::EmptyRequest.to_string().contains("zero"));
    }
}
