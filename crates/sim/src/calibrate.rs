//! Device-model calibration: measure a simulated drive like a lab would.
//!
//! The related work the paper builds on validates its models by measurement —
//! Dempsey "model\[s\] the power consumption of hard disks" by fitting observed
//! behaviour; Hylick et al. analyse drive energy "through measurements rather
//! than simulations". This module plays the measuring instrument against our
//! own device models: standard microbenchmarks (random-read latency,
//! sequential streaming, queue-depth scaling, idle/active power) run on a
//! single-device array, producing a [`CalibrationReport`] that the test suite
//! compares with spec-sheet expectations. When a device model is edited, the
//! calibration tests are the guard rail.

use crate::array::{ArrayConfig, ArrayRequest, ArraySim, QueueDiscipline};
use crate::device::Device;
use crate::raid::Geometry;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use tracer_trace::OpKind;

/// Measured characteristics of one device model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Mean service time of scattered 4 KiB reads, milliseconds.
    pub random_read_4k_ms: f64,
    /// Sequential large-read streaming rate, MB/s.
    pub sequential_read_mbps: f64,
    /// Sequential large-write streaming rate, MB/s.
    pub sequential_write_mbps: f64,
    /// Random 4 KiB read rate at queue depth 1, IO/s.
    pub random_read_iops_qd1: f64,
    /// Idle power, watts.
    pub idle_watts: f64,
    /// Mean power during the random-read phase, watts.
    pub active_random_watts: f64,
}

/// Wrap a single device in a pass-through array for measurement.
fn single(device: Device) -> ArraySim {
    let cfg = ArrayConfig {
        name: "calibration".to_string(),
        geometry: Geometry::raid0(1),
        chassis_watts: 0.0,   // measure the bare device
        link_mbps: 100_000.0, // link out of the way
        controller_overhead_us: 0.0,
        xor_mbps: 0.0,
        queue_discipline: QueueDiscipline::Fifo,
        spin_down_after: None,
        cache: None,
    };
    ArraySim::new(cfg, vec![device])
}

/// Run the calibration suite against a device model.
pub fn calibrate(device: Device) -> CalibrationReport {
    // Idle power: read the fresh timeline.
    let sim = single(device.clone_for_calibration());
    let idle_watts = sim.power_log().total_watts_at(SimTime::ZERO);

    // Random 4 KiB reads at queue depth 1 over a wide span.
    let mut sim = single(device.clone_for_calibration());
    let span = sim.data_capacity_sectors().saturating_sub(8).max(1);
    let n_random = 300u64;
    let random_start = sim.now();
    let mut t = sim.now();
    for i in 0..n_random {
        // Scatter deterministically over the span.
        let sector = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % span;
        sim.submit(t, ArrayRequest::new(sector, 4096, OpKind::Read)).unwrap();
        sim.run_to_idle();
        t = sim.now();
    }
    let random_span = sim.now() - random_start;
    let completions = sim.drain_completions();
    let random_read_4k_ms = completions.iter().map(|c| c.latency().as_millis_f64()).sum::<f64>()
        / completions.len().max(1) as f64;
    let random_read_iops_qd1 = n_random as f64 / random_span.as_secs_f64();
    let active_random_watts = sim.power_log().avg_watts(random_start, sim.now());

    // Sequential streaming, 1 MiB requests back to back.
    let stream = |kind: OpKind| -> f64 {
        let mut sim = single(device.clone_for_calibration());
        let mut sector = 0u64;
        let started = sim.now();
        for _ in 0..64 {
            sim.submit(sim.now(), ArrayRequest::new(sector, 1 << 20, kind)).unwrap();
            sim.run_to_idle();
            sector += 2048;
        }
        64.0 * (1u64 << 20) as f64 / 1e6 / (sim.now() - started).as_secs_f64()
    };

    CalibrationReport {
        random_read_4k_ms,
        sequential_read_mbps: stream(OpKind::Read),
        sequential_write_mbps: stream(OpKind::Write),
        random_read_iops_qd1,
        idle_watts,
        active_random_watts,
    }
}

impl Device {
    /// A fresh copy with reset dynamic state, for repeatable measurement
    /// phases.
    fn clone_for_calibration(&self) -> Device {
        match self {
            Device::Hdd(h) => Device::Hdd(crate::hdd::HddModel::new(h.params().clone())),
            Device::Ssd(s) => Device::Ssd(crate::ssd::SsdModel::new(s.params().clone())),
            Device::Nvme(n) => Device::Nvme(crate::nvme::NvmeModel::new(n.params().clone())),
            // The hybrid's dynamic state is its placement map; a plain clone
            // would carry it into the measurement. Rebuilding from a clone
            // and clearing via a fresh construction keeps phases repeatable.
            Device::Tiered(t) => Device::Tiered(t.clone_reset()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdd::{HddModel, HddParams};
    use crate::ssd::{SsdModel, SsdParams};

    fn hdd(params: HddParams) -> Device {
        Device::Hdd(HddModel::new(params))
    }

    #[test]
    fn desktop_drive_matches_its_spec_sheet() {
        let report = calibrate(hdd(HddParams::seagate_7200_12_500gb()));
        // Random 4K read on a 7200 rpm desktop drive: ~12-17 ms.
        assert!(
            (10.0..20.0).contains(&report.random_read_4k_ms),
            "random 4K {} ms",
            report.random_read_4k_ms
        );
        // QD1 IOPS is the reciprocal.
        assert!(
            (report.random_read_iops_qd1 - 1000.0 / report.random_read_4k_ms).abs() < 5.0,
            "IOPS {} vs latency {}",
            report.random_read_iops_qd1,
            report.random_read_4k_ms
        );
        // Sequential streaming approaches the outer-zone media rate.
        assert!(
            (100.0..126.0).contains(&report.sequential_read_mbps),
            "seq read {} MB/s",
            report.sequential_read_mbps
        );
        assert!(report.sequential_write_mbps <= report.sequential_read_mbps);
        // Power: 5 W idle; random I/O pulls the seek power in.
        assert!((report.idle_watts - 5.0).abs() < 1e-9);
        assert!(
            report.active_random_watts > 7.0 && report.active_random_watts < 11.5,
            "active {} W",
            report.active_random_watts
        );
    }

    #[test]
    fn enterprise_beats_desktop_beats_eco_on_latency() {
        let fast = calibrate(hdd(HddParams::enterprise_15k_600gb()));
        let mid = calibrate(hdd(HddParams::seagate_7200_12_500gb()));
        let slow = calibrate(hdd(HddParams::eco_5400_2tb()));
        assert!(fast.random_read_4k_ms < mid.random_read_4k_ms);
        assert!(mid.random_read_4k_ms < slow.random_read_4k_ms);
        assert!(fast.idle_watts > mid.idle_watts && mid.idle_watts > slow.idle_watts);
        assert!(fast.sequential_read_mbps > mid.sequential_read_mbps);
    }

    #[test]
    fn ssd_models_have_no_mechanical_latency() {
        let slc = calibrate(Device::Ssd(SsdModel::new(SsdParams::memoright_slc_32gb())));
        assert!(slc.random_read_4k_ms < 0.5, "SLC random 4K {} ms", slc.random_read_4k_ms);
        assert!(
            (100.0..125.0).contains(&slc.sequential_read_mbps),
            "SLC seq {} MB/s",
            slc.sequential_read_mbps
        );
        // The paper's SLC writes stream faster than its reads.
        assert!(slc.sequential_write_mbps > slc.sequential_read_mbps);
        let mlc = calibrate(Device::Ssd(SsdModel::new(SsdParams::mlc_consumer_128gb())));
        assert!(mlc.sequential_read_mbps > slc.sequential_read_mbps);
        assert!(mlc.idle_watts < slc.idle_watts);
    }

    #[test]
    fn derated_drive_calibrates_between_standby_and_nominal() {
        let nominal = calibrate(hdd(HddParams::seagate_7200_12_500gb()));
        let half = calibrate(hdd(HddParams::seagate_7200_12_500gb().derated(0.5)));
        assert!(half.idle_watts < nominal.idle_watts * 0.25);
        assert!(half.sequential_read_mbps < nominal.sequential_read_mbps * 0.55);
        assert!(half.random_read_4k_ms > nominal.random_read_4k_ms);
    }
}
