//! Struct-of-arrays store for in-flight request state.
//!
//! The DES dispatch loop touches a handful of scalar fields per event
//! (outstanding count, submit time, request geometry) and rarely the bulky
//! phase containers. The old slab (`Vec<Option<ReqState>>`) interleaved all of
//! it, so every event dragged a whole `ReqState` cache line in to read one
//! counter. Here each field lives in its own column indexed by the same
//! recycled [`Slot`] numbers the events carry, so the hot fields of
//! neighbouring in-flight requests pack contiguously and the phase deques —
//! cold until a phase boundary — stay out of the way.
//!
//! Retired slots keep their phase deque allocated, so steady-state traffic
//! reuses warm containers instead of allocating per arrival (this replaces
//! the old shared phase pool: retention is per-slot, bounded by the maximum
//! concurrency).
#![doc = "tracer-invariant: deterministic"]

use crate::array::{ArrayRequest, RequestId};
use crate::raid::DiskExtent;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use tracer_trace::OpKind;

/// Index of a request's columns. Slots are recycled, so a slot is only
/// meaningful while its request is in flight; the public monotone
/// [`RequestId`] lives in the `id` column.
pub(crate) type Slot = u32;

/// `flags` bit: the slot holds a live request.
pub(crate) const F_OCCUPIED: u8 = 1;
/// `flags` bit: internal traffic (rebuild jobs) — no host link, no completion.
pub(crate) const F_INTERNAL: u8 = 1 << 1;
/// `flags` bit: completion already reported (write-back ack); remaining
/// phases are background destage work.
pub(crate) const F_COMPLETED_EARLY: u8 = 1 << 2;

/// The SoA request store. Columns are `pub(crate)`: the array engine indexes
/// them directly on the event hot path (bounds checks aside, a column read is
/// one load from a dense array).
#[derive(Debug, Default)]
pub(crate) struct ReqStore {
    /// Public id handed out by `submit` (monotone for the simulator's life).
    pub(crate) id: Vec<RequestId>,
    /// Starting logical sector of the request.
    pub(crate) sector: Vec<u64>,
    /// Request length in bytes.
    pub(crate) bytes: Vec<u32>,
    /// Read or write.
    pub(crate) kind: Vec<OpKind>,
    /// Instant the request arrived at the array.
    pub(crate) submitted: Vec<SimTime>,
    /// Outstanding extents of the current phase.
    pub(crate) outstanding: Vec<u32>,
    /// XOR time not yet charged (spent at the phase boundary or on the
    /// completion path).
    pub(crate) xor_pending: Vec<SimDuration>,
    /// Bitmask of member disks touched by the current phase (disks ≥ 64 all
    /// share the top bit; the mask is advisory for lookahead/diagnostics).
    pub(crate) disk_mask: Vec<u64>,
    /// `F_*` bits.
    pub(crate) flags: Vec<u8>,
    /// Remaining phases, front first (cold: touched only at phase edges).
    pub(crate) phases: Vec<VecDeque<Vec<DiskExtent>>>,
    free: Vec<Slot>,
    live: usize,
}

impl ReqStore {
    /// File a new in-flight request and return its slot. The slot's phase
    /// deque is empty (freshly pushed or retained from the slot's previous
    /// occupant) — the caller fills it when the phases are planned.
    pub(crate) fn insert(
        &mut self,
        id: RequestId,
        req: ArrayRequest,
        submitted: SimTime,
        internal: bool,
    ) -> Slot {
        self.live += 1;
        let flags = F_OCCUPIED | if internal { F_INTERNAL } else { 0 };
        match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                debug_assert_eq!(self.flags[i] & F_OCCUPIED, 0, "insert into occupied slot");
                debug_assert!(self.phases[i].is_empty(), "retained phase deque not drained");
                self.id[i] = id;
                self.sector[i] = req.sector;
                self.bytes[i] = req.bytes;
                self.kind[i] = req.kind;
                self.submitted[i] = submitted;
                self.outstanding[i] = 0;
                self.xor_pending[i] = SimDuration::ZERO;
                self.disk_mask[i] = 0;
                self.flags[i] = flags;
                slot
            }
            None => {
                self.id.push(id);
                self.sector.push(req.sector);
                self.bytes.push(req.bytes);
                self.kind.push(req.kind);
                self.submitted.push(submitted);
                self.outstanding.push(0);
                self.xor_pending.push(SimDuration::ZERO);
                self.disk_mask.push(0);
                self.flags.push(flags);
                self.phases.push(VecDeque::new());
                Slot::try_from(self.id.len() - 1).expect("more than u32::MAX requests in flight")
            }
        }
    }

    /// Retire a slot, recycling it (and its phase deque's capacity) for the
    /// next insert.
    pub(crate) fn retire(&mut self, slot: Slot) {
        let i = slot as usize;
        debug_assert_ne!(self.flags[i] & F_OCCUPIED, 0, "retire of vacant request slot");
        debug_assert!(self.phases[i].is_empty(), "retired request still has phases");
        self.flags[i] = 0;
        self.free.push(slot);
        self.live -= 1;
    }

    /// Whether the slot holds a live request.
    pub(crate) fn occupied(&self, slot: Slot) -> bool {
        self.flags[slot as usize] & F_OCCUPIED != 0
    }

    /// Whether the slot's request is internal (rebuild) traffic.
    pub(crate) fn internal(&self, slot: Slot) -> bool {
        self.flags[slot as usize] & F_INTERNAL != 0
    }

    /// Whether the slot's completion was already reported (write-back ack).
    pub(crate) fn completed_early(&self, slot: Slot) -> bool {
        self.flags[slot as usize] & F_COMPLETED_EARLY != 0
    }

    /// The slot's request, reassembled from the columns.
    pub(crate) fn request(&self, slot: Slot) -> ArrayRequest {
        let i = slot as usize;
        ArrayRequest::new(self.sector[i], self.bytes[i], self.kind[i])
    }

    /// Live requests in flight.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Whether no request is in flight.
    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever grown (live + recyclable) — bounded by the maximum
    /// concurrency, not the request count. Exercised by the engine's
    /// slot-recycling test.
    #[cfg(test)]
    pub(crate) fn slot_count(&self) -> usize {
        self.id.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(sector: u64) -> ArrayRequest {
        ArrayRequest::new(sector, 4096, OpKind::Read)
    }

    #[test]
    fn insert_retire_recycles_slots_and_deques() {
        let mut store = ReqStore::default();
        let a = store.insert(0, req(10), SimTime::ZERO, false);
        let b = store.insert(1, req(20), SimTime::from_millis(1), true);
        assert_eq!(store.len(), 2);
        assert!(store.occupied(a) && store.occupied(b));
        assert!(!store.internal(a) && store.internal(b));

        // Give slot `a` a phase deque with capacity, drain it, retire.
        store.phases[a as usize].push_back(vec![]);
        store.phases[a as usize].pop_front();
        store.retire(a);
        assert!(!store.occupied(a));
        assert_eq!(store.len(), 1);

        // The freed slot (and its warm deque) is reused before any growth.
        let c = store.insert(2, req(30), SimTime::from_millis(2), false);
        assert_eq!(c, a);
        assert_eq!(store.slot_count(), 2);
        assert_eq!(store.id[c as usize], 2);
        assert_eq!(store.request(c), req(30));
        assert_eq!(store.outstanding[c as usize], 0);
        assert!(!store.completed_early(c));
    }

    #[test]
    fn columns_reset_on_reuse() {
        let mut store = ReqStore::default();
        let a = store.insert(0, req(1), SimTime::ZERO, false);
        store.outstanding[a as usize] = 7;
        store.xor_pending[a as usize] = SimDuration::from_millis(3);
        store.disk_mask[a as usize] = 0b1010;
        store.flags[a as usize] |= F_COMPLETED_EARLY;
        store.retire(a);
        let b = store.insert(1, req(2), SimTime::from_secs(1), false);
        assert_eq!(b, a);
        let i = b as usize;
        assert_eq!(store.outstanding[i], 0);
        assert_eq!(store.xor_pending[i], SimDuration::ZERO);
        assert_eq!(store.disk_mask[i], 0);
        assert!(!store.completed_early(b));
        assert_eq!(store.submitted[i], SimTime::from_secs(1));
    }
}
