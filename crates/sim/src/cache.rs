//! Controller cache model.
//!
//! The paper's testbed carries a 300 MB controller cache that is *disabled*
//! "to assure direct access to disks" (§V-A). This module models that cache
//! so the choice can be evaluated instead of assumed: an LRU of fixed-size
//! lines over the array's logical address space, optionally write-back
//! (writes acknowledged once the payload is in cache RAM, destaged to disks
//! asynchronously) or write-through.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Static cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total cache capacity in bytes (the paper's controller has 300 MB).
    pub size_bytes: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
    /// `true`: write-back (fast ack, async destage); `false`: write-through.
    pub write_back: bool,
}

impl CacheConfig {
    /// The paper's controller cache, as it would run when enabled:
    /// 300 MB, 64 KiB lines, write-back.
    pub fn paper_300mb() -> Self {
        Self { size_bytes: 300 * 1_000_000, line_bytes: 64 * 1024, write_back: true }
    }
}

/// LRU line cache over logical sectors.
#[derive(Debug, Clone)]
pub struct ControllerCache {
    cfg: CacheConfig,
    capacity_lines: usize,
    /// line id → validity tick. A line is resident iff its entry matches the
    /// newest tick recorded in `order` (lazy LRU).
    lines: HashMap<u64, u64>,
    order: VecDeque<(u64, u64)>,
    tick: u64,
    /// Read lookups fully answered from cache.
    pub hits: u64,
    /// Read lookups that had to go to the disks.
    pub misses: u64,
}

impl ControllerCache {
    /// Build a cache; capacity must hold at least one line.
    pub fn new(cfg: CacheConfig) -> Self {
        let capacity_lines = (cfg.size_bytes / u64::from(cfg.line_bytes.max(512))).max(1) as usize;
        Self {
            cfg,
            capacity_lines,
            lines: HashMap::with_capacity(capacity_lines.min(1 << 20)),
            order: VecDeque::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    fn line_sectors(&self) -> u64 {
        u64::from(self.cfg.line_bytes.max(512)) / tracer_trace::SECTOR_BYTES
    }

    fn lines_of(&self, sector: u64, sectors: u64) -> (u64, u64) {
        let ls = self.line_sectors();
        let first = sector / ls;
        let last = (sector + sectors.max(1) - 1) / ls;
        (first, last)
    }

    fn touch(&mut self, line: u64) {
        self.tick += 1;
        self.lines.insert(line, self.tick);
        self.order.push_back((line, self.tick));
        self.evict_lazily();
    }

    fn evict_lazily(&mut self) {
        while self.lines.len() > self.capacity_lines {
            // Pop stale order entries until a live LRU victim surfaces.
            while let Some(&(line, tick)) = self.order.front() {
                self.order.pop_front();
                if self.lines.get(&line) == Some(&tick) {
                    self.lines.remove(&line);
                    break;
                }
            }
        }
        // Bound the lazy queue so long runs cannot grow it without limit.
        if self.order.len() > self.capacity_lines * 4 + 64 {
            let live: Vec<(u64, u64)> = self
                .order
                .iter()
                .copied()
                .filter(|(line, tick)| self.lines.get(line) == Some(tick))
                .collect();
            self.order = live.into();
        }
    }

    /// Look up a read: `true` when every covered line is resident (the whole
    /// request is served from cache RAM). Misses fill the lines.
    pub fn read(&mut self, sector: u64, sectors: u64) -> bool {
        let (first, last) = self.lines_of(sector, sectors);
        let all_resident = (first..=last).all(|l| self.lines.contains_key(&l));
        for l in first..=last {
            self.touch(l);
        }
        if all_resident {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        all_resident
    }

    /// Record a write filling the covered lines.
    pub fn write(&mut self, sector: u64, sectors: u64) {
        let (first, last) = self.lines_of(sector, sectors);
        for l in first..=last {
            self.touch(l);
        }
    }

    /// Hit fraction of read lookups so far.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total > 0 {
            self.hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ControllerCache {
        // 4 lines of 64 KiB.
        ControllerCache::new(CacheConfig {
            size_bytes: 4 * 64 * 1024,
            line_bytes: 64 * 1024,
            write_back: true,
        })
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut c = small();
        assert!(!c.read(0, 8));
        assert!(c.read(0, 8));
        assert!(c.read(4, 4), "sub-line overlap hits");
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn writes_fill_lines_for_later_reads() {
        let mut c = small();
        c.write(0, 128); // one line
        assert!(c.read(0, 8));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small();
        let line_sectors = c.line_sectors();
        for i in 0..4 {
            c.write(i * line_sectors, 1);
        }
        assert_eq!(c.resident_lines(), 4);
        // Touch line 0 to refresh it, then insert a fifth: line 1 evicts.
        assert!(c.read(0, 1));
        c.write(4 * line_sectors, 1);
        assert_eq!(c.resident_lines(), 4);
        assert!(c.read(0, 1), "refreshed line survives");
        assert!(!c.read(line_sectors, 1), "LRU victim evicted");
    }

    #[test]
    fn multi_line_requests_need_every_line() {
        let mut c = small();
        let ls = c.line_sectors();
        c.write(0, ls); // line 0 only
        assert!(!c.read(0, ls + 1), "second line missing");
        assert!(c.read(0, ls + 1), "now both resident");
    }

    #[test]
    fn lazy_queue_stays_bounded() {
        let mut c = small();
        for i in 0..100_000u64 {
            c.write((i % 3) * c.line_sectors(), 1);
        }
        assert!(c.order.len() <= c.capacity_lines * 4 + 64 + 3);
        assert_eq!(c.resident_lines(), 3);
    }

    #[test]
    fn paper_preset() {
        let c = ControllerCache::new(CacheConfig::paper_300mb());
        assert_eq!(c.capacity_lines, 300 * 1_000_000 / (64 * 1024));
        assert!(c.config().write_back);
    }
}
