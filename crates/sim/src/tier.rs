#![doc = "tracer-invariant: deterministic"]
//! Tiered hybrid device: an SSD cache in front of an HDD backing store.
//!
//! The hybrid serves hot regions from flash and cold regions from the disk,
//! the classic energy trade the MAID/PDC literature the paper cites builds
//! on: flash absorbs the random traffic that would otherwise keep the spindle
//! seeking, while the HDD provides the capacity. The model composes the two
//! existing device models rather than re-deriving their physics — a service
//! plan is the concatenation of the sub-device phases involved, so power
//! accounting stays exact.
//!
//! Placement policy (deterministic, no clocks, no randomness):
//!
//! * the device is tracked in fixed-size **regions** (default 256 KiB);
//! * a region is **promoted** into flash once it has been touched
//!   `promote_after` times; the promotion charges the migration cost (HDD
//!   read + SSD write of the whole region) to the op that triggered it;
//! * when flash is full the least-recently-used resident region is
//!   **demoted**; a dirty region charges SSD read + HDD write-back.
//!
//! Hit-count state is bounded: counts reset whenever the tracked set grows
//! past four times the cache capacity, which keeps the model O(cache) while
//! remaining a pure function of the op sequence.

use crate::device::{DeviceModel, DiskOp, OpKind, ServicePlan};
use crate::hdd::HddModel;
use crate::ssd::SsdModel;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Placement-policy parameters of a tiered hybrid device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierConfig {
    /// Region granularity, sectors (default 512 = 256 KiB).
    pub region_sectors: u64,
    /// Accesses to a region before it is promoted into flash.
    pub promote_after: u32,
    /// Flash capacity, regions.
    pub cache_regions: usize,
}

impl Default for TierConfig {
    fn default() -> Self {
        Self { region_sectors: 512, promote_after: 3, cache_regions: 256 }
    }
}

/// A resident flash region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Resident {
    region: u64,
    /// Flash slot the region occupies (stable for its residency).
    slot: usize,
    dirty: bool,
}

/// SSD cache over an HDD backing store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TieredModel {
    name: String,
    ssd: SsdModel,
    hdd: HddModel,
    cfg: TierConfig,
    /// Resident regions, most-recently-used first.
    resident: Vec<Resident>,
    /// `(region, touches)` for non-resident regions (bounded; see module
    /// docs). A plain vector keeps the model serialisable and deterministic.
    heat: Vec<(u64, u32)>,
    promotions: u64,
    demotions: u64,
}

impl TieredModel {
    /// Build a hybrid from its two member models.
    ///
    /// # Panics
    /// Panics if the flash cannot hold `cache_regions` regions.
    pub fn new(name: impl Into<String>, ssd: SsdModel, hdd: HddModel, cfg: TierConfig) -> Self {
        assert!(cfg.region_sectors > 0, "zero region size");
        assert!(cfg.cache_regions > 0, "zero cache capacity");
        assert!(
            ssd.capacity_sectors() >= cfg.cache_regions as u64 * cfg.region_sectors,
            "flash smaller than the configured cache"
        );
        Self {
            name: name.into(),
            ssd,
            hdd,
            cfg,
            resident: Vec::new(),
            heat: Vec::new(),
            promotions: 0,
            demotions: 0,
        }
    }

    /// Promotions performed so far (diagnostics).
    pub fn promotion_count(&self) -> u64 {
        self.promotions
    }

    /// Demotions performed so far (diagnostics).
    pub fn demotion_count(&self) -> u64 {
        self.demotions
    }

    /// A fresh copy with the same members and policy but empty placement and
    /// member state, for repeatable calibration phases.
    pub fn clone_reset(&self) -> Self {
        Self::new(
            self.name.clone(),
            SsdModel::new(self.ssd.params().clone()),
            HddModel::new(self.hdd.params().clone()),
            self.cfg,
        )
    }

    /// Flash-resident sector address of `op` within `slot`.
    fn flash_op(&self, slot: usize, op: &DiskOp) -> DiskOp {
        let offset = op.sector % self.cfg.region_sectors;
        DiskOp::new(slot as u64 * self.cfg.region_sectors + offset, op.sectors, op.kind)
    }

    /// Position of `region` in the residency list.
    fn resident_pos(&self, region: u64) -> Option<usize> {
        self.resident.iter().position(|r| r.region == region)
    }

    /// Evict the LRU resident region, returning the freed slot and charging
    /// the write-back cost to `plan` if the region was dirty.
    fn demote_lru(&mut self, plan: &mut Vec<crate::device::Phase>) -> usize {
        let victim = self.resident.pop().expect("cache not empty");
        self.demotions += 1;
        if victim.dirty {
            let sectors = self.cfg.region_sectors;
            let flash = DiskOp::new(victim.slot as u64 * sectors, sectors, OpKind::Read);
            plan.extend(self.ssd.service(&flash).phases);
            let disk = DiskOp::new(victim.region * sectors, sectors, OpKind::Write);
            plan.extend(self.hdd.service(&disk).phases);
        }
        victim.slot
    }
}

impl DeviceModel for TieredModel {
    fn capacity_sectors(&self) -> u64 {
        self.hdd.capacity_sectors()
    }

    fn idle_watts(&self) -> f64 {
        self.ssd.idle_watts() + self.hdd.idle_watts()
    }

    fn standby_watts(&self) -> f64 {
        self.ssd.idle_watts() + self.hdd.standby_watts()
    }

    fn service(&mut self, op: &DiskOp) -> ServicePlan {
        let region = op.sector / self.cfg.region_sectors;
        let mut phases = Vec::new();

        if let Some(pos) = self.resident_pos(region) {
            // Hit: serve from flash and refresh recency.
            let mut entry = self.resident.remove(pos);
            entry.dirty |= !op.kind.is_read();
            let flash = self.flash_op(entry.slot, op);
            self.resident.insert(0, entry);
            phases.extend(self.ssd.service(&flash).phases);
            return ServicePlan { phases };
        }

        // Miss: count the touch and decide on promotion.
        let heat_pos = self.heat.iter().position(|&(r, _)| r == region);
        let touches = heat_pos.map_or(0, |i| self.heat[i].1) + 1;
        if touches >= self.cfg.promote_after {
            if let Some(i) = heat_pos {
                self.heat.swap_remove(i);
            }
            let slot = if self.resident.len() >= self.cfg.cache_regions {
                self.demote_lru(&mut phases)
            } else {
                self.resident.len()
            };
            // Migrate the whole region disk → flash, then serve from flash.
            let sectors = self.cfg.region_sectors;
            let fill = DiskOp::new(region * sectors, sectors, OpKind::Read);
            phases.extend(self.hdd.service(&fill).phases);
            let store = DiskOp::new(slot as u64 * sectors, sectors, OpKind::Write);
            phases.extend(self.ssd.service(&store).phases);
            self.promotions += 1;
            let entry = Resident { region, slot, dirty: !op.kind.is_read() };
            let flash = self.flash_op(slot, op);
            self.resident.insert(0, entry);
            phases.extend(self.ssd.service(&flash).phases);
            return ServicePlan { phases };
        }

        match heat_pos {
            Some(i) => self.heat[i].1 = touches,
            None => self.heat.push((region, touches)),
        }
        if self.heat.len() > 4 * self.cfg.cache_regions {
            // Bound the tracking state; a cold sweep simply restarts the
            // counting epoch (deterministically).
            self.heat.clear();
        }
        phases.extend(self.hdd.service(op).phases);
        ServicePlan { phases }
    }

    fn min_service_time(&self) -> SimDuration {
        self.ssd.min_service_time().min(self.hdd.min_service_time())
    }

    fn enter_standby(&mut self) {
        self.hdd.enter_standby();
    }

    fn in_standby(&self) -> bool {
        self.hdd.in_standby()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdd::HddParams;
    use crate::ssd::SsdParams;
    use tracer_trace::OpKind;

    fn hybrid(cfg: TierConfig) -> TieredModel {
        TieredModel::new(
            "hybrid-test",
            SsdModel::new(SsdParams::memoright_slc_32gb()),
            HddModel::new(HddParams::seagate_7200_12_500gb()),
            cfg,
        )
    }

    #[test]
    fn cold_reads_hit_the_disk_then_promote() {
        let cfg = TierConfig { promote_after: 3, ..TierConfig::default() };
        let mut d = hybrid(cfg);
        let op = DiskOp::new(0, 8, OpKind::Read);
        // First two touches: pure HDD service (mechanical latency).
        let cold = d.service(&op).total_duration();
        d.service(&op);
        assert_eq!(d.promotion_count(), 0);
        // Third touch promotes (pays migration) …
        d.service(&op);
        assert_eq!(d.promotion_count(), 1);
        // … and the region then serves from flash, faster than the disk.
        let hot = d.service(&op).total_duration();
        assert!(hot < cold, "flash hit {hot:?} must beat disk {cold:?}");
    }

    #[test]
    fn full_cache_demotes_lru_and_writes_back_dirty() {
        let cfg = TierConfig { region_sectors: 512, promote_after: 1, cache_regions: 2 };
        let mut d = hybrid(cfg);
        // Promote regions 0 (via a write: dirty) and 1.
        d.service(&DiskOp::new(0, 8, OpKind::Write));
        d.service(&DiskOp::new(512, 8, OpKind::Read));
        assert_eq!(d.promotion_count(), 2);
        // Touch region 0 so region 1 becomes LRU, then promote region 2.
        d.service(&DiskOp::new(16, 8, OpKind::Read));
        d.service(&DiskOp::new(1024, 8, OpKind::Read));
        assert_eq!(d.demotion_count(), 1);
        // Region 1 was clean: evicted silently. Promote region 3 — region 0
        // is now LRU and dirty, so its demotion charges a write-back.
        let dirty_evict = d.service(&DiskOp::new(1536, 8, OpKind::Read));
        assert_eq!(d.demotion_count(), 2);
        // The op that evicted dirty region 0 carries strictly more phases
        // than a promotion with no eviction would.
        let base = hybrid(cfg).service(&DiskOp::new(1536, 8, OpKind::Read)).phases.len();
        assert!(dirty_evict.phases.len() > base, "dirty write-back adds phases");
    }

    #[test]
    fn heat_tracking_stays_bounded() {
        let cfg = TierConfig { region_sectors: 512, promote_after: 100, cache_regions: 2 };
        let mut d = hybrid(cfg);
        for i in 0..1_000u64 {
            d.service(&DiskOp::new(i * 512, 8, OpKind::Read));
        }
        assert!(d.heat.len() <= 4 * cfg.cache_regions, "heat map must stay bounded");
        assert_eq!(d.promotion_count(), 0);
    }

    #[test]
    fn identical_op_sequences_yield_identical_plans() {
        let cfg = TierConfig::default();
        let ops: Vec<DiskOp> = (0..200u64)
            .map(|i| {
                let sector = (i * 7919) % 100_000;
                let kind = if i % 3 == 0 { OpKind::Write } else { OpKind::Read };
                DiskOp::new(sector, 8, kind)
            })
            .collect();
        let mut a = hybrid(cfg);
        let mut b = hybrid(cfg);
        for op in &ops {
            assert_eq!(a.service(op), b.service(op));
        }
    }

    #[test]
    fn idle_power_is_the_sum_of_members() {
        let d = hybrid(TierConfig::default());
        assert!((d.idle_watts() - (3.5 + 5.0)).abs() < 1e-12);
        // Standby spins the disk down but keeps the flash powered.
        assert!((d.standby_watts() - (3.5 + 0.8)).abs() < 1e-12);
    }
}
