//! Device abstraction shared by the HDD and SSD models.
//!
//! A device is a serial server: the array engine hands it one [`DiskOp`] at a
//! time and receives a [`ServicePlan`] — an ordered list of power/duration
//! phases (seek, rotation, transfer, garbage collection, spin-up…). The device
//! updates its own internal state (head position, sequential-run detection,
//! spin state) as part of planning, so plans must be requested in dispatch
//! order.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
pub use tracer_trace::OpKind;

/// One physical-device operation, in the device's own sector space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskOp {
    /// Starting sector on the device.
    pub sector: u64,
    /// Length in sectors.
    pub sectors: u64,
    /// Read or write.
    pub kind: OpKind,
}

impl DiskOp {
    /// Construct an op; length must be non-zero.
    pub fn new(sector: u64, sectors: u64, kind: OpKind) -> Self {
        debug_assert!(sectors > 0, "zero-length disk op");
        Self { sector, sectors, kind }
    }

    /// Transferred bytes.
    pub fn bytes(&self) -> u64 {
        self.sectors * tracer_trace::SECTOR_BYTES
    }
}

/// One constant-power interval inside a service plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Interval length.
    pub duration: SimDuration,
    /// Power drawn during the interval, watts.
    pub watts: f64,
    /// Label for diagnostics and ablation accounting.
    pub label: PhaseLabel,
}

/// What a service phase spends its time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseLabel {
    /// Firmware / command processing overhead.
    Overhead,
    /// Head movement (HDD only).
    Seek,
    /// Rotational latency (HDD only).
    Rotation,
    /// Media transfer.
    Transfer,
    /// Flash garbage collection (SSD only).
    GarbageCollect,
    /// Spin-up from standby (HDD only).
    SpinUp,
}

/// The plan for serving one op: phases execute back to back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServicePlan {
    /// Ordered power/duration phases.
    pub phases: Vec<Phase>,
}

impl ServicePlan {
    /// Total service time.
    pub fn total_duration(&self) -> SimDuration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Energy consumed by the plan, joules.
    pub fn energy_joules(&self) -> f64 {
        self.phases.iter().map(|p| p.watts * p.duration.as_secs_f64()).sum()
    }

    /// Time spent in phases with the given label.
    pub fn time_in(&self, label: PhaseLabel) -> SimDuration {
        self.phases.iter().filter(|p| p.label == label).map(|p| p.duration).sum()
    }
}

/// Behaviour common to all simulated devices.
pub trait DeviceModel: Send {
    /// Capacity in 512-byte sectors.
    fn capacity_sectors(&self) -> u64;

    /// Power drawn when idle and spun up, watts.
    fn idle_watts(&self) -> f64;

    /// Power drawn in standby/sleep, watts (equals idle for devices without a
    /// standby state).
    fn standby_watts(&self) -> f64 {
        self.idle_watts()
    }

    /// Plan service for `op`, updating internal head/sequentiality state.
    fn service(&mut self, op: &DiskOp) -> ServicePlan;

    /// A lower bound on the duration of *any* plan [`DeviceModel::service`]
    /// can return, independent of the device's current state. Conservative
    /// parallel simulation uses this as the per-disk lookahead: once a disk
    /// dispatches at time `t`, no event it produces can precede
    /// `t + min_service_time()`. `ZERO` (the default) is always sound — it
    /// just yields no lookahead.
    fn min_service_time(&self) -> SimDuration {
        SimDuration::ZERO
    }

    /// Enter standby (no-op for devices without a standby state). The next
    /// `service` call must include any wake-up cost.
    fn enter_standby(&mut self) {}

    /// Whether the device is currently in standby.
    fn in_standby(&self) -> bool {
        false
    }

    /// Human-readable model name.
    fn name(&self) -> &str;
}

/// A concrete device: closed enum so arrays avoid dynamic dispatch while
/// still mixing device types. Variant sizes differ (the tiered model
/// carries its cache directory inline), but an array holds a handful of
/// members, so boxing would buy nothing and cost an indirection per event.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Device {
    /// Rotating hard disk drive.
    Hdd(crate::hdd::HddModel),
    /// Flash solid-state disk (SATA-era single-rate model).
    Ssd(crate::ssd::SsdModel),
    /// NVMe-class SSD with internal channel parallelism.
    Nvme(crate::nvme::NvmeModel),
    /// SSD cache over an HDD backing store.
    Tiered(crate::tier::TieredModel),
}

impl DeviceModel for Device {
    fn capacity_sectors(&self) -> u64 {
        match self {
            Device::Hdd(d) => d.capacity_sectors(),
            Device::Ssd(d) => d.capacity_sectors(),
            Device::Nvme(d) => d.capacity_sectors(),
            Device::Tiered(d) => d.capacity_sectors(),
        }
    }

    fn idle_watts(&self) -> f64 {
        match self {
            Device::Hdd(d) => d.idle_watts(),
            Device::Ssd(d) => d.idle_watts(),
            Device::Nvme(d) => d.idle_watts(),
            Device::Tiered(d) => d.idle_watts(),
        }
    }

    fn standby_watts(&self) -> f64 {
        match self {
            Device::Hdd(d) => d.standby_watts(),
            Device::Ssd(d) => d.standby_watts(),
            Device::Nvme(d) => d.standby_watts(),
            Device::Tiered(d) => d.standby_watts(),
        }
    }

    fn service(&mut self, op: &DiskOp) -> ServicePlan {
        match self {
            Device::Hdd(d) => d.service(op),
            Device::Ssd(d) => d.service(op),
            Device::Nvme(d) => d.service(op),
            Device::Tiered(d) => d.service(op),
        }
    }

    fn min_service_time(&self) -> SimDuration {
        match self {
            Device::Hdd(d) => d.min_service_time(),
            Device::Ssd(d) => d.min_service_time(),
            Device::Nvme(d) => d.min_service_time(),
            Device::Tiered(d) => d.min_service_time(),
        }
    }

    fn enter_standby(&mut self) {
        match self {
            Device::Hdd(d) => d.enter_standby(),
            Device::Ssd(d) => d.enter_standby(),
            Device::Nvme(d) => d.enter_standby(),
            Device::Tiered(d) => d.enter_standby(),
        }
    }

    fn in_standby(&self) -> bool {
        match self {
            Device::Hdd(d) => d.in_standby(),
            Device::Ssd(d) => d.in_standby(),
            Device::Nvme(d) => d.in_standby(),
            Device::Tiered(d) => d.in_standby(),
        }
    }

    fn name(&self) -> &str {
        match self {
            Device::Hdd(d) => d.name(),
            Device::Ssd(d) => d.name(),
            Device::Nvme(d) => d.name(),
            Device::Tiered(d) => d.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_accounting() {
        let plan = ServicePlan {
            phases: vec![
                Phase {
                    duration: SimDuration::from_millis(2),
                    watts: 11.0,
                    label: PhaseLabel::Seek,
                },
                Phase {
                    duration: SimDuration::from_millis(4),
                    watts: 4.0,
                    label: PhaseLabel::Rotation,
                },
                Phase {
                    duration: SimDuration::from_millis(4),
                    watts: 8.0,
                    label: PhaseLabel::Transfer,
                },
            ],
        };
        assert_eq!(plan.total_duration(), SimDuration::from_millis(10));
        let e = plan.energy_joules();
        assert!((e - (0.002 * 11.0 + 0.004 * 4.0 + 0.004 * 8.0)).abs() < 1e-12);
        assert_eq!(plan.time_in(PhaseLabel::Seek), SimDuration::from_millis(2));
        assert_eq!(plan.time_in(PhaseLabel::GarbageCollect), SimDuration::ZERO);
    }

    #[test]
    fn disk_op_bytes() {
        let op = DiskOp::new(0, 8, OpKind::Read);
        assert_eq!(op.bytes(), 4096);
    }
}
