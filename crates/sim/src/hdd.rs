//! Rotating hard-disk model.
//!
//! The mechanical model follows the classic Ruemmler–Wilkes decomposition:
//! per-op firmware overhead, a seek whose time grows with the square root of
//! short distances and linearly with long ones, half-a-revolution expected
//! rotational latency, and a zoned media transfer whose rate falls linearly
//! from the outer to the inner diameter. Sequential continuations (an op
//! starting exactly where the previous one ended) skip seek and rotation —
//! this is the mechanism behind the paper's random-ratio results (§VI-D):
//! random I/O burns seek time *and* seek power ("voice-coil actuators …
//! consume additional energy to perform seek operations").
//!
//! Power states: standby (spun down), idle (spinning, heads parked),
//! rotation/overhead at idle power, seek at seek power, transfer at transfer
//! power, spin-up at spin-up power. Spin-down support exists so that
//! MAID-style energy-conservation policies can be evaluated on top of TRACER.

use crate::device::{DeviceModel, DiskOp, Phase, PhaseLabel, ServicePlan};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Static parameters of an HDD model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HddParams {
    /// Model name for reports.
    pub name: String,
    /// Capacity in 512-byte sectors.
    pub capacity_sectors: u64,
    /// Number of (logical) cylinders used for seek-distance mapping.
    pub cylinders: u64,
    /// Spindle speed, revolutions per minute.
    pub rpm: f64,
    /// Track-to-track (single-cylinder) seek, milliseconds.
    pub track_to_track_ms: f64,
    /// Full-stroke seek, milliseconds.
    pub full_stroke_ms: f64,
    /// Extra head-settle time applied to writes that seek, milliseconds.
    pub write_settle_ms: f64,
    /// Media rate at the outer diameter, MB/s.
    pub outer_mbps: f64,
    /// Media rate at the inner diameter, MB/s.
    pub inner_mbps: f64,
    /// Per-op firmware/command overhead, microseconds.
    pub overhead_us: f64,
    /// Power, watts: spun-down standby.
    pub standby_w: f64,
    /// Power, watts: idle (spinning).
    pub idle_w: f64,
    /// Power, watts: seeking.
    pub seek_w: f64,
    /// Power, watts: media transfer.
    pub transfer_w: f64,
    /// Power, watts: during spin-up.
    pub spinup_w: f64,
    /// Spin-up time from standby, seconds.
    pub spinup_s: f64,
}

impl HddParams {
    /// Derive a multi-speed variant of this drive running at
    /// `factor` × nominal RPM — the mechanism behind DRPM-style
    /// ("dynamic rotations per minute") conservation techniques.
    ///
    /// Scaling rules: rotation time and media rate scale linearly with RPM;
    /// spindle power scales with ~RPM^2.8 (windage dominates), so the idle
    /// level drops steeply while the seek/transfer *increments* over idle
    /// (actuator and channel electronics) stay fixed. Seek time is
    /// unaffected. `factor` must be in (0, 1].
    pub fn derated(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "RPM factor must be in (0, 1]");
        let spindle_scale = factor.powf(2.8);
        let idle_w = self.idle_w * spindle_scale;
        Self {
            name: format!("{}@{:.0}rpm", self.name, self.rpm * factor),
            rpm: self.rpm * factor,
            outer_mbps: self.outer_mbps * factor,
            inner_mbps: self.inner_mbps * factor,
            idle_w,
            seek_w: idle_w + (self.seek_w - self.idle_w),
            transfer_w: idle_w + (self.transfer_w - self.idle_w),
            ..self.clone()
        }
    }

    /// Parameters approximating the paper's data disks (Table II): Seagate
    /// Barracuda 7200.12, 500 GB, 7200 rpm. Spec-sheet derived; see DESIGN.md
    /// for the calibration notes.
    pub fn seagate_7200_12_500gb() -> Self {
        Self {
            name: "Seagate-7200.12-500GB".to_string(),
            capacity_sectors: 976_773_168, // 500 GB / 512 B
            cylinders: 152_000,
            rpm: 7200.0,
            track_to_track_ms: 1.0,
            full_stroke_ms: 18.0,
            write_settle_ms: 0.5,
            outer_mbps: 125.0,
            inner_mbps: 60.0,
            overhead_us: 100.0,
            standby_w: 0.8,
            idle_w: 5.0,
            seek_w: 11.5,
            transfer_w: 8.0,
            spinup_w: 24.0,
            spinup_s: 6.0,
        }
    }

    /// A 15 000 rpm enterprise SAS drive (Cheetah-class, 600 GB): short
    /// seeks, fast rotation, power-hungry spindle.
    pub fn enterprise_15k_600gb() -> Self {
        Self {
            name: "Enterprise-15k-600GB".to_string(),
            capacity_sectors: 1_172_123_568, // 600 GB / 512 B
            cylinders: 120_000,
            rpm: 15_000.0,
            track_to_track_ms: 0.4,
            full_stroke_ms: 7.0,
            write_settle_ms: 0.3,
            outer_mbps: 200.0,
            inner_mbps: 120.0,
            overhead_us: 60.0,
            standby_w: 1.5,
            idle_w: 9.5,
            seek_w: 17.0,
            transfer_w: 13.5,
            spinup_w: 30.0,
            spinup_s: 8.0,
        }
    }

    /// A 5 400 rpm power-economy drive (2 TB archive class): slow mechanics,
    /// low spindle power.
    pub fn eco_5400_2tb() -> Self {
        Self {
            name: "Eco-5400-2TB".to_string(),
            capacity_sectors: 3_907_029_168, // 2 TB / 512 B
            cylinders: 280_000,
            rpm: 5_400.0,
            track_to_track_ms: 1.5,
            full_stroke_ms: 24.0,
            write_settle_ms: 0.7,
            outer_mbps: 110.0,
            inner_mbps: 55.0,
            overhead_us: 120.0,
            standby_w: 0.6,
            idle_w: 3.2,
            seek_w: 7.5,
            transfer_w: 5.4,
            spinup_w: 18.0,
            spinup_s: 8.0,
        }
    }
}

/// A stateful HDD: parameters plus head position and spin state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HddModel {
    params: HddParams,
    /// Cylinder the head currently sits on.
    head_cylinder: u64,
    /// End sector of the last op, for sequential-run detection.
    last_end_sector: Option<u64>,
    standby: bool,
    /// Cumulative seek count (diagnostics).
    seeks: u64,
}

impl HddModel {
    /// New spun-up drive with the head at cylinder 0.
    pub fn new(params: HddParams) -> Self {
        Self { params, head_cylinder: 0, last_end_sector: None, standby: false, seeks: 0 }
    }

    /// The drive's static parameters.
    pub fn params(&self) -> &HddParams {
        &self.params
    }

    /// Number of seeks performed so far.
    pub fn seek_count(&self) -> u64 {
        self.seeks
    }

    fn cylinder_of(&self, sector: u64) -> u64 {
        // Linear LBA → cylinder mapping.
        ((sector as u128 * self.params.cylinders as u128)
            / self.params.capacity_sectors.max(1) as u128) as u64
    }

    /// Seek time for a distance of `d` cylinders.
    ///
    /// `t(d) = a + b·√d` with `t(1) = track_to_track` and
    /// `t(cylinders) = full_stroke`; `t(0) = 0`.
    pub fn seek_time(&self, d: u64) -> SimDuration {
        if d == 0 {
            return SimDuration::ZERO;
        }
        let p = &self.params;
        let span = (p.cylinders as f64).sqrt() - 1.0;
        let b = if span > 0.0 { (p.full_stroke_ms - p.track_to_track_ms) / span } else { 0.0 };
        let a = p.track_to_track_ms - b;
        SimDuration::from_millis_f64(a + b * (d as f64).sqrt())
    }

    /// One full revolution.
    pub fn rotation_time(&self) -> SimDuration {
        SimDuration::from_secs_f64(60.0 / self.params.rpm)
    }

    /// Media rate at `sector`, bytes per second. Outer tracks (low LBAs) are
    /// faster.
    pub fn media_rate(&self, sector: u64) -> f64 {
        let p = &self.params;
        let frac = sector as f64 / p.capacity_sectors.max(1) as f64;
        (p.outer_mbps + (p.inner_mbps - p.outer_mbps) * frac) * 1e6
    }

    /// Expected service time of a uniformly random 4 KiB op (diagnostic used
    /// by calibration tests).
    pub fn expected_random_service_ms(&self) -> f64 {
        // E[sqrt(d)] for |X−Y| of two uniform cylinders is (8/15)·sqrt(C).
        let p = &self.params;
        let span = (p.cylinders as f64).sqrt() - 1.0;
        let b = if span > 0.0 { (p.full_stroke_ms - p.track_to_track_ms) / span } else { 0.0 };
        let a = p.track_to_track_ms - b;
        let seek = a + b * (8.0 / 15.0) * (p.cylinders as f64).sqrt();
        let rot = 0.5 * 60_000.0 / p.rpm;
        let transfer = 4096.0 / ((p.outer_mbps + p.inner_mbps) / 2.0 * 1e6) * 1e3;
        seek + rot + transfer + p.overhead_us / 1e3
    }
}

impl DeviceModel for HddModel {
    fn capacity_sectors(&self) -> u64 {
        self.params.capacity_sectors
    }

    fn idle_watts(&self) -> f64 {
        self.params.idle_w
    }

    fn standby_watts(&self) -> f64 {
        self.params.standby_w
    }

    fn service(&mut self, op: &DiskOp) -> ServicePlan {
        let p = &self.params;
        let mut phases = Vec::with_capacity(5);

        if self.standby {
            phases.push(Phase {
                duration: SimDuration::from_secs_f64(p.spinup_s),
                watts: p.spinup_w,
                label: PhaseLabel::SpinUp,
            });
            self.standby = false;
        }

        phases.push(Phase {
            duration: SimDuration::from_micros_f64(p.overhead_us),
            watts: p.idle_w,
            label: PhaseLabel::Overhead,
        });

        let sequential = self.last_end_sector == Some(op.sector);
        if !sequential {
            let target = self.cylinder_of(op.sector);
            let dist = target.abs_diff(self.head_cylinder);
            let mut seek = self.seek_time(dist);
            if !seek.is_zero() {
                if !op.kind.is_read() {
                    seek += SimDuration::from_millis_f64(p.write_settle_ms);
                }
                self.seeks += 1;
                phases.push(Phase { duration: seek, watts: p.seek_w, label: PhaseLabel::Seek });
            }
            // Expected rotational latency: half a revolution. Applied to any
            // non-sequential access, including same-cylinder jumps.
            let half_rot = SimDuration::from_nanos(self.rotation_time().as_nanos() / 2);
            phases.push(Phase { duration: half_rot, watts: p.idle_w, label: PhaseLabel::Rotation });
        }

        let rate = self.media_rate(op.sector);
        let transfer = SimDuration::from_secs_f64(op.bytes() as f64 / rate);
        phases.push(Phase { duration: transfer, watts: p.transfer_w, label: PhaseLabel::Transfer });

        self.head_cylinder = self.cylinder_of(op.sector + op.sectors.saturating_sub(1));
        self.last_end_sector = Some(op.sector + op.sectors);

        ServicePlan { phases }
    }

    fn min_service_time(&self) -> SimDuration {
        // Every plan starts with the firmware overhead phase; seeks,
        // rotation, transfer, and spin-up only add to it.
        SimDuration::from_micros_f64(self.params.overhead_us)
    }

    fn enter_standby(&mut self) {
        self.standby = true;
        self.last_end_sector = None;
    }

    fn in_standby(&self) -> bool {
        self.standby
    }

    fn name(&self) -> &str {
        &self.params.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tracer_trace::OpKind;

    fn drive() -> HddModel {
        HddModel::new(HddParams::seagate_7200_12_500gb())
    }

    #[test]
    fn seek_curve_endpoints() {
        let d = drive();
        assert_eq!(d.seek_time(0), SimDuration::ZERO);
        let tt = d.seek_time(1).as_millis_f64();
        assert!((tt - 1.0).abs() < 0.01, "track-to-track = {tt}");
        let fs = d.seek_time(d.params().cylinders).as_millis_f64();
        assert!((fs - 18.0).abs() < 0.01, "full stroke = {fs}");
    }

    #[test]
    fn seek_curve_is_monotone() {
        let d = drive();
        let mut last = SimDuration::ZERO;
        for dist in [0u64, 1, 10, 100, 1_000, 10_000, 100_000, 152_000] {
            let t = d.seek_time(dist);
            assert!(t >= last, "seek({dist}) regressed");
            last = t;
        }
    }

    #[test]
    fn rotation_matches_rpm() {
        let d = drive();
        let rot = d.rotation_time().as_millis_f64();
        assert!((rot - 8.333).abs() < 0.01, "7200 rpm rotation = {rot}ms");
    }

    #[test]
    fn expected_random_service_is_realistic() {
        // Sanity check against the spec sheet: a random 4 KiB op on a 7200 rpm
        // desktop drive takes roughly 12–17 ms (avg seek + half rotation).
        let ms = drive().expected_random_service_ms();
        assert!((10.0..20.0).contains(&ms), "random service {ms}ms");
    }

    #[test]
    fn sequential_skips_seek_and_rotation() {
        let mut d = drive();
        let first = d.service(&DiskOp::new(1000, 8, OpKind::Read));
        assert!(!first.time_in(PhaseLabel::Rotation).is_zero());
        let second = d.service(&DiskOp::new(1008, 8, OpKind::Read));
        assert!(second.time_in(PhaseLabel::Seek).is_zero());
        assert!(second.time_in(PhaseLabel::Rotation).is_zero());
        assert!(second.total_duration() < first.total_duration());
    }

    #[test]
    fn random_op_costs_seek_power() {
        let mut d = drive();
        d.service(&DiskOp::new(0, 8, OpKind::Read));
        let far = d.service(&DiskOp::new(900_000_000, 8, OpKind::Read));
        let seek_t = far.time_in(PhaseLabel::Seek);
        assert!(seek_t.as_millis_f64() > 10.0, "far seek = {seek_t}");
        assert!(far.energy_joules() > 0.0);
        // First op starts at cylinder 0 where the head already is: no seek.
        assert_eq!(d.seek_count(), 1);
    }

    #[test]
    fn writes_pay_settle_time() {
        let mut d1 = drive();
        d1.service(&DiskOp::new(0, 8, OpKind::Read));
        let r = d1.service(&DiskOp::new(500_000_000, 8, OpKind::Read));
        let mut d2 = drive();
        d2.service(&DiskOp::new(0, 8, OpKind::Read));
        let w = d2.service(&DiskOp::new(500_000_000, 8, OpKind::Write));
        let diff = w.time_in(PhaseLabel::Seek).as_millis_f64()
            - r.time_in(PhaseLabel::Seek).as_millis_f64();
        assert!((diff - 0.5).abs() < 0.01, "write settle = {diff}ms");
    }

    #[test]
    fn zoned_transfer_rate() {
        let d = drive();
        let outer = d.media_rate(0);
        let inner = d.media_rate(d.capacity_sectors() - 1);
        assert!((outer - 125e6).abs() < 1e3);
        assert!((inner - 60e6).abs() / 60e6 < 0.01);
    }

    #[test]
    fn standby_and_spinup() {
        let mut d = drive();
        assert!(!d.in_standby());
        d.enter_standby();
        assert!(d.in_standby());
        assert!(d.standby_watts() < d.idle_watts());
        let plan = d.service(&DiskOp::new(0, 8, OpKind::Read));
        assert_eq!(plan.time_in(PhaseLabel::SpinUp), SimDuration::from_secs(6));
        assert!(!d.in_standby());
    }

    #[test]
    fn large_transfer_dominates() {
        let mut d = drive();
        let plan = d.service(&DiskOp::new(0, 2048, OpKind::Read)); // 1 MiB at outer edge
        let t = plan.time_in(PhaseLabel::Transfer).as_millis_f64();
        assert!((t - 1048576.0 / 125e6 * 1e3).abs() < 0.05, "1MiB transfer = {t}ms");
    }

    #[test]
    fn derated_drive_is_slower_and_cooler() {
        let full = HddParams::seagate_7200_12_500gb();
        let low = full.derated(0.5); // 3600 rpm gear
        assert!((low.rpm - 3600.0).abs() < 1e-9);
        assert!((low.outer_mbps - 62.5).abs() < 1e-9);
        assert!(low.idle_w < full.idle_w * 0.2, "windage scaling: {}", low.idle_w);
        // Actuator increment preserved.
        assert!((low.seek_w - low.idle_w - (full.seek_w - full.idle_w)).abs() < 1e-9);
        assert!(low.name.contains("3600"));
        // Rotation takes twice as long.
        let mut d = HddModel::new(low);
        assert!((d.rotation_time().as_millis_f64() - 16.667).abs() < 0.01);
        // A random op is slower on the low gear.
        let mut f = HddModel::new(HddParams::seagate_7200_12_500gb());
        f.service(&DiskOp::new(0, 8, OpKind::Read));
        d.service(&DiskOp::new(0, 8, OpKind::Read));
        let slow = d.service(&DiskOp::new(500_000_000, 8, OpKind::Read)).total_duration();
        let fast = f.service(&DiskOp::new(500_000_000, 8, OpKind::Read)).total_duration();
        assert!(slow > fast);
    }

    #[test]
    fn preset_generations_are_ordered_sensibly() {
        let eco = HddParams::eco_5400_2tb();
        let desktop = HddParams::seagate_7200_12_500gb();
        let enterprise = HddParams::enterprise_15k_600gb();
        // Faster spindle -> shorter rotation, higher power.
        assert!(eco.rpm < desktop.rpm && desktop.rpm < enterprise.rpm);
        assert!(eco.idle_w < desktop.idle_w && desktop.idle_w < enterprise.idle_w);
        // Expected random service ordering (ms): 15k << 7200 << 5400.
        let ms = |p: HddParams| HddModel::new(p).expected_random_service_ms();
        assert!(ms(HddParams::enterprise_15k_600gb()) < ms(HddParams::seagate_7200_12_500gb()));
        assert!(ms(HddParams::seagate_7200_12_500gb()) < ms(HddParams::eco_5400_2tb()));
        // Absolute sanity: enterprise random op ~5-8ms, eco ~15-25ms.
        assert!((4.0..9.0).contains(&ms(HddParams::enterprise_15k_600gb())));
        assert!((14.0..28.0).contains(&ms(HddParams::eco_5400_2tb())));
    }

    #[test]
    #[should_panic(expected = "RPM factor")]
    fn derated_rejects_overspeed() {
        HddParams::seagate_7200_12_500gb().derated(1.5);
    }

    proptest! {
        #[test]
        fn prop_derated_monotone_in_factor(f1 in 0.2f64..1.0, df in 0.01f64..0.5) {
            let base = HddParams::seagate_7200_12_500gb();
            let f2 = (f1 + df).min(1.0);
            let a = base.derated(f1);
            let b = base.derated(f2);
            prop_assert!(a.idle_w <= b.idle_w);
            prop_assert!(a.outer_mbps <= b.outer_mbps);
            prop_assert!(a.rpm <= b.rpm);
        }

        #[test]
        fn prop_service_time_positive_and_bounded(
            sector in 0u64..976_000_000,
            sectors in 1u64..4096,
            write in proptest::bool::ANY,
        ) {
            let mut d = drive();
            let kind = if write { OpKind::Write } else { OpKind::Read };
            let plan = d.service(&DiskOp::new(sector, sectors, kind));
            let ms = plan.total_duration().as_millis_f64();
            // Upper bound: full stroke + settle + rotation + worst transfer + overhead.
            prop_assert!(ms > 0.0 && ms < 18.0 + 0.5 + 8.4 + 35.0 + 1.0, "service {ms}ms");
        }

        #[test]
        fn prop_head_state_makes_repeat_sequential(sector in 0u64..900_000_000) {
            let mut d = drive();
            d.service(&DiskOp::new(sector, 8, OpKind::Read));
            let again = d.service(&DiskOp::new(sector + 8, 8, OpKind::Read));
            prop_assert!(again.time_in(PhaseLabel::Seek).is_zero());
        }
    }
}
