#![doc = "tracer-invariant: deterministic"]
//! Generalised left-symmetric stripe layout.
//!
//! RAID-0, RAID-5 and RAID-6 are the same address arithmetic with a different
//! number of parity strips per stripe (0, 1, 2). This module captures that
//! arithmetic once: the first parity strip starts on the last member and
//! rotates backwards one member per stripe (left-symmetric, the layout the
//! paper's testbed array uses); further parity strips sit cyclically adjacent
//! to it (RAID-6's Q next to P); data strips fill the remaining members in
//! order starting after the last parity strip.
//!
//! [`crate::Geometry`] delegates its placement decisions here, which keeps
//! the RAID-5 layout bit-identical to the original hand-rolled formulas while
//! letting RAID-6 share the rotation proof burden.

/// Rotated striping layout over `disks` members with `parity_strips` parity
/// strips per stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeLayout {
    /// Number of member disks.
    pub disks: usize,
    /// Parity strips per stripe: 0 = RAID-0, 1 = RAID-5, 2 = RAID-6.
    pub parity_strips: usize,
}

impl StripeLayout {
    /// Layout over `disks` members with `parity_strips` parity strips.
    ///
    /// # Panics
    /// Panics unless at least one data strip remains per stripe.
    pub fn new(disks: usize, parity_strips: usize) -> Self {
        assert!(disks > parity_strips, "need at least one data strip per stripe");
        Self { disks, parity_strips }
    }

    /// Data strips per stripe.
    pub fn data_strips(&self) -> usize {
        self.disks - self.parity_strips
    }

    /// Member disk of the `k`-th parity strip of `stripe` (`k = 0` is P,
    /// `k = 1` is Q). P starts on the last disk and rotates backwards; the
    /// later parity strips are cyclically adjacent.
    ///
    /// # Panics
    /// Panics if `k` is not a valid parity index for this layout.
    pub fn parity_member(&self, stripe: u64, k: usize) -> usize {
        assert!(k < self.parity_strips, "parity index out of range");
        let p = self.disks - 1 - (stripe % self.disks as u64) as usize;
        (p + k) % self.disks
    }

    /// Member disk of the `index`-th data strip of `stripe`. Data strips fill
    /// the members cyclically starting after the last parity strip.
    pub fn data_member(&self, stripe: u64, index: usize) -> usize {
        debug_assert!(index < self.data_strips());
        if self.parity_strips == 0 {
            return index;
        }
        (self.parity_member(stripe, 0) + self.parity_strips + index) % self.disks
    }

    /// Whether `disk` holds a parity strip of `stripe`.
    pub fn is_parity_member(&self, stripe: u64, disk: usize) -> bool {
        (0..self.parity_strips).any(|k| self.parity_member(stripe, k) == disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raid5_layout_matches_left_symmetric_formula() {
        let l = StripeLayout::new(6, 1);
        for stripe in 0..24u64 {
            assert_eq!(l.parity_member(stripe, 0), 6 - 1 - (stripe % 6) as usize);
            for index in 0..l.data_strips() {
                assert_eq!(
                    l.data_member(stripe, index),
                    (l.parity_member(stripe, 0) + 1 + index) % 6
                );
            }
        }
    }

    #[test]
    fn raid6_p_and_q_are_adjacent_and_distinct_from_data() {
        let l = StripeLayout::new(5, 2);
        for stripe in 0..25u64 {
            let p = l.parity_member(stripe, 0);
            let q = l.parity_member(stripe, 1);
            assert_eq!((p + 1) % 5, q, "Q is cyclically adjacent to P");
            for index in 0..l.data_strips() {
                let d = l.data_member(stripe, index);
                assert_ne!(d, p);
                assert_ne!(d, q);
            }
        }
    }

    #[test]
    fn parity_rotation_covers_every_member() {
        for parity in 1..=2usize {
            let l = StripeLayout::new(6, parity);
            let seen: std::collections::BTreeSet<usize> =
                (0..6u64).map(|s| l.parity_member(s, 0)).collect();
            assert_eq!(seen.len(), 6, "P visits every member over one period");
        }
    }

    #[test]
    fn raid0_layout_is_plain_round_robin() {
        let l = StripeLayout::new(4, 0);
        for stripe in 0..8u64 {
            for index in 0..4 {
                assert_eq!(l.data_member(stripe, index), index);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one data strip")]
    fn all_parity_layout_rejected() {
        StripeLayout::new(2, 2);
    }
}
