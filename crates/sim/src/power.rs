#![doc = "tracer-invariant: deterministic"]
//! HDD power-management policies.
//!
//! The array engine already implements the mechanism — an idle member whose
//! quiet period outlasts `ArrayConfig::spin_down_after` is sent to standby,
//! and its next op pays the spin-up phase, all accounted exactly by
//! [`crate::powerlog`]. This module names the *policies* that pick the
//! timeout, so scenario files can say `policy = "timeout"` instead of baking
//! a number into code. Every policy resolves to a static timeout before the
//! simulation starts; the run itself stays a pure function of the trace.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// When an idle member disk is sent to standby.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerPolicy {
    /// Never spin down: the paper's baseline testbed behaviour.
    AlwaysOn,
    /// Spin down after a fixed idle timeout.
    FixedTimeout {
        /// Quiet period before standby.
        idle: SimDuration,
    },
    /// Spin down after the device's own break-even time: the idle period at
    /// which the energy saved in standby equals the spin-up energy, derived
    /// from the member parameters at build time (the canonical adaptive
    /// policy of the dynamic power-management literature).
    BreakEven,
}

impl PowerPolicy {
    /// The paper's MAID-style 30-second timeout.
    pub fn timeout_30s() -> Self {
        PowerPolicy::FixedTimeout { idle: SimDuration::from_secs(30) }
    }

    /// Resolve the policy to the engine's `spin_down_after` knob, given the
    /// member device's power figures.
    ///
    /// `idle_w`/`standby_w` are the device's idle and standby draw;
    /// `spinup_w`/`spinup_s` the spin-up surge and its duration. For
    /// [`PowerPolicy::BreakEven`] the timeout `t` solves
    /// `(idle_w - standby_w) * t = (spinup_w - idle_w) * spinup_s`.
    pub fn spin_down_after(
        &self,
        idle_w: f64,
        standby_w: f64,
        spinup_w: f64,
        spinup_s: f64,
    ) -> Option<SimDuration> {
        match *self {
            PowerPolicy::AlwaysOn => None,
            PowerPolicy::FixedTimeout { idle } => Some(idle),
            PowerPolicy::BreakEven => {
                let saved_per_sec = (idle_w - standby_w).max(1e-9);
                let spinup_cost = ((spinup_w - idle_w) * spinup_s).max(0.0);
                Some(SimDuration::from_secs_f64(spinup_cost / saved_per_sec))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_never_spins_down() {
        assert_eq!(PowerPolicy::AlwaysOn.spin_down_after(5.0, 0.8, 24.0, 6.0), None);
    }

    #[test]
    fn fixed_timeout_passes_through() {
        let p = PowerPolicy::timeout_30s();
        assert_eq!(p.spin_down_after(5.0, 0.8, 24.0, 6.0), Some(SimDuration::from_secs(30)));
    }

    #[test]
    fn break_even_matches_hand_calculation() {
        // Seagate figures: save 4.2 W in standby, spin-up surge costs
        // (24 - 5) * 6 = 114 J, so break-even at 114 / 4.2 ≈ 27.14 s.
        let t = PowerPolicy::BreakEven.spin_down_after(5.0, 0.8, 24.0, 6.0).unwrap().as_secs_f64();
        assert!((t - 114.0 / 4.2).abs() < 1e-9, "break-even = {t}s");
    }

    #[test]
    fn break_even_degenerate_devices_stay_finite() {
        // A device whose standby saves nothing must not divide by zero.
        let t = PowerPolicy::BreakEven.spin_down_after(5.0, 5.0, 24.0, 6.0).unwrap();
        assert!(t.as_secs_f64().is_finite());
    }
}
